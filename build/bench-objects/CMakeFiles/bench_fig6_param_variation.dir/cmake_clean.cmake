file(REMOVE_RECURSE
  "../bench/bench_fig6_param_variation"
  "../bench/bench_fig6_param_variation.pdb"
  "CMakeFiles/bench_fig6_param_variation.dir/bench_fig6_param_variation.cc.o"
  "CMakeFiles/bench_fig6_param_variation.dir/bench_fig6_param_variation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_param_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
