# Empty dependencies file for bench_fig6_param_variation.
# This may be replaced when dependencies are built.
