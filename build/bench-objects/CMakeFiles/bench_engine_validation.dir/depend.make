# Empty dependencies file for bench_engine_validation.
# This may be replaced when dependencies are built.
