file(REMOVE_RECURSE
  "../bench/bench_engine_validation"
  "../bench/bench_engine_validation.pdb"
  "CMakeFiles/bench_engine_validation.dir/bench_engine_validation.cc.o"
  "CMakeFiles/bench_engine_validation.dir/bench_engine_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
