file(REMOVE_RECURSE
  "../bench/bench_table5_specialization"
  "../bench/bench_table5_specialization.pdb"
  "CMakeFiles/bench_table5_specialization.dir/bench_table5_specialization.cc.o"
  "CMakeFiles/bench_table5_specialization.dir/bench_table5_specialization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
