# Empty dependencies file for bench_fig9_lp_pitfall.
# This may be replaced when dependencies are built.
