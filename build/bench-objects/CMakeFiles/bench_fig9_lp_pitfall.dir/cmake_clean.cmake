file(REMOVE_RECURSE
  "../bench/bench_fig9_lp_pitfall"
  "../bench/bench_fig9_lp_pitfall.pdb"
  "CMakeFiles/bench_fig9_lp_pitfall.dir/bench_fig9_lp_pitfall.cc.o"
  "CMakeFiles/bench_fig9_lp_pitfall.dir/bench_fig9_lp_pitfall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lp_pitfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
