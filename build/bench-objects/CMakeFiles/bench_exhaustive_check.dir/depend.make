# Empty dependencies file for bench_exhaustive_check.
# This may be replaced when dependencies are built.
