file(REMOVE_RECURSE
  "../bench/bench_exhaustive_check"
  "../bench/bench_exhaustive_check.pdb"
  "CMakeFiles/bench_exhaustive_check.dir/bench_exhaustive_check.cc.o"
  "CMakeFiles/bench_exhaustive_check.dir/bench_exhaustive_check.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exhaustive_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
