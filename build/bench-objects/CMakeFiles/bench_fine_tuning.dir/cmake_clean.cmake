file(REMOVE_RECURSE
  "../bench/bench_fine_tuning"
  "../bench/bench_fine_tuning.pdb"
  "CMakeFiles/bench_fine_tuning.dir/bench_fine_tuning.cc.o"
  "CMakeFiles/bench_fine_tuning.dir/bench_fine_tuning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fine_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
