# Empty compiler generated dependencies file for bench_fine_tuning.
# This may be replaced when dependencies are built.
