file(REMOVE_RECURSE
  "../bench/bench_mission_validation"
  "../bench/bench_mission_validation.pdb"
  "CMakeFiles/bench_mission_validation.dir/bench_mission_validation.cc.o"
  "CMakeFiles/bench_mission_validation.dir/bench_mission_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mission_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
