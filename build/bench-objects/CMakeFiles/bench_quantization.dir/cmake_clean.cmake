file(REMOVE_RECURSE
  "../bench/bench_quantization"
  "../bench/bench_quantization.pdb"
  "CMakeFiles/bench_quantization.dir/bench_quantization.cc.o"
  "CMakeFiles/bench_quantization.dir/bench_quantization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
