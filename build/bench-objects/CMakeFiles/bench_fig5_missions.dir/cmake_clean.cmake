file(REMOVE_RECURSE
  "../bench/bench_fig5_missions"
  "../bench/bench_fig5_missions.pdb"
  "CMakeFiles/bench_fig5_missions.dir/bench_fig5_missions.cc.o"
  "CMakeFiles/bench_fig5_missions.dir/bench_fig5_missions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_missions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
