file(REMOVE_RECURSE
  "../bench/bench_fig11_agility"
  "../bench/bench_fig11_agility.pdb"
  "CMakeFiles/bench_fig11_agility.dir/bench_fig11_agility.cc.o"
  "CMakeFiles/bench_fig11_agility.dir/bench_fig11_agility.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_agility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
