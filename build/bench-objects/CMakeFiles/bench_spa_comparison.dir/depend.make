# Empty dependencies file for bench_spa_comparison.
# This may be replaced when dependencies are built.
