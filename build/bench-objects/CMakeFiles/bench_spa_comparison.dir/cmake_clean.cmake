file(REMOVE_RECURSE
  "../bench/bench_spa_comparison"
  "../bench/bench_spa_comparison.pdb"
  "CMakeFiles/bench_spa_comparison.dir/bench_spa_comparison.cc.o"
  "CMakeFiles/bench_spa_comparison.dir/bench_spa_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spa_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
