file(REMOVE_RECURSE
  "../bench/bench_param_importance"
  "../bench/bench_param_importance.pdb"
  "CMakeFiles/bench_param_importance.dir/bench_param_importance.cc.o"
  "CMakeFiles/bench_param_importance.dir/bench_param_importance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
