# Empty compiler generated dependencies file for bench_param_importance.
# This may be replaced when dependencies are built.
