# Empty dependencies file for bench_fig10_he_pitfall.
# This may be replaced when dependencies are built.
