file(REMOVE_RECURSE
  "../bench/bench_fig10_he_pitfall"
  "../bench/bench_fig10_he_pitfall.pdb"
  "CMakeFiles/bench_fig10_he_pitfall.dir/bench_fig10_he_pitfall.cc.o"
  "CMakeFiles/bench_fig10_he_pitfall.dir/bench_fig10_he_pitfall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_he_pitfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
