file(REMOVE_RECURSE
  "../bench/bench_fig7_pareto"
  "../bench/bench_fig7_pareto.pdb"
  "CMakeFiles/bench_fig7_pareto.dir/bench_fig7_pareto.cc.o"
  "CMakeFiles/bench_fig7_pareto.dir/bench_fig7_pareto.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
