# Empty dependencies file for bench_fig7_pareto.
# This may be replaced when dependencies are built.
