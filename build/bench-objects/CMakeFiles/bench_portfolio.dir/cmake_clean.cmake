file(REMOVE_RECURSE
  "../bench/bench_portfolio"
  "../bench/bench_portfolio.pdb"
  "CMakeFiles/bench_portfolio.dir/bench_portfolio.cc.o"
  "CMakeFiles/bench_portfolio.dir/bench_portfolio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
