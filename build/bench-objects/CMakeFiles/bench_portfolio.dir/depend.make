# Empty dependencies file for bench_portfolio.
# This may be replaced when dependencies are built.
