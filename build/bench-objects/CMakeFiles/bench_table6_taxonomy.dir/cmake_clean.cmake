file(REMOVE_RECURSE
  "../bench/bench_table6_taxonomy"
  "../bench/bench_table6_taxonomy.pdb"
  "CMakeFiles/bench_table6_taxonomy.dir/bench_table6_taxonomy.cc.o"
  "CMakeFiles/bench_table6_taxonomy.dir/bench_table6_taxonomy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
