# Empty compiler generated dependencies file for bench_table6_taxonomy.
# This may be replaced when dependencies are built.
