# Empty compiler generated dependencies file for bench_fig3_accel_sweep.
# This may be replaced when dependencies are built.
