file(REMOVE_RECURSE
  "../bench/bench_fig3_accel_sweep"
  "../bench/bench_fig3_accel_sweep.pdb"
  "CMakeFiles/bench_fig3_accel_sweep.dir/bench_fig3_accel_sweep.cc.o"
  "CMakeFiles/bench_fig3_accel_sweep.dir/bench_fig3_accel_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_accel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
