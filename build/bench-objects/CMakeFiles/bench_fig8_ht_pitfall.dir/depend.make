# Empty dependencies file for bench_fig8_ht_pitfall.
# This may be replaced when dependencies are built.
