file(REMOVE_RECURSE
  "../bench/bench_sensor_sensitivity"
  "../bench/bench_sensor_sensitivity.pdb"
  "CMakeFiles/bench_sensor_sensitivity.dir/bench_sensor_sensitivity.cc.o"
  "CMakeFiles/bench_sensor_sensitivity.dir/bench_sensor_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensor_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
