# Empty compiler generated dependencies file for bench_sensor_sensitivity.
# This may be replaced when dependencies are built.
