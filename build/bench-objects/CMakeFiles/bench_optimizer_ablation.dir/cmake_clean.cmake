file(REMOVE_RECURSE
  "../bench/bench_optimizer_ablation"
  "../bench/bench_optimizer_ablation.pdb"
  "CMakeFiles/bench_optimizer_ablation.dir/bench_optimizer_ablation.cc.o"
  "CMakeFiles/bench_optimizer_ablation.dir/bench_optimizer_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
