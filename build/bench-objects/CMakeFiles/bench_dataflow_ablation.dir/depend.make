# Empty dependencies file for bench_dataflow_ablation.
# This may be replaced when dependencies are built.
