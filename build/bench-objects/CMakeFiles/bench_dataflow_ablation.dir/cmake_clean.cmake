file(REMOVE_RECURSE
  "../bench/bench_dataflow_ablation"
  "../bench/bench_dataflow_ablation.pdb"
  "CMakeFiles/bench_dataflow_ablation.dir/bench_dataflow_ablation.cc.o"
  "CMakeFiles/bench_dataflow_ablation.dir/bench_dataflow_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataflow_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
