file(REMOVE_RECURSE
  "../bench/bench_perf_microbench"
  "../bench/bench_perf_microbench.pdb"
  "CMakeFiles/bench_perf_microbench.dir/bench_perf_microbench.cc.o"
  "CMakeFiles/bench_perf_microbench.dir/bench_perf_microbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
