# Empty compiler generated dependencies file for bench_perf_microbench.
# This may be replaced when dependencies are built.
