# Empty compiler generated dependencies file for bench_fig2_model_sweep.
# This may be replaced when dependencies are built.
