file(REMOVE_RECURSE
  "../bench/bench_fig2_model_sweep"
  "../bench/bench_fig2_model_sweep.pdb"
  "CMakeFiles/bench_fig2_model_sweep.dir/bench_fig2_model_sweep.cc.o"
  "CMakeFiles/bench_fig2_model_sweep.dir/bench_fig2_model_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_model_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
