# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_systolic_tiling[1]_include.cmake")
include("/root/repo/build/tests/test_systolic_memory[1]_include.cmake")
include("/root/repo/build/tests/test_systolic_engine[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_uav[1]_include.cmake")
include("/root/repo/build/tests/test_airlearning[1]_include.cmake")
include("/root/repo/build/tests/test_dse_pareto[1]_include.cmake")
include("/root/repo/build/tests/test_dse_gp[1]_include.cmake")
include("/root/repo/build/tests/test_dse_optimizers[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_spa[1]_include.cmake")
include("/root/repo/build/tests/test_systolic_trace[1]_include.cmake")
include("/root/repo/build/tests/test_systolic_functional[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_bottleneck[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_mission_sim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_portfolio[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
