file(REMOVE_RECURSE
  "CMakeFiles/test_dse_pareto.dir/test_dse_pareto.cc.o"
  "CMakeFiles/test_dse_pareto.dir/test_dse_pareto.cc.o.d"
  "test_dse_pareto"
  "test_dse_pareto.pdb"
  "test_dse_pareto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
