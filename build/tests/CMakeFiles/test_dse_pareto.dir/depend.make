# Empty dependencies file for test_dse_pareto.
# This may be replaced when dependencies are built.
