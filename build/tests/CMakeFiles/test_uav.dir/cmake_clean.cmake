file(REMOVE_RECURSE
  "CMakeFiles/test_uav.dir/test_uav.cc.o"
  "CMakeFiles/test_uav.dir/test_uav.cc.o.d"
  "test_uav"
  "test_uav.pdb"
  "test_uav[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
