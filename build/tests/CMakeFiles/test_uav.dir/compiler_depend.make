# Empty compiler generated dependencies file for test_uav.
# This may be replaced when dependencies are built.
