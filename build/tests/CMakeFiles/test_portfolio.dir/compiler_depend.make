# Empty compiler generated dependencies file for test_portfolio.
# This may be replaced when dependencies are built.
