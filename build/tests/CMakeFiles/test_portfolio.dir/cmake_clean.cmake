file(REMOVE_RECURSE
  "CMakeFiles/test_portfolio.dir/test_portfolio.cc.o"
  "CMakeFiles/test_portfolio.dir/test_portfolio.cc.o.d"
  "test_portfolio"
  "test_portfolio.pdb"
  "test_portfolio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
