# Empty dependencies file for test_spa.
# This may be replaced when dependencies are built.
