# Empty compiler generated dependencies file for test_dse_gp.
# This may be replaced when dependencies are built.
