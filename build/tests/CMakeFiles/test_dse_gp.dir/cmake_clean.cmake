file(REMOVE_RECURSE
  "CMakeFiles/test_dse_gp.dir/test_dse_gp.cc.o"
  "CMakeFiles/test_dse_gp.dir/test_dse_gp.cc.o.d"
  "test_dse_gp"
  "test_dse_gp.pdb"
  "test_dse_gp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
