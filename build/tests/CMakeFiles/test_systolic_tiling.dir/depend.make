# Empty dependencies file for test_systolic_tiling.
# This may be replaced when dependencies are built.
