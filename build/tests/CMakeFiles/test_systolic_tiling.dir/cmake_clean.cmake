file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_tiling.dir/test_systolic_tiling.cc.o"
  "CMakeFiles/test_systolic_tiling.dir/test_systolic_tiling.cc.o.d"
  "test_systolic_tiling"
  "test_systolic_tiling.pdb"
  "test_systolic_tiling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
