file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_engine.dir/test_systolic_engine.cc.o"
  "CMakeFiles/test_systolic_engine.dir/test_systolic_engine.cc.o.d"
  "test_systolic_engine"
  "test_systolic_engine.pdb"
  "test_systolic_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
