# Empty dependencies file for test_systolic_engine.
# This may be replaced when dependencies are built.
