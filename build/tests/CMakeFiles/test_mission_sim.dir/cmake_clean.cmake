file(REMOVE_RECURSE
  "CMakeFiles/test_mission_sim.dir/test_mission_sim.cc.o"
  "CMakeFiles/test_mission_sim.dir/test_mission_sim.cc.o.d"
  "test_mission_sim"
  "test_mission_sim.pdb"
  "test_mission_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mission_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
