# Empty dependencies file for test_mission_sim.
# This may be replaced when dependencies are built.
