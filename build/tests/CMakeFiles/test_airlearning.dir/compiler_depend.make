# Empty compiler generated dependencies file for test_airlearning.
# This may be replaced when dependencies are built.
