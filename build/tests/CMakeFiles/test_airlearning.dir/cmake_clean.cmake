file(REMOVE_RECURSE
  "CMakeFiles/test_airlearning.dir/test_airlearning.cc.o"
  "CMakeFiles/test_airlearning.dir/test_airlearning.cc.o.d"
  "test_airlearning"
  "test_airlearning.pdb"
  "test_airlearning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
