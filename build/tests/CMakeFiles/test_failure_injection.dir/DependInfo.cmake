
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_failure_injection.cc" "tests/CMakeFiles/test_failure_injection.dir/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/test_failure_injection.dir/test_failure_injection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autopilot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/autopilot_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/spa/CMakeFiles/autopilot_spa.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/autopilot_io.dir/DependInfo.cmake"
  "/root/repo/build/src/airlearning/CMakeFiles/autopilot_airlearning.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/autopilot_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/autopilot_power.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/autopilot_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopilot_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
