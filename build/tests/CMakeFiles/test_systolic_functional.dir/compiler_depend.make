# Empty compiler generated dependencies file for test_systolic_functional.
# This may be replaced when dependencies are built.
