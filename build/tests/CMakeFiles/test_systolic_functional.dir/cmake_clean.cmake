file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_functional.dir/test_systolic_functional.cc.o"
  "CMakeFiles/test_systolic_functional.dir/test_systolic_functional.cc.o.d"
  "test_systolic_functional"
  "test_systolic_functional.pdb"
  "test_systolic_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
