# Empty compiler generated dependencies file for test_bottleneck.
# This may be replaced when dependencies are built.
