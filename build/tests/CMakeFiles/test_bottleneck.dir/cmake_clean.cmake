file(REMOVE_RECURSE
  "CMakeFiles/test_bottleneck.dir/test_bottleneck.cc.o"
  "CMakeFiles/test_bottleneck.dir/test_bottleneck.cc.o.d"
  "test_bottleneck"
  "test_bottleneck.pdb"
  "test_bottleneck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
