file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_trace.dir/test_systolic_trace.cc.o"
  "CMakeFiles/test_systolic_trace.dir/test_systolic_trace.cc.o.d"
  "test_systolic_trace"
  "test_systolic_trace.pdb"
  "test_systolic_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
