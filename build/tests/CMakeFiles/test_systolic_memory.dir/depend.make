# Empty dependencies file for test_systolic_memory.
# This may be replaced when dependencies are built.
