file(REMOVE_RECURSE
  "CMakeFiles/test_systolic_memory.dir/test_systolic_memory.cc.o"
  "CMakeFiles/test_systolic_memory.dir/test_systolic_memory.cc.o.d"
  "test_systolic_memory"
  "test_systolic_memory.pdb"
  "test_systolic_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
