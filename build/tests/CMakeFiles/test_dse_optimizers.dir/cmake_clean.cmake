file(REMOVE_RECURSE
  "CMakeFiles/test_dse_optimizers.dir/test_dse_optimizers.cc.o"
  "CMakeFiles/test_dse_optimizers.dir/test_dse_optimizers.cc.o.d"
  "test_dse_optimizers"
  "test_dse_optimizers.pdb"
  "test_dse_optimizers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
