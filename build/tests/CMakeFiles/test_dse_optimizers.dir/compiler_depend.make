# Empty compiler generated dependencies file for test_dse_optimizers.
# This may be replaced when dependencies are built.
