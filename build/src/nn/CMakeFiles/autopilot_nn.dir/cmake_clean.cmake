file(REMOVE_RECURSE
  "CMakeFiles/autopilot_nn.dir/e2e_template.cc.o"
  "CMakeFiles/autopilot_nn.dir/e2e_template.cc.o.d"
  "CMakeFiles/autopilot_nn.dir/layer.cc.o"
  "CMakeFiles/autopilot_nn.dir/layer.cc.o.d"
  "CMakeFiles/autopilot_nn.dir/model.cc.o"
  "CMakeFiles/autopilot_nn.dir/model.cc.o.d"
  "CMakeFiles/autopilot_nn.dir/summary.cc.o"
  "CMakeFiles/autopilot_nn.dir/summary.cc.o.d"
  "libautopilot_nn.a"
  "libautopilot_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
