# Empty dependencies file for autopilot_nn.
# This may be replaced when dependencies are built.
