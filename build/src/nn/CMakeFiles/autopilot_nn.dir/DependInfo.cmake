
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/e2e_template.cc" "src/nn/CMakeFiles/autopilot_nn.dir/e2e_template.cc.o" "gcc" "src/nn/CMakeFiles/autopilot_nn.dir/e2e_template.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/autopilot_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/autopilot_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/autopilot_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/autopilot_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/summary.cc" "src/nn/CMakeFiles/autopilot_nn.dir/summary.cc.o" "gcc" "src/nn/CMakeFiles/autopilot_nn.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
