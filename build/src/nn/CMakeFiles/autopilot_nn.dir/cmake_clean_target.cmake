file(REMOVE_RECURSE
  "libautopilot_nn.a"
)
