
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/airlearning/database.cc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/database.cc.o" "gcc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/database.cc.o.d"
  "/root/repo/src/airlearning/environment.cc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/environment.cc.o" "gcc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/environment.cc.o.d"
  "/root/repo/src/airlearning/policy.cc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/policy.cc.o" "gcc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/policy.cc.o.d"
  "/root/repo/src/airlearning/rollout.cc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/rollout.cc.o" "gcc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/rollout.cc.o.d"
  "/root/repo/src/airlearning/trainer.cc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/trainer.cc.o" "gcc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/trainer.cc.o.d"
  "/root/repo/src/airlearning/training_curve.cc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/training_curve.cc.o" "gcc" "src/airlearning/CMakeFiles/autopilot_airlearning.dir/training_curve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/autopilot_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
