# Empty dependencies file for autopilot_airlearning.
# This may be replaced when dependencies are built.
