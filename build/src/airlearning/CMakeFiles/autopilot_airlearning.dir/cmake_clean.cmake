file(REMOVE_RECURSE
  "CMakeFiles/autopilot_airlearning.dir/database.cc.o"
  "CMakeFiles/autopilot_airlearning.dir/database.cc.o.d"
  "CMakeFiles/autopilot_airlearning.dir/environment.cc.o"
  "CMakeFiles/autopilot_airlearning.dir/environment.cc.o.d"
  "CMakeFiles/autopilot_airlearning.dir/policy.cc.o"
  "CMakeFiles/autopilot_airlearning.dir/policy.cc.o.d"
  "CMakeFiles/autopilot_airlearning.dir/rollout.cc.o"
  "CMakeFiles/autopilot_airlearning.dir/rollout.cc.o.d"
  "CMakeFiles/autopilot_airlearning.dir/trainer.cc.o"
  "CMakeFiles/autopilot_airlearning.dir/trainer.cc.o.d"
  "CMakeFiles/autopilot_airlearning.dir/training_curve.cc.o"
  "CMakeFiles/autopilot_airlearning.dir/training_curve.cc.o.d"
  "libautopilot_airlearning.a"
  "libautopilot_airlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_airlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
