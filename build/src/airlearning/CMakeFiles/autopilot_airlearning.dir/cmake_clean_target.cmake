file(REMOVE_RECURSE
  "libautopilot_airlearning.a"
)
