file(REMOVE_RECURSE
  "libautopilot_uav.a"
)
