
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uav/bottleneck.cc" "src/uav/CMakeFiles/autopilot_uav.dir/bottleneck.cc.o" "gcc" "src/uav/CMakeFiles/autopilot_uav.dir/bottleneck.cc.o.d"
  "/root/repo/src/uav/f1_model.cc" "src/uav/CMakeFiles/autopilot_uav.dir/f1_model.cc.o" "gcc" "src/uav/CMakeFiles/autopilot_uav.dir/f1_model.cc.o.d"
  "/root/repo/src/uav/mission.cc" "src/uav/CMakeFiles/autopilot_uav.dir/mission.cc.o" "gcc" "src/uav/CMakeFiles/autopilot_uav.dir/mission.cc.o.d"
  "/root/repo/src/uav/mission_sim.cc" "src/uav/CMakeFiles/autopilot_uav.dir/mission_sim.cc.o" "gcc" "src/uav/CMakeFiles/autopilot_uav.dir/mission_sim.cc.o.d"
  "/root/repo/src/uav/propulsion.cc" "src/uav/CMakeFiles/autopilot_uav.dir/propulsion.cc.o" "gcc" "src/uav/CMakeFiles/autopilot_uav.dir/propulsion.cc.o.d"
  "/root/repo/src/uav/uav_spec.cc" "src/uav/CMakeFiles/autopilot_uav.dir/uav_spec.cc.o" "gcc" "src/uav/CMakeFiles/autopilot_uav.dir/uav_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
