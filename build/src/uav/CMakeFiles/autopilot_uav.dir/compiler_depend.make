# Empty compiler generated dependencies file for autopilot_uav.
# This may be replaced when dependencies are built.
