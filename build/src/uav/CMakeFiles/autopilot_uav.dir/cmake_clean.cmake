file(REMOVE_RECURSE
  "CMakeFiles/autopilot_uav.dir/bottleneck.cc.o"
  "CMakeFiles/autopilot_uav.dir/bottleneck.cc.o.d"
  "CMakeFiles/autopilot_uav.dir/f1_model.cc.o"
  "CMakeFiles/autopilot_uav.dir/f1_model.cc.o.d"
  "CMakeFiles/autopilot_uav.dir/mission.cc.o"
  "CMakeFiles/autopilot_uav.dir/mission.cc.o.d"
  "CMakeFiles/autopilot_uav.dir/mission_sim.cc.o"
  "CMakeFiles/autopilot_uav.dir/mission_sim.cc.o.d"
  "CMakeFiles/autopilot_uav.dir/propulsion.cc.o"
  "CMakeFiles/autopilot_uav.dir/propulsion.cc.o.d"
  "CMakeFiles/autopilot_uav.dir/uav_spec.cc.o"
  "CMakeFiles/autopilot_uav.dir/uav_spec.cc.o.d"
  "libautopilot_uav.a"
  "libautopilot_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
