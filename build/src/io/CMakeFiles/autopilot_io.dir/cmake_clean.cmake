file(REMOVE_RECURSE
  "CMakeFiles/autopilot_io.dir/csv.cc.o"
  "CMakeFiles/autopilot_io.dir/csv.cc.o.d"
  "CMakeFiles/autopilot_io.dir/persistence.cc.o"
  "CMakeFiles/autopilot_io.dir/persistence.cc.o.d"
  "libautopilot_io.a"
  "libautopilot_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
