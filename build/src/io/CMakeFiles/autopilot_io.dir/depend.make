# Empty dependencies file for autopilot_io.
# This may be replaced when dependencies are built.
