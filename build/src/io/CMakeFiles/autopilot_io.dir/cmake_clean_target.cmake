file(REMOVE_RECURSE
  "libautopilot_io.a"
)
