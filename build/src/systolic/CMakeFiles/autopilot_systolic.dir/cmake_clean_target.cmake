file(REMOVE_RECURSE
  "libautopilot_systolic.a"
)
