# Empty dependencies file for autopilot_systolic.
# This may be replaced when dependencies are built.
