
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/config.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/config.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/config.cc.o.d"
  "/root/repo/src/systolic/cycle_engine.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/cycle_engine.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/cycle_engine.cc.o.d"
  "/root/repo/src/systolic/engine.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/engine.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/engine.cc.o.d"
  "/root/repo/src/systolic/functional.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/functional.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/functional.cc.o.d"
  "/root/repo/src/systolic/memory.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/memory.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/memory.cc.o.d"
  "/root/repo/src/systolic/run_report.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/run_report.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/run_report.cc.o.d"
  "/root/repo/src/systolic/tiling.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/tiling.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/tiling.cc.o.d"
  "/root/repo/src/systolic/trace.cc" "src/systolic/CMakeFiles/autopilot_systolic.dir/trace.cc.o" "gcc" "src/systolic/CMakeFiles/autopilot_systolic.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/autopilot_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
