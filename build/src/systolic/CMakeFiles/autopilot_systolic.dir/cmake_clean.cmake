file(REMOVE_RECURSE
  "CMakeFiles/autopilot_systolic.dir/config.cc.o"
  "CMakeFiles/autopilot_systolic.dir/config.cc.o.d"
  "CMakeFiles/autopilot_systolic.dir/cycle_engine.cc.o"
  "CMakeFiles/autopilot_systolic.dir/cycle_engine.cc.o.d"
  "CMakeFiles/autopilot_systolic.dir/engine.cc.o"
  "CMakeFiles/autopilot_systolic.dir/engine.cc.o.d"
  "CMakeFiles/autopilot_systolic.dir/functional.cc.o"
  "CMakeFiles/autopilot_systolic.dir/functional.cc.o.d"
  "CMakeFiles/autopilot_systolic.dir/memory.cc.o"
  "CMakeFiles/autopilot_systolic.dir/memory.cc.o.d"
  "CMakeFiles/autopilot_systolic.dir/run_report.cc.o"
  "CMakeFiles/autopilot_systolic.dir/run_report.cc.o.d"
  "CMakeFiles/autopilot_systolic.dir/tiling.cc.o"
  "CMakeFiles/autopilot_systolic.dir/tiling.cc.o.d"
  "CMakeFiles/autopilot_systolic.dir/trace.cc.o"
  "CMakeFiles/autopilot_systolic.dir/trace.cc.o.d"
  "libautopilot_systolic.a"
  "libautopilot_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
