
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/dram_model.cc" "src/power/CMakeFiles/autopilot_power.dir/dram_model.cc.o" "gcc" "src/power/CMakeFiles/autopilot_power.dir/dram_model.cc.o.d"
  "/root/repo/src/power/mass_model.cc" "src/power/CMakeFiles/autopilot_power.dir/mass_model.cc.o" "gcc" "src/power/CMakeFiles/autopilot_power.dir/mass_model.cc.o.d"
  "/root/repo/src/power/npu_power.cc" "src/power/CMakeFiles/autopilot_power.dir/npu_power.cc.o" "gcc" "src/power/CMakeFiles/autopilot_power.dir/npu_power.cc.o.d"
  "/root/repo/src/power/pe_model.cc" "src/power/CMakeFiles/autopilot_power.dir/pe_model.cc.o" "gcc" "src/power/CMakeFiles/autopilot_power.dir/pe_model.cc.o.d"
  "/root/repo/src/power/soc_power.cc" "src/power/CMakeFiles/autopilot_power.dir/soc_power.cc.o" "gcc" "src/power/CMakeFiles/autopilot_power.dir/soc_power.cc.o.d"
  "/root/repo/src/power/sram_model.cc" "src/power/CMakeFiles/autopilot_power.dir/sram_model.cc.o" "gcc" "src/power/CMakeFiles/autopilot_power.dir/sram_model.cc.o.d"
  "/root/repo/src/power/technology.cc" "src/power/CMakeFiles/autopilot_power.dir/technology.cc.o" "gcc" "src/power/CMakeFiles/autopilot_power.dir/technology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systolic/CMakeFiles/autopilot_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopilot_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
