file(REMOVE_RECURSE
  "libautopilot_power.a"
)
