# Empty dependencies file for autopilot_power.
# This may be replaced when dependencies are built.
