file(REMOVE_RECURSE
  "CMakeFiles/autopilot_power.dir/dram_model.cc.o"
  "CMakeFiles/autopilot_power.dir/dram_model.cc.o.d"
  "CMakeFiles/autopilot_power.dir/mass_model.cc.o"
  "CMakeFiles/autopilot_power.dir/mass_model.cc.o.d"
  "CMakeFiles/autopilot_power.dir/npu_power.cc.o"
  "CMakeFiles/autopilot_power.dir/npu_power.cc.o.d"
  "CMakeFiles/autopilot_power.dir/pe_model.cc.o"
  "CMakeFiles/autopilot_power.dir/pe_model.cc.o.d"
  "CMakeFiles/autopilot_power.dir/soc_power.cc.o"
  "CMakeFiles/autopilot_power.dir/soc_power.cc.o.d"
  "CMakeFiles/autopilot_power.dir/sram_model.cc.o"
  "CMakeFiles/autopilot_power.dir/sram_model.cc.o.d"
  "CMakeFiles/autopilot_power.dir/technology.cc.o"
  "CMakeFiles/autopilot_power.dir/technology.cc.o.d"
  "libautopilot_power.a"
  "libautopilot_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
