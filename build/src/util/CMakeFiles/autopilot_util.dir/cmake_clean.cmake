file(REMOVE_RECURSE
  "CMakeFiles/autopilot_util.dir/logging.cc.o"
  "CMakeFiles/autopilot_util.dir/logging.cc.o.d"
  "CMakeFiles/autopilot_util.dir/matrix.cc.o"
  "CMakeFiles/autopilot_util.dir/matrix.cc.o.d"
  "CMakeFiles/autopilot_util.dir/rng.cc.o"
  "CMakeFiles/autopilot_util.dir/rng.cc.o.d"
  "CMakeFiles/autopilot_util.dir/stats.cc.o"
  "CMakeFiles/autopilot_util.dir/stats.cc.o.d"
  "CMakeFiles/autopilot_util.dir/table.cc.o"
  "CMakeFiles/autopilot_util.dir/table.cc.o.d"
  "libautopilot_util.a"
  "libautopilot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
