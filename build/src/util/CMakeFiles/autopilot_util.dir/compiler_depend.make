# Empty compiler generated dependencies file for autopilot_util.
# This may be replaced when dependencies are built.
