file(REMOVE_RECURSE
  "libautopilot_util.a"
)
