
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autopilot.cc" "src/core/CMakeFiles/autopilot_core.dir/autopilot.cc.o" "gcc" "src/core/CMakeFiles/autopilot_core.dir/autopilot.cc.o.d"
  "/root/repo/src/core/baseline_eval.cc" "src/core/CMakeFiles/autopilot_core.dir/baseline_eval.cc.o" "gcc" "src/core/CMakeFiles/autopilot_core.dir/baseline_eval.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/autopilot_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/autopilot_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/fine_tuning.cc" "src/core/CMakeFiles/autopilot_core.dir/fine_tuning.cc.o" "gcc" "src/core/CMakeFiles/autopilot_core.dir/fine_tuning.cc.o.d"
  "/root/repo/src/core/portfolio.cc" "src/core/CMakeFiles/autopilot_core.dir/portfolio.cc.o" "gcc" "src/core/CMakeFiles/autopilot_core.dir/portfolio.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/autopilot_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/autopilot_core.dir/report.cc.o.d"
  "/root/repo/src/core/taxonomy.cc" "src/core/CMakeFiles/autopilot_core.dir/taxonomy.cc.o" "gcc" "src/core/CMakeFiles/autopilot_core.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dse/CMakeFiles/autopilot_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/airlearning/CMakeFiles/autopilot_airlearning.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/autopilot_power.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/autopilot_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/autopilot_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopilot_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
