file(REMOVE_RECURSE
  "CMakeFiles/autopilot_core.dir/autopilot.cc.o"
  "CMakeFiles/autopilot_core.dir/autopilot.cc.o.d"
  "CMakeFiles/autopilot_core.dir/baseline_eval.cc.o"
  "CMakeFiles/autopilot_core.dir/baseline_eval.cc.o.d"
  "CMakeFiles/autopilot_core.dir/baselines.cc.o"
  "CMakeFiles/autopilot_core.dir/baselines.cc.o.d"
  "CMakeFiles/autopilot_core.dir/fine_tuning.cc.o"
  "CMakeFiles/autopilot_core.dir/fine_tuning.cc.o.d"
  "CMakeFiles/autopilot_core.dir/portfolio.cc.o"
  "CMakeFiles/autopilot_core.dir/portfolio.cc.o.d"
  "CMakeFiles/autopilot_core.dir/report.cc.o"
  "CMakeFiles/autopilot_core.dir/report.cc.o.d"
  "CMakeFiles/autopilot_core.dir/taxonomy.cc.o"
  "CMakeFiles/autopilot_core.dir/taxonomy.cc.o.d"
  "libautopilot_core.a"
  "libautopilot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
