# Empty compiler generated dependencies file for autopilot_core.
# This may be replaced when dependencies are built.
