file(REMOVE_RECURSE
  "libautopilot_core.a"
)
