file(REMOVE_RECURSE
  "libautopilot_dse.a"
)
