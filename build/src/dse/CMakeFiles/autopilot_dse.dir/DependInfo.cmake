
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/annealing.cc" "src/dse/CMakeFiles/autopilot_dse.dir/annealing.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/annealing.cc.o.d"
  "/root/repo/src/dse/bayesopt.cc" "src/dse/CMakeFiles/autopilot_dse.dir/bayesopt.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/bayesopt.cc.o.d"
  "/root/repo/src/dse/design_space.cc" "src/dse/CMakeFiles/autopilot_dse.dir/design_space.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/design_space.cc.o.d"
  "/root/repo/src/dse/evaluator.cc" "src/dse/CMakeFiles/autopilot_dse.dir/evaluator.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/evaluator.cc.o.d"
  "/root/repo/src/dse/gaussian_process.cc" "src/dse/CMakeFiles/autopilot_dse.dir/gaussian_process.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/gaussian_process.cc.o.d"
  "/root/repo/src/dse/genetic.cc" "src/dse/CMakeFiles/autopilot_dse.dir/genetic.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/genetic.cc.o.d"
  "/root/repo/src/dse/hypervolume.cc" "src/dse/CMakeFiles/autopilot_dse.dir/hypervolume.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/hypervolume.cc.o.d"
  "/root/repo/src/dse/optimizer.cc" "src/dse/CMakeFiles/autopilot_dse.dir/optimizer.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/optimizer.cc.o.d"
  "/root/repo/src/dse/pareto.cc" "src/dse/CMakeFiles/autopilot_dse.dir/pareto.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/pareto.cc.o.d"
  "/root/repo/src/dse/random_search.cc" "src/dse/CMakeFiles/autopilot_dse.dir/random_search.cc.o" "gcc" "src/dse/CMakeFiles/autopilot_dse.dir/random_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/airlearning/CMakeFiles/autopilot_airlearning.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/autopilot_power.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/autopilot_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopilot_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
