# Empty dependencies file for autopilot_dse.
# This may be replaced when dependencies are built.
