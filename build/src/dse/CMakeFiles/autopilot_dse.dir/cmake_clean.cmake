file(REMOVE_RECURSE
  "CMakeFiles/autopilot_dse.dir/annealing.cc.o"
  "CMakeFiles/autopilot_dse.dir/annealing.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/bayesopt.cc.o"
  "CMakeFiles/autopilot_dse.dir/bayesopt.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/design_space.cc.o"
  "CMakeFiles/autopilot_dse.dir/design_space.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/evaluator.cc.o"
  "CMakeFiles/autopilot_dse.dir/evaluator.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/gaussian_process.cc.o"
  "CMakeFiles/autopilot_dse.dir/gaussian_process.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/genetic.cc.o"
  "CMakeFiles/autopilot_dse.dir/genetic.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/hypervolume.cc.o"
  "CMakeFiles/autopilot_dse.dir/hypervolume.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/optimizer.cc.o"
  "CMakeFiles/autopilot_dse.dir/optimizer.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/pareto.cc.o"
  "CMakeFiles/autopilot_dse.dir/pareto.cc.o.d"
  "CMakeFiles/autopilot_dse.dir/random_search.cc.o"
  "CMakeFiles/autopilot_dse.dir/random_search.cc.o.d"
  "libautopilot_dse.a"
  "libautopilot_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
