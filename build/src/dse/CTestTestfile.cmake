# CMake generated Testfile for 
# Source directory: /root/repo/src/dse
# Build directory: /root/repo/build/src/dse
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
