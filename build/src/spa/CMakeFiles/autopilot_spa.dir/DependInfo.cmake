
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spa/accel_model.cc" "src/spa/CMakeFiles/autopilot_spa.dir/accel_model.cc.o" "gcc" "src/spa/CMakeFiles/autopilot_spa.dir/accel_model.cc.o.d"
  "/root/repo/src/spa/occupancy_grid.cc" "src/spa/CMakeFiles/autopilot_spa.dir/occupancy_grid.cc.o" "gcc" "src/spa/CMakeFiles/autopilot_spa.dir/occupancy_grid.cc.o.d"
  "/root/repo/src/spa/pipeline.cc" "src/spa/CMakeFiles/autopilot_spa.dir/pipeline.cc.o" "gcc" "src/spa/CMakeFiles/autopilot_spa.dir/pipeline.cc.o.d"
  "/root/repo/src/spa/planner.cc" "src/spa/CMakeFiles/autopilot_spa.dir/planner.cc.o" "gcc" "src/spa/CMakeFiles/autopilot_spa.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/airlearning/CMakeFiles/autopilot_airlearning.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopilot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autopilot_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
