# Empty dependencies file for autopilot_spa.
# This may be replaced when dependencies are built.
