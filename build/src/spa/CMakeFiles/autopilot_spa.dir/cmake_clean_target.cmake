file(REMOVE_RECURSE
  "libautopilot_spa.a"
)
