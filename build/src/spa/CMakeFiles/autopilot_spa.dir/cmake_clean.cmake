file(REMOVE_RECURSE
  "CMakeFiles/autopilot_spa.dir/accel_model.cc.o"
  "CMakeFiles/autopilot_spa.dir/accel_model.cc.o.d"
  "CMakeFiles/autopilot_spa.dir/occupancy_grid.cc.o"
  "CMakeFiles/autopilot_spa.dir/occupancy_grid.cc.o.d"
  "CMakeFiles/autopilot_spa.dir/pipeline.cc.o"
  "CMakeFiles/autopilot_spa.dir/pipeline.cc.o.d"
  "CMakeFiles/autopilot_spa.dir/planner.cc.o"
  "CMakeFiles/autopilot_spa.dir/planner.cc.o.d"
  "libautopilot_spa.a"
  "libautopilot_spa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_spa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
