# Empty compiler generated dependencies file for policy_training.
# This may be replaced when dependencies are built.
