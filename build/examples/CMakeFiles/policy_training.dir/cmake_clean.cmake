file(REMOVE_RECURSE
  "CMakeFiles/policy_training.dir/policy_training.cpp.o"
  "CMakeFiles/policy_training.dir/policy_training.cpp.o.d"
  "policy_training"
  "policy_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
