file(REMOVE_RECURSE
  "CMakeFiles/spa_navigation.dir/spa_navigation.cpp.o"
  "CMakeFiles/spa_navigation.dir/spa_navigation.cpp.o.d"
  "spa_navigation"
  "spa_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
