# Empty dependencies file for spa_navigation.
# This may be replaced when dependencies are built.
