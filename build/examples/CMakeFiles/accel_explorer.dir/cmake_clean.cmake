file(REMOVE_RECURSE
  "CMakeFiles/accel_explorer.dir/accel_explorer.cpp.o"
  "CMakeFiles/accel_explorer.dir/accel_explorer.cpp.o.d"
  "accel_explorer"
  "accel_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
