# Empty compiler generated dependencies file for accel_explorer.
# This may be replaced when dependencies are built.
