file(REMOVE_RECURSE
  "CMakeFiles/mission_planner.dir/mission_planner.cpp.o"
  "CMakeFiles/mission_planner.dir/mission_planner.cpp.o.d"
  "mission_planner"
  "mission_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
