# Empty compiler generated dependencies file for mission_planner.
# This may be replaced when dependencies are built.
