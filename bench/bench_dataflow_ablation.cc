/**
 * @file
 * Dataflow ablation (a DESIGN.md design-choice study): the paper's DSSoC
 * template fixes a systolic array but SCALE-Sim exposes the mapping
 * strategy as a parameter. This bench quantifies how WS / OS / IS change
 * runtime, DRAM traffic and power across the scenario-best policies and
 * representative array sizes - justifying the template's
 * weight-stationary default for these weight-heavy E2E models.
 */

#include <iostream>

#include "airlearning/policy.h"
#include "nn/e2e_template.h"
#include "power/npu_power.h"
#include "systolic/cycle_engine.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Dataflow ablation: WS vs OS vs IS ===\n\n";

    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        const nn::Model model =
            nn::buildE2EModel(airlearning::bestHyperParams(density));
        std::cout << "--- " << airlearning::densityName(density)
                  << "-scenario policy " << model.name() << " ("
                  << util::formatDouble(model.totalMacs() * 1e-9, 2)
                  << " GMAC) ---\n";

        util::Table table({"array", "dataflow", "FPS", "DRAM MB/frame",
                           "NPU W", "FPS/W"});
        for (int size : {16, 64}) {
            for (systolic::Dataflow dataflow :
                 {systolic::Dataflow::WeightStationary,
                  systolic::Dataflow::OutputStationary,
                  systolic::Dataflow::InputStationary}) {
                systolic::AcceleratorConfig config;
                config.peRows = size;
                config.peCols = size;
                config.ifmapSramKb = 256;
                config.filterSramKb = 256;
                config.ofmapSramKb = 256;
                config.dataflow = dataflow;

                const systolic::CycleEngine engine(config);
                const systolic::RunResult run = engine.run(model);
                const double fps =
                    run.framesPerSecond(config.clockGhz);
                const double watts =
                    power::NpuPowerModel(config).averagePowerW(run);
                table.addRow(
                    {std::to_string(size) + "x" + std::to_string(size),
                     systolic::dataflowName(dataflow),
                     util::formatDouble(fps, 1),
                     util::formatDouble(
                         run.traffic.totalDramBytes() / 1048576.0, 1),
                     util::formatDouble(watts, 2),
                     util::formatDouble(fps / watts, 1)});
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
