/**
 * @file
 * DSSoC portfolio study (Section VI extended): how many distinct
 * tape-outs does a fleet spanning all nine (vehicle, scenario) cells
 * need? Sweeps the portfolio size and reports fleet-wide degradation vs
 * per-cell custom silicon - the specialization-cost curve behind the
 * paper's "trade-off between mission efficiency and the cost of
 * computing exists".
 */

#include <iostream>

#include "bench_common.h"
#include "core/portfolio.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== DSSoC portfolio: tape-outs vs fleet degradation "
                 "===\n\n";

    core::TaskSpec base = bench::benchTask(
        airlearning::ObstacleDensity::Low); // Density overridden inside.
    core::PortfolioSelector selector(base);

    util::Table curve({"portfolio size", "mean degradation",
                       "worst cell", "designs chosen"});
    for (int k : {1, 2, 3, 5}) {
        const core::PortfolioResult result = selector.select(k);
        std::string names;
        for (const auto &config : result.accelerators) {
            if (!names.empty())
                names += ", ";
            names += config.name();
        }
        curve.addRow(
            {std::to_string(result.accelerators.size()),
             util::formatDouble(result.meanDegradationPct(), 1) + "%",
             util::formatDouble(result.maxDegradationPct(), 1) + "%",
             names});
    }
    curve.print(std::cout);

    // Detail view at portfolio size 2.
    const core::PortfolioResult detail = selector.select(2);
    std::cout << "\nCell assignments with 2 designs:\n";
    util::Table cells({"cell", "design", "missions", "cell optimum",
                       "degradation"});
    for (const core::CellAssignment &assignment : detail.assignments) {
        cells.addRow(
            {assignment.cellName,
             detail.accelerators[assignment.designIndex].name(),
             util::formatDouble(assignment.missions, 1),
             util::formatDouble(assignment.cellOptimalMissions, 1),
             util::formatDouble(assignment.degradationPct, 1) + "%"});
    }
    cells.print(std::cout);

    std::cout << "\nThe curve quantifies Section VI: one shared DSSoC "
                 "costs missions on the cells it was not sized for; a "
                 "handful of designs recovers most of the custom-silicon "
                 "benefit.\n";
    return 0;
}
