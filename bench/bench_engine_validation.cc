/**
 * @file
 * Simulator-stack validation bench (gem5-Aladdin-style accuracy table):
 *
 *  1. Functional vs analytic: the register-level array's measured cycles
 *     must match the fold formula exactly (WS and OS) on random GEMMs.
 *  2. Analytical vs cycle-stepped engine: the fast DSE path must track
 *     the reference prefetch-timeline engine within a few percent across
 *     random layers and configurations.
 *  3. Cost-model backend agreement: the same fixed pool of design points
 *     through the analytical, cycle and tiered backends; the tiered
 *     screen must recover (nearly) the pure-cycle Pareto front while
 *     paying for several times fewer cycle-accurate simulations.
 *  4. Shared-DRAM contention sweep: the same pool through the
 *     contention backend under rising background camera/host traffic;
 *     latency must degrade monotonically and the achievable
 *     hypervolume must shrink as the channel fills.
 *  5. Bank-level row-locality sweep: a design-point subset through the
 *     dram backend while the background stream turns from linear to
 *     random; the row-buffer hit rate must fall and both mean latency
 *     and DRAM command energy must rise with the randomness knob.
 *  6. Operand-precision sweep: one fixed (config, policy) pair at
 *     int8/fp16/fp32 - MAC energy, SRAM energy and DRAM traffic must
 *     all strictly increase with element width - then the quantized
 *     backend over an int8-only vs full-precision Phase 2 space; the
 *     widened space must shift the Pareto knee (hypervolume can only
 *     grow, and the front must use more than one precision).
 *
 * Exit code is non-zero when any monotonicity gate fails, so CI can
 * enforce the physics, not just print it.
 */

#include <algorithm>
#include <iostream>
#include <set>

#include "airlearning/trainer.h"
#include "dram/config.h"
#include "dse/eval_backend.h"
#include "dse/evaluator.h"
#include "dse/hypervolume.h"
#include "dse/pareto.h"
#include "nn/e2e_template.h"
#include "power/dram_model.h"
#include "power/npu_power.h"
#include "systolic/cycle_engine.h"
#include "systolic/engine.h"
#include "systolic/functional.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    util::Rng rng(0x5A11DA7E);
    std::cout << "=== Simulator validation ===\n\n";

    // --- 1. Functional (register-level) vs analytic fold timing ---
    std::cout << "(1) Register-level array vs analytic fold formula "
                 "(random GEMMs):\n";
    int exact_ws = 0, exact_os = 0;
    const int gemm_trials = 30;
    for (int trial = 0; trial < gemm_trials; ++trial) {
        const int m = rng.uniformInt(1, 40);
        const int k = rng.uniformInt(1, 60);
        const int n = rng.uniformInt(1, 40);
        const int pe = 1 << rng.uniformInt(1, 4); // 2..16.
        systolic::IntMatrix a(m, k), b(k, n);
        for (auto &v : a.data)
            v = rng.uniformInt(-128, 127);
        for (auto &v : b.data)
            v = rng.uniformInt(-128, 127);

        nn::GemmShape gemm;
        gemm.m = m;
        gemm.n = n;
        gemm.k = k;
        systolic::AcceleratorConfig config;
        config.peRows = pe;
        config.peCols = pe;

        const auto ws = systolic::runWeightStationaryGemm(a, b, pe, pe);
        exact_ws +=
            (ws.totalCycles ==
             systolic::scheduleGemm(gemm, config).computeCycles()) &&
            (ws.output.data == systolic::referenceGemm(a, b).data);

        config.dataflow = systolic::Dataflow::OutputStationary;
        const auto os = systolic::runOutputStationaryGemm(a, b, pe, pe);
        exact_os +=
            (os.totalCycles ==
             systolic::scheduleGemm(gemm, config).computeCycles()) &&
            (os.output.data == systolic::referenceGemm(a, b).data);
    }
    std::cout << "WS: " << exact_ws << "/" << gemm_trials
              << " bit- and cycle-exact; OS: " << exact_os << "/"
              << gemm_trials << "\n\n";

    // --- 2. Analytical vs cycle-stepped engine across the space ---
    std::cout << "(2) Analytical engine vs cycle-stepped reference "
                 "(full policies, random configs):\n";
    const systolic::HardwareSpace space;
    std::vector<double> errors;
    util::Table worst({"config", "policy", "analytic cycles",
                       "cycle-engine cycles", "error %"});
    double worst_error = -1.0;
    std::vector<std::string> worst_row;
    for (int trial = 0; trial < 60; ++trial) {
        systolic::AcceleratorConfig config;
        config.peRows = space.peRowChoices[rng.index(6)]; // <= 256.
        config.peCols = space.peColChoices[rng.index(6)];
        config.ifmapSramKb = space.sramKbChoices[rng.index(8)];
        config.filterSramKb = space.sramKbChoices[rng.index(8)];
        config.ofmapSramKb = space.sramKbChoices[rng.index(8)];

        nn::PolicyHyperParams params;
        params.numConvLayers = rng.uniformInt(2, 10);
        params.numFilters =
            nn::PolicySpace().filterChoices[rng.index(3)];
        const nn::Model model = nn::buildE2EModel(params);

        const systolic::AnalyticalEngine fast(config);
        const systolic::CycleEngine reference(config);
        const auto fast_run = fast.run(model);
        const auto ref_run = reference.run(model);
        const double error =
            100.0 *
            std::abs(double(fast_run.totalCycles) -
                     double(ref_run.totalCycles)) /
            double(ref_run.totalCycles);
        errors.push_back(error);
        if (error > worst_error) {
            worst_error = error;
            worst_row = {config.name(), model.name(),
                         std::to_string(fast_run.totalCycles),
                         std::to_string(ref_run.totalCycles),
                         util::formatDouble(error, 2)};
        }
    }
    worst.addRow(worst_row);

    std::cout << "60 random (policy, config) pairs: mean error "
              << util::formatDouble(util::mean(errors), 2)
              << " %, p95 "
              << util::formatDouble(util::percentile(errors, 95), 2)
              << " %, max " << util::formatDouble(worst_error, 2)
              << " %\n\nWorst case:\n";
    worst.print(std::cout);

    // --- 3. Backend agreement on a fixed design-point pool ---
    std::cout << "\n(3) Cost-model backends on one fixed pool of 160 "
                 "random design points:\n";
    airlearning::TrainerConfig trainer_config;
    trainer_config.validationEpisodes = 30;
    const airlearning::Trainer trainer(trainer_config);
    airlearning::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(),
                     airlearning::ObstacleDensity::Dense, db);

    const dse::DesignSpace design_space;
    util::Rng pool_rng(0xBEC0);
    std::set<dse::Encoding> seen;
    std::vector<dse::Encoding> points;
    while (points.size() < 160) {
        const dse::Encoding encoding =
            design_space.randomEncoding(pool_rng);
        if (seen.insert(encoding).second)
            points.push_back(encoding);
    }

    const dse::Objectives reference = {1.0, 12.0, 120.0};
    util::Table backends({"backend", "cycle sims", "front size",
                          "hypervolume", "dHV vs cycle %"});
    double cycle_hv = 0.0;
    double tiered_hv = 0.0;
    std::size_t tiered_sims = 0;
    for (const char *backend_name : {"analytical", "cycle", "tiered"}) {
        dse::DseEvaluator evaluator(
            db, airlearning::ObstacleDensity::Dense, backend_name);
        evaluator.evaluateBatch(points);

        std::vector<dse::Objectives> objectives;
        for (const dse::Evaluation &eval : evaluator.allEvaluations())
            objectives.push_back(eval.objectives);
        const auto front = dse::paretoFront(objectives);
        const double hv = dse::hypervolume(front, reference);

        std::size_t cycle_sims = 0;
        if (std::string(backend_name) == "cycle")
            cycle_sims = points.size();
        else if (const auto *tiered =
                     dynamic_cast<const dse::TieredBackend *>(
                         &evaluator.backend()))
            cycle_sims = tiered->promotedCount();

        if (std::string(backend_name) == "cycle")
            cycle_hv = hv;
        if (std::string(backend_name) == "tiered") {
            tiered_hv = hv;
            tiered_sims = cycle_sims;
        }
        const double dhv =
            cycle_hv > 0.0 ? 100.0 * (hv - cycle_hv) / cycle_hv : 0.0;
        backends.addRow({backend_name, std::to_string(cycle_sims),
                         std::to_string(front.size()),
                         util::formatDouble(hv, 4),
                         std::string(backend_name) == "analytical"
                             ? "-"
                             : util::formatDouble(dhv, 3)});
    }
    backends.print(std::cout);
    const double saving =
        tiered_sims == 0 ? 0.0
                         : double(points.size()) / double(tiered_sims);
    std::cout << "tiered backend: " << tiered_sims << "/"
              << points.size() << " points promoted to cycle-accurate ("
              << util::formatDouble(saving, 1)
              << "x fewer cycle sims), front hypervolume within "
              << util::formatDouble(
                     cycle_hv > 0.0 ? 100.0 *
                                          std::abs(tiered_hv - cycle_hv) /
                                          cycle_hv
                                    : 0.0,
                     3)
              << " % of pure cycle\n";

    // --- 4. Shared-DRAM contention sweep over the same pool ---
    std::cout << "\n(4) Contention backend under background DRAM "
                 "traffic (same pool):\n";
    util::Table sweep({"background GB/s", "mean latency ms",
                       "max latency ms", "front size", "hypervolume"});
    double prev_mean_latency = -1.0;
    double prev_hv = -1.0;
    bool latency_monotonic = true;
    bool hv_monotonic = true;
    for (const double background_gbps : {0.0, 1.6, 3.2, 4.8}) {
        systolic::ContentionProfile profile;
        profile.cameraBytesPerSec = background_gbps * 1e9;
        dse::DseEvaluator evaluator(db,
                                    airlearning::ObstacleDensity::Dense,
                                    "contention", profile);
        evaluator.evaluateBatch(points);

        std::vector<double> latencies;
        std::vector<dse::Objectives> objectives;
        for (const dse::Evaluation &eval :
             evaluator.allEvaluations()) {
            latencies.push_back(eval.latencyMs);
            objectives.push_back(eval.objectives);
        }
        const double mean_latency = util::mean(latencies);
        const auto front = dse::paretoFront(objectives);
        const double hv = dse::hypervolume(front, reference);
        if (prev_mean_latency >= 0.0 &&
            mean_latency < prev_mean_latency)
            latency_monotonic = false;
        if (prev_hv >= 0.0 && hv > prev_hv)
            hv_monotonic = false;
        prev_mean_latency = mean_latency;
        prev_hv = hv;
        sweep.addRow(
            {util::formatDouble(background_gbps, 1),
             util::formatDouble(mean_latency, 3),
             util::formatDouble(
                 *std::max_element(latencies.begin(), latencies.end()),
                 3),
             std::to_string(front.size()),
             util::formatDouble(hv, 4)});
    }
    sweep.print(std::cout);
    std::cout << "mean latency "
              << (latency_monotonic ? "rises monotonically"
                                    : "NOT MONOTONIC")
              << " and hypervolume "
              << (hv_monotonic ? "shrinks monotonically"
                               : "NOT MONOTONIC")
              << " as background traffic grows\n";

    // --- 5. Bank-level row-locality sweep (dram backend) ---
    // A fixed 600 MB/s background stream (below the random-access
    // service capacity, so every burst lands) turns from a linear
    // camera-like scan into pure random access. Row-buffer physics must
    // show through end to end: hits fall, the NPU waits longer, and the
    // command-billed DRAM energy (extra activates) grows.
    std::cout << "\n(5) Dram backend row-locality sweep (40-point "
                 "subset, 0.6 GB/s background):\n";
    const std::vector<dse::Encoding> locality_points(points.begin(),
                                                     points.begin() + 40);
    const power::DramModel dram_power;
    util::Table locality({"randomness", "row hit %", "mean latency ms",
                          "activates", "command energy mJ"});
    double prev_hit_rate = 2.0;
    double prev_dram_latency = -1.0;
    double prev_energy_mj = -1.0;
    bool hit_rate_falls = true;
    bool dram_latency_monotonic = true;
    bool energy_monotonic = true;
    for (const double randomness : {0.0, 0.25, 0.5, 1.0}) {
        const dram::DramSpec spec = dram::uavDramSpec(
            dram::DramTiming{}, 0.0, 6.0e8, randomness);
        dse::DramBackend backend(
            {&db, airlearning::ObstacleDensity::Dense, {}, spec});

        std::vector<double> latencies;
        for (const dse::Encoding &encoding : locality_points) {
            latencies.push_back(
                backend.evaluate(design_space.decode(encoding))
                    .latencyMs);
        }
        const double mean_latency = util::mean(latencies);
        const double accesses = double(backend.rowHits()) +
                                double(backend.rowMisses()) +
                                double(backend.rowConflicts());
        const double hit_rate =
            accesses > 0.0 ? double(backend.rowHits()) / accesses : 0.0;
        const double energy_mj =
            (dram_power.activateEnergyPj() *
                 double(backend.activates()) +
             dram_power.refreshEnergyPj() *
                 double(backend.refreshes()) +
             dram_power.ioPjPerByte() *
                 double(backend.channelBytes())) *
            1e-9;

        if (hit_rate > prev_hit_rate)
            hit_rate_falls = false;
        if (prev_dram_latency >= 0.0 &&
            mean_latency < prev_dram_latency)
            dram_latency_monotonic = false;
        if (prev_energy_mj >= 0.0 && energy_mj < prev_energy_mj)
            energy_monotonic = false;
        prev_hit_rate = hit_rate;
        prev_dram_latency = mean_latency;
        prev_energy_mj = energy_mj;
        locality.addRow({util::formatDouble(randomness, 2),
                         util::formatDouble(100.0 * hit_rate, 1),
                         util::formatDouble(mean_latency, 3),
                         std::to_string(backend.activates()),
                         util::formatDouble(energy_mj, 3)});
    }
    locality.print(std::cout);
    std::cout << "row-buffer hit rate "
              << (hit_rate_falls ? "falls" : "does NOT fall")
              << ", mean latency "
              << (dram_latency_monotonic ? "rises" : "NOT MONOTONIC")
              << " and command energy "
              << (energy_monotonic ? "rises" : "NOT MONOTONIC")
              << " as the background stream turns random\n";

    // --- 6. Operand-precision sweep (quantized backend) ---
    // Fixed (config, policy) pair at int8/fp16/fp32: every cost the
    // element width touches must respond. Energies (not average watts)
    // are compared so a longer runtime cannot mask a larger energy.
    std::cout << "\n(6) Precision sweep at one fixed (config, policy) "
                 "pair:\n";
    systolic::AcceleratorConfig precision_config;
    nn::PolicyHyperParams precision_params;
    precision_params.numConvLayers = 5;
    precision_params.numFilters = 32;
    const nn::Model precision_model =
        nn::buildE2EModel(precision_params);

    util::Table precisions({"precision", "MAC energy mJ",
                            "SRAM energy mJ", "DRAM MB", "latency ms"});
    double prev_mac_mj = -1.0, prev_sram_mj = -1.0;
    double prev_dram_mb = -1.0;
    bool mac_energy_grows = true;
    bool sram_energy_grows = true;
    bool traffic_grows = true;
    for (const int width : {1, 2, 4}) {
        precision_config.bytesPerElement = width;
        const systolic::AnalyticalEngine engine(precision_config);
        const systolic::RunResult run = engine.run(precision_model);
        const power::NpuPowerModel model(precision_config);
        const power::NpuPowerBreakdown breakdown = model.estimate(run);
        const double seconds =
            run.runtimeSeconds(precision_config.clockGhz);
        const double mac_mj = breakdown.peDynamicW * seconds * 1e3;
        const double sram_mj = breakdown.sramDynamicW * seconds * 1e3;
        const double dram_mb = double(run.traffic.totalDramBytes()) / 1e6;
        if (mac_mj <= prev_mac_mj)
            mac_energy_grows = false;
        if (sram_mj <= prev_sram_mj)
            sram_energy_grows = false;
        if (dram_mb <= prev_dram_mb)
            traffic_grows = false;
        prev_mac_mj = mac_mj;
        prev_sram_mj = sram_mj;
        prev_dram_mb = dram_mb;
        precisions.addRow(
            {systolic::precisionName(width),
             util::formatDouble(mac_mj, 4),
             util::formatDouble(sram_mj, 4),
             util::formatDouble(dram_mb, 3),
             util::formatDouble(
                 run.runtimeSeconds(precision_config.clockGhz) * 1e3,
                 3)});
    }
    precisions.print(std::cout);
    std::cout << "MAC energy "
              << (mac_energy_grows ? "grows" : "does NOT grow")
              << ", SRAM energy "
              << (sram_energy_grows ? "grows" : "does NOT grow")
              << " and DRAM traffic "
              << (traffic_grows ? "grows" : "does NOT grow")
              << " strictly with element width\n";

    // Knee shift: the same budget of random base configs, evaluated by
    // the quantized backend over the pinned int8 space and over the
    // full int8+fp16+fp32 space. The widened space's points are a
    // superset in objective space, so its front hypervolume can only
    // grow; a genuine knee shift additionally puts more than one
    // precision on the front.
    std::cout << "\n(6b) Quantized backend: int8-only vs "
                 "int8+fp16+fp32 design space (same 60 base configs):\n";
    const std::vector<int> full_widths = {1, 2, 4};
    dse::DseEvaluator quantized(db, airlearning::ObstacleDensity::Dense,
                                "quantized", {}, {}, full_widths);
    util::Rng knee_rng(0x0DD5);
    std::vector<dse::Encoding> base_points;
    std::set<dse::Encoding> base_seen;
    while (base_points.size() < 60) {
        dse::Encoding encoding =
            quantized.space().randomEncoding(knee_rng);
        encoding[dse::precisionDim] = 0;
        if (base_seen.insert(encoding).second)
            base_points.push_back(encoding);
    }
    std::vector<dse::Encoding> all_points;
    for (const dse::Encoding &base : base_points) {
        for (std::size_t w = 0; w < full_widths.size(); ++w) {
            dse::Encoding encoding = base;
            encoding[dse::precisionDim] = int(w);
            all_points.push_back(encoding);
        }
    }
    quantized.evaluateBatch(all_points);

    // Per-base-config physics: widening the operands must never lower
    // the collision-avoidance success rate (the fp recovery term) and
    // must strictly raise per-inference NPU energy (power x latency -
    // average watts alone could hide the cost behind a longer runtime).
    bool success_monotonic = true;
    bool npu_energy_monotonic = true;
    std::vector<dse::Objectives> int8_objectives;
    std::vector<dse::Objectives> full_objectives;
    std::size_t front_precisions = 0;
    {
        std::vector<const dse::Evaluation *> evals;
        for (const dse::Encoding &encoding : all_points)
            evals.push_back(&quantized.evaluate(encoding));
        for (std::size_t i = 0; i < evals.size(); i += 3) {
            if (evals[i]->successRate > evals[i + 1]->successRate ||
                evals[i + 1]->successRate > evals[i + 2]->successRate)
                success_monotonic = false;
            const double mj_int8 =
                evals[i]->npuPowerW * evals[i]->latencyMs;
            const double mj_fp16 =
                evals[i + 1]->npuPowerW * evals[i + 1]->latencyMs;
            const double mj_fp32 =
                evals[i + 2]->npuPowerW * evals[i + 2]->latencyMs;
            if (mj_int8 >= mj_fp16 || mj_fp16 >= mj_fp32)
                npu_energy_monotonic = false;
            int8_objectives.push_back(evals[i]->objectives);
        }
        for (const dse::Evaluation *eval : evals)
            full_objectives.push_back(eval->objectives);

        const auto full_front = dse::paretoFront(full_objectives);
        std::set<std::string> widths_on_front;
        for (const dse::Evaluation *eval : evals) {
            for (const dse::Objectives &obj : full_front) {
                if (obj == eval->objectives)
                    widths_on_front.insert(eval->precision);
            }
        }
        front_precisions = widths_on_front.size();
    }
    const double int8_hv =
        dse::hypervolume(dse::paretoFront(int8_objectives), reference);
    const double full_hv =
        dse::hypervolume(dse::paretoFront(full_objectives), reference);
    const bool knee_shifts =
        full_hv >= int8_hv && front_precisions > 1;
    std::cout << "int8-only hypervolume "
              << util::formatDouble(int8_hv, 4)
              << ", int8+fp16+fp32 hypervolume "
              << util::formatDouble(full_hv, 4) << " (+"
              << util::formatDouble(
                     int8_hv > 0.0
                         ? 100.0 * (full_hv - int8_hv) / int8_hv
                         : 0.0,
                     2)
              << " %), " << front_precisions
              << " precisions on the widened front\n";
    std::cout << "success rate "
              << (success_monotonic ? "never falls" : "FALLS")
              << " and per-inference NPU energy "
              << (npu_energy_monotonic ? "strictly rises"
                                       : "NOT MONOTONIC")
              << " with element width; knee "
              << (knee_shifts ? "shifts" : "does NOT shift") << "\n";

    return latency_monotonic && hv_monotonic && hit_rate_falls &&
                   dram_latency_monotonic && energy_monotonic &&
                   mac_energy_grows && sram_energy_grows &&
                   traffic_grows && success_monotonic &&
                   npu_energy_monotonic && knee_shifts
               ? 0
               : 1;
}
