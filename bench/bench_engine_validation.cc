/**
 * @file
 * Simulator-stack validation bench (gem5-Aladdin-style accuracy table):
 *
 *  1. Functional vs analytic: the register-level array's measured cycles
 *     must match the fold formula exactly (WS and OS) on random GEMMs.
 *  2. Analytical vs cycle-stepped engine: the fast DSE path must track
 *     the reference prefetch-timeline engine within a few percent across
 *     random layers and configurations.
 */

#include <algorithm>
#include <iostream>

#include "nn/e2e_template.h"
#include "systolic/cycle_engine.h"
#include "systolic/engine.h"
#include "systolic/functional.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    util::Rng rng(0x5A11DA7E);
    std::cout << "=== Simulator validation ===\n\n";

    // --- 1. Functional (register-level) vs analytic fold timing ---
    std::cout << "(1) Register-level array vs analytic fold formula "
                 "(random GEMMs):\n";
    int exact_ws = 0, exact_os = 0;
    const int gemm_trials = 30;
    for (int trial = 0; trial < gemm_trials; ++trial) {
        const int m = rng.uniformInt(1, 40);
        const int k = rng.uniformInt(1, 60);
        const int n = rng.uniformInt(1, 40);
        const int pe = 1 << rng.uniformInt(1, 4); // 2..16.
        systolic::IntMatrix a(m, k), b(k, n);
        for (auto &v : a.data)
            v = rng.uniformInt(-128, 127);
        for (auto &v : b.data)
            v = rng.uniformInt(-128, 127);

        nn::GemmShape gemm;
        gemm.m = m;
        gemm.n = n;
        gemm.k = k;
        systolic::AcceleratorConfig config;
        config.peRows = pe;
        config.peCols = pe;

        const auto ws = systolic::runWeightStationaryGemm(a, b, pe, pe);
        exact_ws +=
            (ws.totalCycles ==
             systolic::scheduleGemm(gemm, config).computeCycles()) &&
            (ws.output.data == systolic::referenceGemm(a, b).data);

        config.dataflow = systolic::Dataflow::OutputStationary;
        const auto os = systolic::runOutputStationaryGemm(a, b, pe, pe);
        exact_os +=
            (os.totalCycles ==
             systolic::scheduleGemm(gemm, config).computeCycles()) &&
            (os.output.data == systolic::referenceGemm(a, b).data);
    }
    std::cout << "WS: " << exact_ws << "/" << gemm_trials
              << " bit- and cycle-exact; OS: " << exact_os << "/"
              << gemm_trials << "\n\n";

    // --- 2. Analytical vs cycle-stepped engine across the space ---
    std::cout << "(2) Analytical engine vs cycle-stepped reference "
                 "(full policies, random configs):\n";
    const systolic::HardwareSpace space;
    std::vector<double> errors;
    util::Table worst({"config", "policy", "analytic cycles",
                       "cycle-engine cycles", "error %"});
    double worst_error = -1.0;
    std::vector<std::string> worst_row;
    for (int trial = 0; trial < 60; ++trial) {
        systolic::AcceleratorConfig config;
        config.peRows = space.peRowChoices[rng.index(6)]; // <= 256.
        config.peCols = space.peColChoices[rng.index(6)];
        config.ifmapSramKb = space.sramKbChoices[rng.index(8)];
        config.filterSramKb = space.sramKbChoices[rng.index(8)];
        config.ofmapSramKb = space.sramKbChoices[rng.index(8)];

        nn::PolicyHyperParams params;
        params.numConvLayers = rng.uniformInt(2, 10);
        params.numFilters =
            nn::PolicySpace().filterChoices[rng.index(3)];
        const nn::Model model = nn::buildE2EModel(params);

        const systolic::AnalyticalEngine fast(config);
        const systolic::CycleEngine reference(config);
        const auto fast_run = fast.run(model);
        const auto ref_run = reference.run(model);
        const double error =
            100.0 *
            std::abs(double(fast_run.totalCycles) -
                     double(ref_run.totalCycles)) /
            double(ref_run.totalCycles);
        errors.push_back(error);
        if (error > worst_error) {
            worst_error = error;
            worst_row = {config.name(), model.name(),
                         std::to_string(fast_run.totalCycles),
                         std::to_string(ref_run.totalCycles),
                         util::formatDouble(error, 2)};
        }
    }
    worst.addRow(worst_row);

    std::cout << "60 random (policy, config) pairs: mean error "
              << util::formatDouble(util::mean(errors), 2)
              << " %, p95 "
              << util::formatDouble(util::percentile(errors, 95), 2)
              << " %, max " << util::formatDouble(worst_error, 2)
              << " %\n\nWorst case:\n";
    worst.print(std::cout);
    return 0;
}
