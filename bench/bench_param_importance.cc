/**
 * @file
 * Design-space sensitivity analysis: which Table II knob moves which
 * objective? One-at-a-time perturbation around random base points: for
 * every encoded dimension, step it one choice up/down and record the
 * mean relative change in SoC power and inference latency. Tells an
 * architect where the leverage is (and the optimizer's GP length scale
 * what to expect).
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "airlearning/trainer.h"
#include "dse/evaluator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Table II knob sensitivity (one-at-a-time, 40 "
                 "random base points) ===\n\n";

    airlearning::TrainerConfig trainer_config;
    trainer_config.validationEpisodes = 60;
    const airlearning::Trainer trainer(trainer_config);
    airlearning::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(),
                     airlearning::ObstacleDensity::Dense, db);

    dse::DseEvaluator evaluator(db, airlearning::ObstacleDensity::Dense);
    const dse::DesignSpace &space = evaluator.space();
    util::Rng rng(0x1A8);

    const char *dim_names[dse::designDims] = {
        "NN layers",  "NN filters",  "PE rows",    "PE cols",
        "ifmap SRAM", "filter SRAM", "ofmap SRAM", "precision"};

    std::vector<std::vector<double>> power_delta(dse::designDims);
    std::vector<std::vector<double>> latency_delta(dse::designDims);
    std::vector<std::vector<double>> success_delta(dse::designDims);

    const int base_points = 40;
    for (int i = 0; i < base_points; ++i) {
        const dse::Encoding base = space.randomEncoding(rng);
        const dse::Evaluation base_eval = evaluator.evaluate(base);
        for (std::size_t d = 0; d < dse::designDims; ++d) {
            for (int step : {-1, 1}) {
                dse::Encoding probe = base;
                probe[d] += step;
                if (probe[d] < 0 ||
                    probe[d] >= space.dimensionSizes()[d])
                    continue;
                const dse::Evaluation probe_eval =
                    evaluator.evaluate(probe);
                power_delta[d].push_back(
                    std::abs(probe_eval.socPowerW -
                             base_eval.socPowerW) /
                    base_eval.socPowerW);
                latency_delta[d].push_back(
                    std::abs(probe_eval.latencyMs -
                             base_eval.latencyMs) /
                    base_eval.latencyMs);
                success_delta[d].push_back(std::abs(
                    probe_eval.successRate - base_eval.successRate));
            }
        }
    }

    util::Table table({"knob", "mean |dPower| %", "mean |dLatency| %",
                       "mean |dSuccess| pts"});
    for (std::size_t d = 0; d < dse::designDims; ++d) {
        table.addRow(
            {dim_names[d],
             util::formatDouble(util::mean(power_delta[d]) * 100, 1),
             util::formatDouble(util::mean(latency_delta[d]) * 100, 1),
             util::formatDouble(util::mean(success_delta[d]) * 100,
                                1)});
    }
    table.print(std::cout);

    std::cout << "\nExpected structure: PE dimensions dominate both "
                 "power and latency; SRAM sizes matter mostly through "
                 "leakage and residency; only the NN knobs move the "
                 "success rate (Section III-B: success depends only on "
                 "the hyperparameters).\n";
    return 0;
}
