/**
 * @file
 * Section VII/VIII extension bench: applying the AutoPilot methodology to
 * the Sense-Plan-Act paradigm and comparing against the E2E result.
 *
 * Phase 1 (SPA): measure task success as a function of the SPA decision
 * rate (the SPA "algorithm" is fixed; its quality is set by how fast the
 * sense-map-plan loop runs). Phase 2: sweep the parameterizable SPA stage
 * accelerators (Navion/OMU/RoboX-style lanes/banks/cores) for decision
 * rate and power. Phase 3: the same full-system machinery - heatsink
 * mass, F-1 roofline, missions - selects the SPA DSSoC; the result is
 * compared with the E2E AutoPilot design for the same vehicle/scenario.
 */

#include <iostream>
#include <map>

#include "bench_common.h"
#include "power/mass_model.h"
#include "power/soc_power.h"
#include "spa/accel_model.h"
#include "spa/pipeline.h"
#include "uav/mission.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== SPA vs E2E co-design (nano-UAV, dense obstacles) "
                 "===\n\n";

    const auto density = airlearning::ObstacleDensity::Dense;
    const auto env_config =
        airlearning::EnvironmentConfig::forDensity(density);
    const uav::UavSpec nano = uav::zhangNano();
    const uav::MissionModel mission_model(nano);
    const power::MassModel mass_model;

    // --- SPA Phase 1: success vs decision rate (memoized per rate) ---
    std::cout << "(1) SPA success rate vs decision rate:\n";
    util::Table phase1({"decision Hz", "success %", "collide %"});
    std::map<int, double> success_by_rate;
    for (int rate : {2, 5, 10, 20, 40, 60, 120}) {
        spa::SpaConfig config;
        config.decisionRateHz = rate;
        const auto result =
            spa::evaluateSpa(env_config, config, 300, 0x5BA);
        success_by_rate[rate] = result.successRate();
        phase1.addRow({std::to_string(rate),
                       util::formatDouble(result.successRate() * 100, 1),
                       util::formatDouble(
                           result.collisions * 100.0 / result.episodes,
                           1)});
    }
    phase1.print(std::cout);

    auto success_for = [&](double rate_hz) {
        // Piecewise-linear interpolation over the measured curve.
        int lo = 2, hi = 120;
        for (const auto &[rate, unused] : success_by_rate) {
            if (rate <= rate_hz)
                lo = rate;
            if (rate >= rate_hz) {
                hi = rate;
                break;
            }
        }
        if (lo == hi)
            return success_by_rate[lo];
        const double frac = (rate_hz - lo) / double(hi - lo);
        return success_by_rate[lo] * (1.0 - frac) +
               success_by_rate[hi] * frac;
    };

    // --- SPA Phase 2 + 3: sweep stage accelerators, select by missions.
    const spa::SpaComputeModel compute;
    const spa::SpaHardwareSpace space;
    struct Candidate
    {
        spa::SpaAcceleratorConfig config;
        spa::SpaComputeEstimate estimate;
        double successRate = 0.0;
        uav::MissionResult mission;
    };
    Candidate best;
    bool have_best = false;
    for (const spa::SpaAcceleratorConfig &config : space.enumerate()) {
        Candidate candidate;
        candidate.config = config;
        candidate.estimate = compute.estimate(config);
        const double rate = candidate.estimate.decisionRateHz();
        candidate.successRate = success_for(rate);
        const double soc_w =
            power::socPower(candidate.estimate.powerW).totalW();
        const double payload =
            mass_model.computePayloadGrams(candidate.estimate.powerW);
        candidate.mission =
            mission_model.evaluate(payload, soc_w, rate, 60.0);
        // Weight mission value by success (failed missions waste the
        // battery without delivering).
        const double value =
            candidate.mission.numMissions * candidate.successRate;
        if (!have_best ||
            value > best.mission.numMissions * best.successRate) {
            best = candidate;
            have_best = true;
        }
    }

    std::cout << "\n(2) Selected SPA DSSoC: " << best.config.name()
              << "\n";
    util::Table spa_table({"metric", "value"});
    spa_table.addRow({"decision rate",
                      util::formatDouble(
                          best.estimate.decisionRateHz(), 1) + " Hz"});
    spa_table.addRow({"stage latencies (vio/map/plan)",
                      util::formatDouble(best.estimate.vioLatencyMs, 1) +
                          " / " +
                          util::formatDouble(
                              best.estimate.mappingLatencyMs, 1) +
                          " / " +
                          util::formatDouble(
                              best.estimate.planningLatencyMs, 1) +
                          " ms"});
    spa_table.addRow({"accelerator power",
                      util::formatDouble(best.estimate.powerW, 2) +
                          " W"});
    spa_table.addRow({"success rate",
                      util::formatDouble(best.successRate * 100, 1) +
                          " %"});
    spa_table.addRow({"missions",
                      util::formatDouble(best.mission.numMissions, 1)});
    spa_table.print(std::cout);

    // --- E2E AutoPilot for the same task ---
    core::AutoPilot pilot(bench::benchTask(density));
    const core::AutoPilotRun run = pilot.designFor(nano);
    const core::FullSystemDesign &e2e = run.selected;

    std::cout << "\n(3) E2E vs SPA on the same vehicle/scenario:\n";
    util::Table compare({"paradigm", "design", "action Hz", "NPU W",
                         "success %", "missions"});
    compare.addRow(
        {"E2E", bench::designLabel(e2e),
         util::formatDouble(e2e.mission.actionThroughputHz, 1),
         util::formatDouble(e2e.eval.npuPowerW, 2),
         util::formatDouble(e2e.eval.successRate * 100, 1),
         util::formatDouble(e2e.mission.numMissions, 1)});
    compare.addRow(
        {"SPA", best.config.name(),
         util::formatDouble(best.mission.actionThroughputHz, 1),
         util::formatDouble(best.estimate.powerW, 2),
         util::formatDouble(best.successRate * 100, 1),
         util::formatDouble(best.mission.numMissions, 1)});
    compare.print(std::cout);

    std::cout << "\nPaper (Section II): E2E policies are computationally "
                 "cheaper than SPA per decision, and AutoPilot's "
                 "methodology applies to both once the templates are "
                 "parameterizable.\n";
    return 0;
}
