/**
 * @file
 * Sensor-rate sensitivity study (the Section V-C setup: "we assume both
 * UAVs are equipped with 60 FPS sensors to avoid being sensor-bound").
 *
 * For each vehicle, evaluate the same AutoPilot-class design with a
 * 30 FPS and a 60 FPS camera: vehicles whose knee exceeds 30 Hz lose
 * velocity and missions when the sensor, not the compute, caps the
 * pipeline - showing why the sensor choice is part of the co-design.
 */

#include <iostream>

#include "power/mass_model.h"
#include "uav/bottleneck.h"
#include "uav/mission.h"
#include "uav/uav_spec.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Sensor-rate sensitivity (same compute, 30 vs 60 "
                 "FPS camera) ===\n\n";

    const power::MassModel mass_model;
    // An AutoPilot-class design: plenty of compute (60+ FPS), ~0.7 W.
    const double npu_w = 0.7;
    const double compute_fps = 80.0;
    const double payload = mass_model.computePayloadGrams(npu_w);
    const double soc_w = npu_w + 0.123;

    util::Table table({"UAV", "sensor FPS", "action Hz", "knee Hz",
                       "bottleneck", "v_safe m/s", "missions",
                       "missions lost"});
    for (const uav::UavSpec &vehicle : uav::allUavs()) {
        const uav::MissionModel mission_model(vehicle);
        double baseline_missions = 0.0;
        for (int sensor_fps : {60, 30}) {
            const auto mission = mission_model.evaluate(
                payload, soc_w, compute_fps,
                static_cast<double>(sensor_fps));
            const auto report = uav::analyzeBottleneck(
                vehicle, payload, compute_fps,
                static_cast<double>(sensor_fps));
            if (sensor_fps == 60)
                baseline_missions = mission.numMissions;
            const double lost =
                baseline_missions > 0.0
                    ? 100.0 *
                          (1.0 -
                           mission.numMissions / baseline_missions)
                    : 0.0;
            table.addRow(
                {vehicle.name, std::to_string(sensor_fps),
                 util::formatDouble(mission.actionThroughputHz, 1),
                 util::formatDouble(mission.kneeThroughputHz, 1),
                 uav::bottleneckStageName(report.stage),
                 util::formatDouble(mission.safeVelocityMps, 1),
                 util::formatDouble(mission.numMissions, 1),
                 util::formatDouble(lost, 0) + "%"});
        }
    }
    table.print(std::cout);

    std::cout << "\nVehicles with knee points above 30 Hz (the nano-UAV "
                 "at ~46 Hz) become sensor-bound with a 30 FPS camera - "
                 "the compute cannot buy back the lost velocity.\n";
    return 0;
}
