/**
 * @file
 * Reproduces Fig. 11: UAV agility increases the compute-throughput
 * requirement.
 *
 * Both vehicles carry 60 FPS sensors (to avoid being sensor-bound) and an
 * AutoPilot-class compute payload. The F-1 model gives each vehicle's
 * knee point: the paper reports ~27 Hz for the DJI Spark and ~46 Hz for
 * the more agile nano-UAV, i.e., the nano needs roughly 2x the compute
 * throughput of the Spark to maximize its safe velocity.
 */

#include <iostream>

#include "power/mass_model.h"
#include "uav/f1_model.h"
#include "uav/propulsion.h"
#include "uav/uav_spec.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Fig. 11: UAV agility vs. compute requirement ===\n";
    std::cout << "(60 FPS sensor on both UAVs; AutoPilot-class compute "
                 "payload)\n\n";

    const power::MassModel mass_model;
    struct Case
    {
        uav::UavSpec spec;
        double npuPowerW;
    };
    const Case cases[] = {
        {uav::djiSpark(), 1.5},
        {uav::zhangNano(), 0.7},
    };

    util::Table table({"UAV", "payload (g)", "max accel (m/s^2)",
                       "v ceiling (m/s)", "knee point (Hz)"});
    double knee_spark = 0.0, knee_nano = 0.0;
    for (const Case &c : cases) {
        const double payload =
            mass_model.computePayloadGrams(c.npuPowerW);
        const uav::F1Model f1(c.spec, payload);
        const double accel = uav::maxAccelerationMps2(
            c.spec, f1.totalMassGrams());
        table.addRow({c.spec.name, util::formatDouble(payload, 1),
                      util::formatDouble(accel, 1),
                      util::formatDouble(f1.velocityCeilingMps(), 1),
                      util::formatDouble(f1.kneeThroughputHz(), 1)});
        if (c.spec.uavClass == uav::UavClass::Micro)
            knee_spark = f1.kneeThroughputHz();
        else
            knee_nano = f1.kneeThroughputHz();
    }
    table.print(std::cout);

    std::cout << "\nNano/Spark knee-point ratio: "
              << util::formatRatio(knee_nano / knee_spark)
              << " (paper: ~46 Hz vs ~27 Hz, about 1.7-2x)\n";

    // F-1 curves (Fig. 11a): safe velocity vs action throughput.
    std::cout << "\nF-1 curves (velocity m/s at throughput Hz):\n";
    util::Table curve({"throughput (Hz)", "DJI Spark", "nano-UAV"});
    const uav::F1Model spark_f1(
        cases[0].spec, mass_model.computePayloadGrams(cases[0].npuPowerW));
    const uav::F1Model nano_f1(
        cases[1].spec, mass_model.computePayloadGrams(cases[1].npuPowerW));
    for (double hz : {5.0, 10.0, 20.0, 27.0, 35.0, 46.0, 60.0, 90.0}) {
        curve.addRow({util::formatDouble(hz, 0),
                      util::formatDouble(spark_f1.safeVelocityMps(hz), 2),
                      util::formatDouble(nano_f1.safeVelocityMps(hz), 2)});
    }
    curve.print(std::cout);
    return 0;
}
