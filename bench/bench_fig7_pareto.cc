/**
 * @file
 * Reproduces Fig. 7: the Phase 2 Pareto frontier for the nano-UAV dense
 * scenario, the HT / LP / HE / AP design picks, and the
 * weight-power-velocity relationships that explain Phase 3's choice.
 *
 * Paper reference points: HT 205 FPS @ 8.24 W (65 g), AP 46 FPS @ 0.7 W
 * (24 g), HE 96 FPS @ 1.5 W (64 FPS/W vs AP 55 FPS/W), LP 18.4 Hz.
 */

#include <iostream>

#include "bench_common.h"
#include "uav/f1_model.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Fig. 7: Phase 2 frontier and design strategies "
                 "(nano-UAV, dense) ===\n\n";

    core::AutoPilot pilot(
        bench::benchTask(airlearning::ObstacleDensity::Dense));
    const uav::UavSpec nano = uav::zhangNano();
    const core::AutoPilotRun run = pilot.designFor(nano);

    // (a) Pareto frontier of the Phase 2 archive.
    const auto front = run.dseResult.front();
    std::cout << "(a) Phase 2 archive: " << run.dseResult.archive.size()
              << " evaluated designs, " << front.size()
              << " Pareto-optimal:\n";
    util::Table frontier({"design", "success %", "SoC W", "latency ms",
                          "FPS"});
    for (const dse::Evaluation &eval : front) {
        frontier.addRow({eval.point.name(),
                         util::formatDouble(eval.successRate * 100, 1),
                         util::formatDouble(eval.socPowerW, 2),
                         util::formatDouble(eval.latencyMs, 1),
                         util::formatDouble(eval.fps, 1)});
    }
    frontier.print(std::cout);

    // (d-g) Strategy picks on isolated compute metrics.
    const core::DesignStrategy strategies[] = {
        core::DesignStrategy::HighThroughput,
        core::DesignStrategy::LowPower,
        core::DesignStrategy::HighEfficiency,
        core::DesignStrategy::AutoPilotPick,
    };
    std::cout << "\n(b-g) Strategy picks (candidates with near-best "
                 "success):\n";
    util::Table picks({"strategy", "design", "FPS", "SoC W", "FPS/W",
                       "payload g", "v_safe m/s", "provisioning",
                       "missions"});
    for (core::DesignStrategy strategy : strategies) {
        const core::FullSystemDesign design =
            core::AutoPilot::selectByStrategy(run.candidates, strategy);
        picks.addRow(
            {core::strategyName(strategy), bench::designLabel(design),
             util::formatDouble(design.eval.fps, 1),
             util::formatDouble(design.eval.socPowerW, 2),
             util::formatDouble(design.eval.fps / design.eval.socPowerW,
                                1),
             util::formatDouble(design.payloadGrams, 1),
             util::formatDouble(design.mission.safeVelocityMps, 1),
             uav::provisioningName(design.mission.provisioning),
             util::formatDouble(design.mission.numMissions, 1)});
    }
    picks.print(std::cout);

    // (b, c) Weight vs power and velocity vs weight across candidates.
    std::cout << "\n(b, c) weight-power and velocity-weight relations "
                 "across candidates:\n";
    util::Table relations(
        {"design", "NPU W", "payload g", "v ceiling m/s"});
    for (const core::FullSystemDesign &candidate : run.candidates) {
        const uav::F1Model f1(nano, candidate.payloadGrams);
        relations.addRow(
            {candidate.eval.point.accel.name(),
             util::formatDouble(candidate.eval.npuPowerW, 2),
             util::formatDouble(candidate.payloadGrams, 1),
             util::formatDouble(f1.velocityCeilingMps(), 1)});
    }
    relations.print(std::cout);

    std::cout << "\nPaper anchors: HT 205 FPS @ 8.24 W (65 g); AP 46 FPS "
                 "@ 0.7 W (24 g); HE 96 FPS @ 1.5 W; LP 18.4 Hz.\n";
    return 0;
}
