/**
 * @file
 * Reproduces Table VI: the AutoPilot generalization taxonomy - which
 * components can fill each methodology phase for UAVs, self-driving
 * cars and articulated robots, with this work's configuration marked.
 */

#include <iostream>

#include "core/taxonomy.h"

int
main()
{
    std::cout << "=== Table VI: AutoPilot methodology taxonomy ===\n\n";
    autopilot::core::printTaxonomy(std::cout);
    std::cout << "\n('*' marks the configuration this library "
                 "implements: UAV / E2E with Air Learning, systolic "
                 "arrays + Bayesian optimization, and the F-1 model. "
                 "The SPA row is also exercised by "
                 "bench_spa_comparison.)\n";
    return 0;
}
