/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: the two
 * systolic engines, the GP surrogate, hypervolume, episode rollouts, and
 * the batch-parallel evaluation core at 1/2/4/8 worker threads. These
 * quantify the cost of one Phase 2 evaluation and one Phase 1 validation
 * - the quantities that set AutoPilot's end-to-end runtime - and the
 * wall-clock speedup evaluateBatch() buys on a cold memo cache.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "airlearning/rollout.h"
#include "airlearning/trainer.h"
#include "dse/eval_backend.h"
#include "dse/evaluator.h"
#include "dse/gaussian_process.h"
#include "dse/hypervolume.h"
#include "io/journal.h"
#include "nn/e2e_template.h"
#include "power/npu_power.h"
#include "systolic/compiled_plan.h"
#include "systolic/cycle_engine.h"
#include "systolic/engine.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

using namespace autopilot;

namespace
{

systolic::AcceleratorConfig
midConfig()
{
    systolic::AcceleratorConfig config;
    config.peRows = 32;
    config.peCols = 32;
    config.ifmapSramKb = 256;
    config.filterSramKb = 256;
    config.ofmapSramKb = 256;
    return config;
}

void
BM_AnalyticalEngineFullModel(benchmark::State &state)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    const systolic::AnalyticalEngine engine(midConfig());
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(model).totalCycles);
    }
}
BENCHMARK(BM_AnalyticalEngineFullModel);

/**
 * The SoA batch kernel alone (no power stack, no backend plumbing):
 * 128 hardware-space configurations costed against one compiled plan
 * from a warm arena. Compare items/s against
 * BM_AnalyticalEngineFullModel for the kernel-level speedup.
 */
void
BM_CompiledPlanBatch128(benchmark::State &state)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    const systolic::CompiledModelPlan plan =
        systolic::CompiledModelPlan::compile(model);
    const systolic::HardwareSpace space;
    util::Rng rng(0x91A4ull);
    std::vector<systolic::AcceleratorConfig> configs;
    for (int i = 0; i < 128; ++i) {
        systolic::AcceleratorConfig cfg;
        cfg.peRows =
            space.peRowChoices[rng.index(space.peRowChoices.size())];
        cfg.peCols =
            space.peColChoices[rng.index(space.peColChoices.size())];
        cfg.ifmapSramKb =
            space.sramKbChoices[rng.index(space.sramKbChoices.size())];
        cfg.filterSramKb =
            space.sramKbChoices[rng.index(space.sramKbChoices.size())];
        cfg.ofmapSramKb =
            space.sramKbChoices[rng.index(space.sramKbChoices.size())];
        configs.push_back(cfg);
    }
    util::Arena arena;
    for (auto _ : state) {
        arena.reset();
        const systolic::BatchRunView view =
            systolic::evaluatePlanBatch(plan, configs, arena);
        benchmark::DoNotOptimize(view.totalCycles.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_CompiledPlanBatch128);

void
BM_CycleEngineFullModel(benchmark::State &state)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    const systolic::CycleEngine engine(midConfig());
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(model).totalCycles);
    }
}
BENCHMARK(BM_CycleEngineFullModel);

void
BM_NpuPowerEstimate(benchmark::State &state)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    const systolic::AnalyticalEngine engine(midConfig());
    const systolic::RunResult run = engine.run(model);
    const power::NpuPowerModel npu(midConfig());
    for (auto _ : state) {
        benchmark::DoNotOptimize(npu.averagePowerW(run));
    }
}
BENCHMARK(BM_NpuPowerEstimate);

void
BM_GpFitPredict(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(5);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x(7);
        for (double &v : x)
            v = rng.uniform();
        inputs.push_back(x);
        targets.push_back(rng.normal());
    }
    const std::vector<double> query(7, 0.5);
    for (auto _ : state) {
        dse::GaussianProcess gp;
        gp.fit(inputs, targets);
        benchmark::DoNotOptimize(gp.predict(query).mean);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GpFitPredict)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void
BM_Hypervolume3D(benchmark::State &state)
{
    util::Rng rng(9);
    std::vector<dse::Objectives> points;
    for (int i = 0; i < state.range(0); ++i)
        points.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const dse::Objectives reference = {1.0, 1.0, 1.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(dse::hypervolume(points, reference));
    }
}
BENCHMARK(BM_Hypervolume3D)->Arg(16)->Arg(64)->Arg(256);

void
BM_RolloutEpisode(benchmark::State &state)
{
    const auto env_config = airlearning::EnvironmentConfig::forDensity(
        airlearning::ObstacleDensity::Dense);
    const airlearning::EnvironmentGenerator generator(env_config);
    const auto capability =
        airlearning::PolicyCapability::fromQuality(0.7);
    util::Rng rng(11);
    const airlearning::Environment env = generator.generate(rng);
    for (auto _ : state) {
        util::Rng episode_rng(state.iterations());
        benchmark::DoNotOptimize(
            airlearning::runEpisode(env, capability,
                                    airlearning::RolloutConfig(),
                                    episode_rng)
                .steps);
    }
}
BENCHMARK(BM_RolloutEpisode);

void
BM_PolicyValidation(benchmark::State &state)
{
    const auto env_config = airlearning::EnvironmentConfig::forDensity(
        airlearning::ObstacleDensity::Medium);
    const auto capability =
        airlearning::PolicyCapability::fromQuality(0.7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            airlearning::evaluatePolicy(env_config, capability, 50, 7)
                .successes);
    }
}
BENCHMARK(BM_PolicyValidation);

const autopilot::airlearning::PolicyDatabase &
benchDatabase()
{
    static const autopilot::airlearning::PolicyDatabase db = [] {
        autopilot::airlearning::TrainerConfig config;
        config.validationEpisodes = 30;
        const autopilot::airlearning::Trainer trainer(config);
        autopilot::airlearning::PolicyDatabase built;
        trainer.trainAll(nn::PolicySpace(),
                         autopilot::airlearning::ObstacleDensity::Dense,
                         built);
        return built;
    }();
    return db;
}

/**
 * Cold-cache batch evaluation of 128 distinct design points at N worker
 * threads: the serial-vs-parallel throughput comparison for one
 * optimizer generation. Arg(1) runs without a pool (the strictly serial
 * path); wall-clock time is what matters, hence UseRealTime.
 */
void
BM_BatchEvaluate128(benchmark::State &state)
{
    const std::size_t threads =
        static_cast<std::size_t>(state.range(0));
    const auto &db = benchDatabase();

    const dse::DesignSpace space;
    util::Rng rng(0xBA7C);
    std::set<dse::Encoding> seen;
    std::vector<dse::Encoding> points;
    while (points.size() < 128) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            points.push_back(encoding);
    }

    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1)
        pool = std::make_unique<util::ThreadPool>(threads);

    // Collect the evaluator/pool telemetry for this thread count so the
    // benchmark report shows where the wall-clock goes (queue wait vs
    // task run) next to the throughput numbers.
    util::Telemetry &telemetry = util::Telemetry::instance();
    telemetry.reset();
    telemetry.setEnabled(true);

    for (auto _ : state) {
        state.PauseTiming(); // Fresh evaluator => cold memo cache.
        auto evaluator = std::make_unique<dse::DseEvaluator>(
            db, autopilot::airlearning::ObstacleDensity::Dense);
        evaluator->setThreadPool(pool.get());
        state.ResumeTiming();

        const auto results = evaluator->evaluateBatch(points);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            128);

    if (pool)
        pool->shutdown(); // Quiesce task epilogues before reading.
    telemetry.setEnabled(false);
    const util::MetricsRegistry &metrics = telemetry.metrics();
    const util::MetricSample hits = metrics.find("dse.cache.hit");
    const util::MetricSample misses = metrics.find("dse.cache.miss");
    const util::MetricSample tasks = metrics.find("pool.tasks");
    const util::MetricSample run_s = metrics.find("pool.task_run_s");
    const util::MetricSample wait_s = metrics.find("pool.queue_wait_s");
    const util::MetricSample sim_s = metrics.find("dse.simulate_s");
    state.counters["cache_hits"] =
        benchmark::Counter(static_cast<double>(hits.count));
    state.counters["cache_misses"] =
        benchmark::Counter(static_cast<double>(misses.count));
    state.counters["pool_tasks"] =
        benchmark::Counter(static_cast<double>(tasks.count));
    auto mean_ms = [](const util::MetricSample &sample) {
        return sample.count == 0
                   ? 0.0
                   : sample.sum / static_cast<double>(sample.count) *
                         1e3;
    };
    state.counters["task_run_ms_mean"] =
        benchmark::Counter(mean_ms(run_s));
    state.counters["queue_wait_ms_mean"] =
        benchmark::Counter(mean_ms(wait_s));
    state.counters["simulate_ms_mean"] =
        benchmark::Counter(mean_ms(sim_s));
    telemetry.reset();
}
BENCHMARK(BM_BatchEvaluate128)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Cold-cache batch evaluation of 160 distinct points through each
 * cost-model backend at 4 worker threads (the bench_engine_validation
 * pool): the per-generation price of fidelity. The cycle_sims counter
 * shows how many cycle-accurate engine runs each backend paid for the
 * batch - the quantity the tiered backend exists to conserve (0 for
 * analytical, 160 for cycle, only the Pareto-competitive subset for
 * tiered).
 */
void
BM_BackendBatchEvaluate160(benchmark::State &state,
                           const char *backend_name)
{
    const auto &db = benchDatabase();

    const dse::DesignSpace space;
    util::Rng rng(0xBEC0);
    std::set<dse::Encoding> seen;
    std::vector<dse::Encoding> points;
    while (points.size() < 160) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            points.push_back(encoding);
    }

    util::ThreadPool pool(4);
    util::Telemetry &telemetry = util::Telemetry::instance();
    telemetry.reset();
    telemetry.setEnabled(true);

    std::size_t promoted_total = 0;
    for (auto _ : state) {
        state.PauseTiming(); // Fresh evaluator => cold memo cache.
        auto evaluator = std::make_unique<dse::DseEvaluator>(
            db, autopilot::airlearning::ObstacleDensity::Dense,
            backend_name);
        evaluator->setThreadPool(&pool);
        state.ResumeTiming();

        const auto results = evaluator->evaluateBatch(points);
        benchmark::DoNotOptimize(results.data());

        state.PauseTiming();
        if (const auto *tiered = dynamic_cast<const dse::TieredBackend *>(
                &evaluator->backend()))
            promoted_total += tiered->promotedCount();
        state.ResumeTiming();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 160);

    pool.shutdown(); // Quiesce task epilogues before reading.
    telemetry.setEnabled(false);
    const std::string name(backend_name);
    double cycle_sims = 0.0;
    if (name == "cycle")
        cycle_sims = 160.0;
    else if (name == "tiered")
        cycle_sims = static_cast<double>(promoted_total) /
                     static_cast<double>(state.iterations());
    state.counters["cycle_sims"] = benchmark::Counter(cycle_sims);
    telemetry.reset();
}
BENCHMARK_CAPTURE(BM_BackendBatchEvaluate160, analytical, "analytical")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BackendBatchEvaluate160, cycle, "cycle")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BackendBatchEvaluate160, tiered, "tiered")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Chunked-claiming sweep: a cheap per-iteration body over 64k indices
 * at 8 workers, with the claim grain at 1 / 16 / 256. At grain 1 every
 * index is its own fetch_add and the latch takes 64k one-count
 * count-downs; larger grains amortize both. queue_wait_ms_mean tracks
 * how long helper tasks sat in the pool queue before draining.
 */
void
BM_ParallelForGrain(benchmark::State &state)
{
    const std::size_t grain = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t n = 1 << 16;
    util::ThreadPool pool(8);
    std::vector<double> data(n, 1.0);

    util::Telemetry &telemetry = util::Telemetry::instance();
    telemetry.reset();
    telemetry.setEnabled(true);

    for (auto _ : state) {
        pool.parallelFor(
            n,
            [&](std::size_t i) {
                benchmark::DoNotOptimize(data[i] += 1.0);
            },
            grain);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));

    pool.shutdown(); // Quiesce late helper tasks before reading.
    telemetry.setEnabled(false);
    const util::MetricsRegistry &metrics = telemetry.metrics();
    const util::MetricSample wait_s = metrics.find("pool.queue_wait_s");
    const util::MetricSample tasks = metrics.find("pool.tasks");
    state.counters["pool_tasks"] =
        benchmark::Counter(static_cast<double>(tasks.count));
    state.counters["queue_wait_ms_mean"] = benchmark::Counter(
        wait_s.count == 0
            ? 0.0
            : wait_s.sum / static_cast<double>(wait_s.count) * 1e3);
    telemetry.reset();
}
BENCHMARK(BM_ParallelForGrain)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Per-batch journal flush overhead: the BM_BatchEvaluate128 workload
 * (cold cache, serial) with Arg(1) attaching an EvalJournalWriter sink
 * that appends+flushes the batch, Arg(0) running journal-free. The
 * delta between the two is what checkpoint durability costs one
 * optimizer generation - the ISSUE budget is < 5 % of the no-journal
 * batch time.
 */
void
BM_JournalAppend(benchmark::State &state)
{
    const bool journaled = state.range(0) != 0;
    const auto &db = benchDatabase();

    const dse::DesignSpace space;
    util::Rng rng(0xBA7C);
    std::set<dse::Encoding> seen;
    std::vector<dse::Encoding> points;
    while (points.size() < 128) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            points.push_back(encoding);
    }

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "autopilot_bench_journal.csv")
            .string();

    for (auto _ : state) {
        state.PauseTiming(); // Fresh evaluator => cold memo cache.
        auto evaluator = std::make_unique<dse::DseEvaluator>(
            db, autopilot::airlearning::ObstacleDensity::Dense);
        std::unique_ptr<io::EvalJournalWriter> writer;
        if (journaled) {
            writer = std::make_unique<io::EvalJournalWriter>(path, 0x1);
            evaluator->setJournalSink(
                [&writer](std::span<const dse::Evaluation> batch) {
                    writer->append(batch);
                });
        }
        state.ResumeTiming();

        const auto results = evaluator->evaluateBatch(points);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            128);
    std::filesystem::remove(path);
}
BENCHMARK(BM_JournalAppend)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Resume warm-start cost: replaying a 128-row journal prefix into a
 * fresh evaluator (preload: cache inserts + backend warm-start) versus
 * re-simulating the same 128 points from scratch (the work a resume
 * avoids). The ratio is the payoff of checkpoint/resume for one
 * generation-sized prefix; tiered replays re-screen analytically, so
 * they cost more than analytical replays but still skip every cycle-
 * accurate run.
 */
void
BM_ResumeWarmStart(benchmark::State &state, const char *backend_name)
{
    const auto &db = benchDatabase();

    const dse::DesignSpace space;
    util::Rng rng(0xBA7C);
    std::set<dse::Encoding> seen;
    std::vector<dse::Encoding> points;
    while (points.size() < 128) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            points.push_back(encoding);
    }

    // The "journal": one uninterrupted run's evaluations.
    dse::DseEvaluator source(
        db, autopilot::airlearning::ObstacleDensity::Dense,
        backend_name);
    source.evaluateBatch(points);
    const std::vector<dse::Evaluation> journal =
        source.allEvaluations();

    for (auto _ : state) {
        state.PauseTiming();
        auto resumed = std::make_unique<dse::DseEvaluator>(
            db, autopilot::airlearning::ObstacleDensity::Dense,
            backend_name);
        state.ResumeTiming();

        resumed->preload(journal);
        benchmark::DoNotOptimize(resumed->evaluationCount());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            128);
}
BENCHMARK_CAPTURE(BM_ResumeWarmStart, analytical, "analytical")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ResumeWarmStart, tiered, "tiered")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
