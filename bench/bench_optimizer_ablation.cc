/**
 * @file
 * Optimizer ablation for Phase 2 (Sections III-B and VII): the paper uses
 * SMS-EGO Bayesian optimization but notes it can be replaced with genetic
 * algorithms, simulated annealing, or (implicitly, as the naive baseline)
 * random search. This bench compares hypervolume convergence of all four
 * on the nano-dense joint design space at equal evaluation budgets.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "airlearning/trainer.h"
#include "dse/annealing.h"
#include "dse/bayesopt.h"
#include "dse/evaluator.h"
#include "dse/genetic.h"
#include "dse/random_search.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Phase 2 optimizer ablation (dense scenario) "
                 "===\n\n";

    airlearning::TrainerConfig trainer_config;
    trainer_config.validationEpisodes = 200;
    const airlearning::Trainer trainer(trainer_config);
    airlearning::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(),
                     airlearning::ObstacleDensity::Dense, db);

    std::vector<std::unique_ptr<dse::Optimizer>> optimizers;
    optimizers.push_back(std::make_unique<dse::BayesOpt>());
    optimizers.push_back(std::make_unique<dse::GeneticAlgorithm>());
    optimizers.push_back(std::make_unique<dse::SimulatedAnnealing>());
    optimizers.push_back(std::make_unique<dse::RandomSearch>());

    dse::OptimizerConfig config;
    config.evaluationBudget = 120;

    const std::vector<std::size_t> checkpoints = {20, 40, 60, 80, 100,
                                                  120};
    std::vector<std::string> header = {"optimizer"};
    for (std::size_t c : checkpoints)
        header.push_back("HV@" + std::to_string(c));
    header.push_back("front size");
    util::Table table(header);

    for (const auto &optimizer : optimizers) {
        // Average over three seeds to damp search noise.
        std::vector<double> hv_sum(checkpoints.size(), 0.0);
        double front_sum = 0.0;
        const int seeds = 3;
        for (int seed = 0; seed < seeds; ++seed) {
            dse::DseEvaluator evaluator(
                db, airlearning::ObstacleDensity::Dense);
            config.seed = 1000 + seed;
            const dse::OptimizerResult result =
                optimizer->optimize(evaluator, config);
            for (std::size_t c = 0; c < checkpoints.size(); ++c) {
                const std::size_t index =
                    std::min(checkpoints[c],
                             result.hypervolumeHistory.size()) -
                    1;
                hv_sum[c] += result.hypervolumeHistory[index];
            }
            front_sum += static_cast<double>(result.front().size());
        }

        std::vector<std::string> row = {optimizer->name()};
        for (double hv : hv_sum)
            row.push_back(util::formatDouble(hv / seeds, 1));
        row.push_back(util::formatDouble(front_sum / seeds, 1));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nHypervolume against reference {1 - success, 50 W, "
                 "500 ms}; higher is better. The model-guided searches "
                 "should reach high hypervolume with fewer evaluations "
                 "than random sampling.\n";
    return 0;
}
