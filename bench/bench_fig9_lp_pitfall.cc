/**
 * @file
 * Reproduces Fig. 9: the low-power (LP) pitfall. LP draws less SoC power
 * than AP but its low decision rate (paper: 18.4 Hz, ~2.5x below the
 * knee) forces a slow safe velocity, and AP wins missions (paper: 1.8x).
 */

#include <iostream>

#include "bench_pitfall_common.h"

int
main()
{
    std::cout << "=== Fig. 9: low-power (LP) pitfall, nano-UAV ===\n\n";
    autopilot::bench::runPitfallBench(
        autopilot::core::DesignStrategy::LowPower, 1.8);
    return 0;
}
