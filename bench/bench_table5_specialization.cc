/**
 * @file
 * Reproduces Table V: specialization cost vs. mission efficiency.
 *
 * Target: mini-UAV (AscTec Pelican) in the medium-obstacle scenario.
 * Compared against the deployment-matched AutoPilot design: the AutoPilot
 * designs for the low- and dense-obstacle scenarios (single-DSSoC reuse),
 * and general-purpose hardware (Jetson TX2, Intel NCS). The paper reports
 * 27-67% mission degradation for mismatched or general-purpose compute.
 */

#include <iostream>

#include "bench_common.h"
#include "core/baseline_eval.h"
#include "core/baselines.h"
#include "core/fine_tuning.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Table V: single designs / general-purpose compute "
                 "on the mini-UAV, medium obstacles ===\n\n";

    const uav::UavSpec mini = uav::ascTecPelican();

    // Deployment-matched design.
    core::AutoPilot medium_pilot(
        bench::benchTask(airlearning::ObstacleDensity::Medium));
    const core::AutoPilotRun matched = medium_pilot.designFor(mini);
    const double reference = matched.selected.mission.numMissions;

    util::Table table({"compute", "origin", "missions", "degradation",
                       "comment"});
    table.addRow({"AutoPilot (matched)",
                  bench::designLabel(matched.selected),
                  util::formatDouble(reference, 1), "0%",
                  "optimal design"});

    // Reused AutoPilot designs from the other two scenarios: same
    // hardware, evaluated on the medium-obstacle mission (the medium
    // policy runs on the mismatched accelerator).
    for (airlearning::ObstacleDensity origin :
         {airlearning::ObstacleDensity::Low,
          airlearning::ObstacleDensity::Dense}) {
        core::AutoPilot origin_pilot(bench::benchTask(origin));
        const core::AutoPilotRun origin_run =
            origin_pilot.designFor(mini);

        // Keep the origin scenario's accelerator, swap in the medium
        // scenario's best policy, and re-evaluate the full system.
        dse::DesignPoint reused = origin_run.selected.eval.point;
        reused.policy = matched.selected.eval.point.policy;
        const dse::Evaluation reeval =
            core::ArchitecturalTuner::reevaluate(
                reused, matched.selected.eval.successRate);
        const core::FullSystemDesign design =
            core::AutoPilot::mapToFullSystem(reeval, mini);

        const double degradation =
            100.0 * (1.0 - design.mission.numMissions / reference);
        const char *comment =
            design.mission.provisioning ==
                    uav::Provisioning::UnderProvisioned
                ? "compute bound lowers v_safe"
                : "weight lowers the roofline";
        table.addRow({"Knee-point (" +
                          airlearning::densityName(origin) + " obs.)",
                      reused.accel.name(),
                      util::formatDouble(design.mission.numMissions, 1),
                      util::formatDouble(degradation, 0) + "%", comment});
    }

    // General-purpose platforms.
    const nn::Model medium_model =
        nn::buildE2EModel(matched.selected.eval.point.policy);
    for (const core::BaselinePlatform &platform :
         {core::jetsonTx2(), core::intelNcs()}) {
        const auto baseline =
            core::evaluateBaselineOnUav(platform, medium_model, mini);
        const double degradation =
            100.0 *
            (1.0 - baseline.mission.numMissions / reference);
        const char *comment =
            baseline.mission.provisioning ==
                    uav::Provisioning::UnderProvisioned
                ? "compute bound lowers v_safe"
                : "weight lowers the roofline";
        table.addRow({platform.name, "general purpose",
                      util::formatDouble(baseline.mission.numMissions, 1),
                      util::formatDouble(degradation, 0) + "%", comment});
    }

    table.print(std::cout);
    std::cout << "\nPaper: knee-point (low) 30%, knee-point (med) 0%, "
                 "knee-point (dense) 27%, TX2 30%, NCS 67% "
                 "degradation.\n";
    return 0;
}
