/**
 * @file
 * Reproduces Fig. 5 (a, b, c): number of missions per battery charge for
 * AutoPilot-generated DSSoCs vs. Jetson TX2, Xavier NX and PULP-DroNet,
 * across three UAV classes and three deployment scenarios.
 *
 * Paper headline: AutoPilot increases missions on average by up to 2.25x
 * (nano), 1.62x (micro) and 1.43x (mini) over the baselines.
 */

#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/baseline_eval.h"
#include "core/baselines.h"
#include "util/stats.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Fig. 5: missions per charge, AutoPilot vs "
                 "baselines ===\n\n";

    std::map<uav::UavClass, std::vector<double>> gains;

    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        // Phases 1-2 are scenario-specific and shared across vehicles.
        core::AutoPilot pilot(bench::benchTask(density));

        std::cout << "--- " << airlearning::densityName(density)
                  << " obstacle scenario ---\n";
        util::Table table({"UAV", "design", "missions", "vs AutoPilot"});

        for (const uav::UavSpec &vehicle : uav::allUavs()) {
            const core::AutoPilotRun run = pilot.designFor(vehicle);
            const double ap_missions = run.selected.mission.numMissions;
            table.addRow({vehicle.name,
                          "AutoPilot (" +
                              bench::designLabel(run.selected) + ")",
                          util::formatDouble(ap_missions, 1), "1.00x"});

            const nn::Model model =
                nn::buildE2EModel(run.selected.eval.point.policy);
            for (const core::BaselinePlatform &platform :
                 core::figure5Baselines()) {
                const auto baseline = core::evaluateBaselineOnUav(
                    platform, model, vehicle);
                const double missions = baseline.mission.numMissions;
                const double gain =
                    missions > 0.0 ? ap_missions / missions : 99.0;
                gains[vehicle.uavClass].push_back(gain);
                table.addRow(
                    {vehicle.name, platform.name,
                     util::formatDouble(missions, 1),
                     missions > 0.0 ? util::formatRatio(gain)
                                    : "infeasible"});
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "--- Average AutoPilot gain per UAV class ---\n";
    util::Table summary(
        {"UAV class", "mean gain", "max gain", "paper (up to)"});
    const std::map<uav::UavClass, std::string> paper = {
        {uav::UavClass::Nano, "2.25x"},
        {uav::UavClass::Micro, "1.62x"},
        {uav::UavClass::Mini, "1.43x"},
    };
    for (const auto &[uav_class, values] : gains) {
        summary.addRow({uav::uavClassName(uav_class),
                        util::formatRatio(util::mean(values)),
                        util::formatRatio(util::maxValue(values)),
                        paper.at(uav_class)});
    }
    summary.print(std::cout);
    return 0;
}
