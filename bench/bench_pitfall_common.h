/**
 * @file
 * Shared driver for the Section V-B pitfall benches (Figs. 8, 9, 10):
 * compare one traditional design strategy against the AutoPilot pick on
 * the nano-UAV and print the mission comparison plus both designs mapped
 * onto the F-1 model.
 */

#ifndef AUTOPILOT_BENCH_BENCH_PITFALL_COMMON_H
#define AUTOPILOT_BENCH_BENCH_PITFALL_COMMON_H

#include <iostream>

#include "bench_common.h"
#include "uav/f1_model.h"

namespace autopilot::bench
{

/**
 * Run the nano-UAV dense-scenario pipeline and print the comparison of
 * @p strategy vs. the AutoPilot selection.
 *
 * @param strategy     The traditional strategy under study.
 * @param paper_ratio  The AP-over-strategy mission ratio the paper
 *                     reports (2.25x HT, 1.8x LP, 1.3x HE).
 */
inline void
runPitfallBench(core::DesignStrategy strategy, double paper_ratio)
{
    core::AutoPilot pilot(
        benchTask(airlearning::ObstacleDensity::Dense));
    const uav::UavSpec nano = uav::zhangNano();
    const core::AutoPilotRun run = pilot.designFor(nano);

    const core::FullSystemDesign other =
        core::AutoPilot::selectByStrategy(run.candidates, strategy);
    const core::FullSystemDesign &ap = run.selected;

    std::cout << "(a) Missions per charge:\n";
    util::Table missions({"design", "point", "FPS", "SoC W", "payload g",
                          "v_safe m/s", "missions"});
    for (const auto *design : {&other, &ap}) {
        const bool is_ap = design == &ap;
        missions.addRow(
            {is_ap ? "AP" : core::strategyName(strategy),
             designLabel(*design),
             util::formatDouble(design->eval.fps, 1),
             util::formatDouble(design->eval.socPowerW, 2),
             util::formatDouble(design->payloadGrams, 1),
             util::formatDouble(design->mission.safeVelocityMps, 1),
             util::formatDouble(design->mission.numMissions, 1)});
    }
    missions.print(std::cout);

    const double measured =
        other.mission.numMissions > 0.0
            ? ap.mission.numMissions / other.mission.numMissions
            : 99.0;
    std::cout << "\nAP / " << core::strategyName(strategy)
              << " mission ratio: " << util::formatRatio(measured)
              << "  (paper: " << util::formatRatio(paper_ratio) << ")\n";

    std::cout << "\n(b) F-1 view on the nano-UAV:\n";
    util::Table f1_table({"design", "action Hz", "knee Hz",
                          "v ceiling m/s", "v_safe m/s",
                          "provisioning"});
    for (const auto *design : {&other, &ap}) {
        const bool is_ap = design == &ap;
        const uav::F1Model f1(nano, design->payloadGrams);
        f1_table.addRow(
            {is_ap ? "AP" : core::strategyName(strategy),
             util::formatDouble(design->mission.actionThroughputHz, 1),
             util::formatDouble(design->mission.kneeThroughputHz, 1),
             util::formatDouble(f1.velocityCeilingMps(), 1),
             util::formatDouble(design->mission.safeVelocityMps, 1),
             uav::provisioningName(design->mission.provisioning)});
    }
    f1_table.print(std::cout);
}

} // namespace autopilot::bench

#endif // AUTOPILOT_BENCH_BENCH_PITFALL_COMMON_H
