/**
 * @file
 * Mission-model validation: the closed-form Eq. 1-4 mission count vs the
 * Monte-Carlo mission simulator, with and without real-world variation
 * (route jitter, headwinds, landing reserve). Quantifies how much the
 * paper's idealized metric overstates achievable sorties.
 */

#include <cmath>
#include <iostream>

#include "power/mass_model.h"
#include "uav/mission.h"
#include "uav/mission_sim.h"
#include "uav/uav_spec.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Eq. 1-4 vs Monte-Carlo mission simulation ===\n\n";

    const power::MassModel mass_model;
    const double npu_w = 0.7;
    const double payload = mass_model.computePayloadGrams(npu_w);
    const double soc_w = npu_w + 0.123;

    util::Table table({"UAV", "analytic N", "MC ideal", "MC realistic",
                       "MC range", "idealization gap"});
    for (const uav::UavSpec &vehicle : uav::allUavs()) {
        const uav::MissionModel analytic(vehicle);
        const auto closed_form =
            analytic.evaluate(payload, soc_w, 80.0, 60.0);

        // Ideal conditions: no variation, no reserve.
        uav::MissionVariation ideal;
        ideal.reserveFraction = 0.0;
        const auto mc_ideal =
            uav::MissionSimulator(vehicle, ideal)
                .simulateMany(payload, soc_w, 80.0, 60.0, 40, 11);

        // Realistic conditions.
        uav::MissionVariation realistic;
        realistic.distanceSigma = 0.15;
        realistic.headwindSigma = 1.5;
        realistic.reserveFraction = 0.08;
        const auto mc_real =
            uav::MissionSimulator(vehicle, realistic)
                .simulateMany(payload, soc_w, 80.0, 60.0, 40, 11);

        const double gap =
            closed_form.numMissions > 0.0
                ? 100.0 * (1.0 - mc_real.meanMissions /
                                     closed_form.numMissions)
                : 0.0;
        table.addRow(
            {vehicle.name,
             util::formatDouble(closed_form.numMissions, 1),
             util::formatDouble(mc_ideal.meanMissions, 1),
             util::formatDouble(mc_real.meanMissions, 1),
             util::formatDouble(mc_real.minMissions, 0) + "-" +
                 util::formatDouble(mc_real.maxMissions, 0),
             util::formatDouble(gap, 0) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nThe Monte-Carlo ideal case floors the analytic value "
                 "(whole missions only); weather and reserve shave a "
                 "further slice. The *ordering* of designs - which is "
                 "what Phase 3 optimizes - is unchanged by the "
                 "idealization.\n";
    return 0;
}
