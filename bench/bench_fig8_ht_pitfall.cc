/**
 * @file
 * Reproduces Fig. 8: the high-throughput (HT) pitfall. HT out-runs AP on
 * raw FPS (paper: 4.47x) but its heatsink mass lowers the nano-UAV's F-1
 * ceiling, and AP wins the mission metric (paper: 2.25x).
 */

#include <iostream>

#include "bench_pitfall_common.h"

int
main()
{
    std::cout << "=== Fig. 8: high-throughput (HT) pitfall, nano-UAV "
                 "===\n\n";
    autopilot::bench::runPitfallBench(
        autopilot::core::DesignStrategy::HighThroughput, 2.25);
    return 0;
}
