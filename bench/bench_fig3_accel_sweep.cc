/**
 * @file
 * Reproduces Fig. 3b: varying the accelerator-template parameters
 * (PE array shape, scratchpad sizes) produces a wide runtime/power spread
 * with a Pareto frontier, spanning roughly the Table III NPU band
 * (22-200 FPS, 0.7-8.24 W).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "airlearning/policy.h"
#include "dse/pareto.h"
#include "nn/e2e_template.h"
#include "power/npu_power.h"
#include "systolic/engine.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Fig. 3b: accelerator parameter sweep ===\n\n";

    const nn::Model model = nn::buildE2EModel(
        airlearning::bestHyperParams(airlearning::ObstacleDensity::Dense));
    std::cout << "Workload: " << model.name() << " ("
              << util::formatDouble(model.totalMacs() * 1e-9, 2)
              << " GMAC)\n\n";

    struct Sample
    {
        systolic::AcceleratorConfig config;
        double fps = 0.0;
        double watts = 0.0;
    };
    std::vector<Sample> samples;
    const systolic::HardwareSpace space;
    // Square-ish arrays with matched scratchpads: the slice of the space
    // the figure plots.
    for (int rows : space.peRowChoices) {
        for (int cols : space.peColChoices) {
            if (cols > 4 * rows || rows > 4 * cols)
                continue; // Extreme aspect ratios clutter the figure.
            if (rows > 256 || cols > 256)
                continue; // 512+ arrays burn >10 W: off the plot.
            for (int sram : {64, 256, 1024, 4096}) {
                Sample sample;
                sample.config.peRows = rows;
                sample.config.peCols = cols;
                sample.config.ifmapSramKb = sram;
                sample.config.filterSramKb = sram;
                sample.config.ofmapSramKb = sram;
                const systolic::AnalyticalEngine engine(sample.config);
                const systolic::RunResult run = engine.run(model);
                sample.fps =
                    run.framesPerSecond(sample.config.clockGhz);
                sample.watts = power::NpuPowerModel(sample.config)
                                   .averagePowerW(run);
                samples.push_back(sample);
            }
        }
    }

    // Pareto frontier in (maximize fps, minimize watts) == minimize
    // (-fps, watts).
    std::vector<dse::Objectives> objectives;
    objectives.reserve(samples.size());
    for (const Sample &sample : samples)
        objectives.push_back({-sample.fps, sample.watts});
    const auto front = dse::paretoFrontIndices(objectives);

    util::Table table({"array", "SRAM (KB)", "FPS", "NPU W", "Pareto"});
    std::vector<std::size_t> order(samples.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return samples[a].watts < samples[b].watts;
              });
    for (std::size_t index : order) {
        const Sample &sample = samples[index];
        const bool on_front =
            std::find(front.begin(), front.end(), index) != front.end();
        table.addRow({std::to_string(sample.config.peRows) + "x" +
                          std::to_string(sample.config.peCols),
                      std::to_string(sample.config.ifmapSramKb),
                      util::formatDouble(sample.fps, 1),
                      util::formatDouble(sample.watts, 2),
                      on_front ? "*" : ""});
    }
    table.print(std::cout);

    double fps_lo = 1e9, fps_hi = 0.0, w_lo = 1e9, w_hi = 0.0;
    for (const Sample &sample : samples) {
        fps_lo = std::min(fps_lo, sample.fps);
        fps_hi = std::max(fps_hi, sample.fps);
        w_lo = std::min(w_lo, sample.watts);
        w_hi = std::max(w_hi, sample.watts);
    }
    std::cout << "\n" << samples.size() << " designs; "
              << front.size() << " Pareto-optimal.\n";
    std::cout << "FPS span " << util::formatDouble(fps_lo, 1) << " - "
              << util::formatDouble(fps_hi, 1)
              << " (paper NPU band 22-200 FPS); power span "
              << util::formatDouble(w_lo, 2) << " - "
              << util::formatDouble(w_hi, 2)
              << " W (paper 0.7-8.24 W)\n";
    return 0;
}
