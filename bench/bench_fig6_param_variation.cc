/**
 * @file
 * Reproduces Fig. 6: the DSSoC architectural parameters AutoPilot selects
 * vary across all nine (UAV x deployment scenario) combinations - the
 * quantitative case for per-domain custom silicon. Values are printed
 * raw and normalized to the minimum selected value per parameter, as in
 * the paper's radar plot.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Fig. 6: selected DSSoC parameters across nine "
                 "scenarios ===\n\n";

    struct Row
    {
        std::string scenario;
        core::FullSystemDesign design;
    };
    std::vector<Row> rows;

    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        core::AutoPilot pilot(bench::benchTask(density));
        for (const uav::UavSpec &vehicle : uav::allUavs()) {
            const core::AutoPilotRun run = pilot.designFor(vehicle);
            rows.push_back(
                {bench::scenarioLabel(vehicle, density), run.selected});
        }
    }

    util::Table raw({"scenario", "layers", "filters", "PE rows",
                     "PE cols", "ifmap KB", "filter KB", "ofmap KB",
                     "NPU W", "FPS"});
    for (const Row &row : rows) {
        const auto &p = row.design.eval.point;
        raw.addRow({row.scenario,
                    std::to_string(p.policy.numConvLayers),
                    std::to_string(p.policy.numFilters),
                    std::to_string(p.accel.peRows),
                    std::to_string(p.accel.peCols),
                    std::to_string(p.accel.ifmapSramKb),
                    std::to_string(p.accel.filterSramKb),
                    std::to_string(p.accel.ofmapSramKb),
                    util::formatDouble(row.design.eval.npuPowerW, 2),
                    util::formatDouble(row.design.eval.fps, 1)});
    }
    raw.print(std::cout);

    // Normalized view (per parameter, relative to the smallest selected
    // value), matching the figure's presentation.
    auto values_of = [&](auto getter) {
        std::vector<double> values;
        for (const Row &row : rows)
            values.push_back(getter(row.design));
        return values;
    };
    struct Axis
    {
        const char *name;
        std::vector<double> values;
    };
    std::vector<Axis> axes = {
        {"layers", values_of([](const core::FullSystemDesign &d) {
             return double(d.eval.point.policy.numConvLayers);
         })},
        {"filters", values_of([](const core::FullSystemDesign &d) {
             return double(d.eval.point.policy.numFilters);
         })},
        {"PEs", values_of([](const core::FullSystemDesign &d) {
             return double(d.eval.point.accel.peCount());
         })},
        {"SRAM", values_of([](const core::FullSystemDesign &d) {
             return double(d.eval.point.accel.totalSramKb());
         })},
        {"power", values_of([](const core::FullSystemDesign &d) {
             return d.eval.npuPowerW;
         })},
    };

    std::cout << "\nNormalized to the minimum selected value:\n";
    std::vector<std::string> header = {"scenario"};
    for (const Axis &axis : axes)
        header.push_back(axis.name);
    util::Table normalized(header);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::vector<std::string> cells = {rows[r].scenario};
        for (const Axis &axis : axes) {
            const double lo =
                *std::min_element(axis.values.begin(), axis.values.end());
            cells.push_back(util::formatRatio(axis.values[r] / lo));
        }
        normalized.addRow(cells);
    }
    normalized.print(std::cout);

    // How many distinct accelerator configurations did the nine
    // scenarios need?
    std::vector<std::string> distinct;
    for (const Row &row : rows) {
        const std::string name = row.design.eval.point.accel.name();
        if (std::find(distinct.begin(), distinct.end(), name) ==
            distinct.end())
            distinct.push_back(name);
    }
    std::cout << "\n" << distinct.size()
              << " distinct accelerator configurations across 9 "
                 "scenarios -> no one-size-fits-all DSSoC.\n";
    return 0;
}
