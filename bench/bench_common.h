/**
 * @file
 * Shared helpers for the figure/table reproduction benches: canonical
 * task budgets (larger than the unit-test budgets) and formatting.
 */

#ifndef AUTOPILOT_BENCH_BENCH_COMMON_H
#define AUTOPILOT_BENCH_BENCH_COMMON_H

#include <string>

#include "core/autopilot.h"
#include "uav/uav_spec.h"
#include "util/table.h"

namespace autopilot::bench
{

/** Canonical bench-quality task specification for a scenario. */
inline core::TaskSpec
benchTask(airlearning::ObstacleDensity density)
{
    core::TaskSpec task;
    task.density = density;
    task.validationEpisodes = 200;
    task.dseBudget = 120;
    task.seed = 0xA070D1;
    return task;
}

/** Format a FullSystemDesign as a short description string. */
inline std::string
designLabel(const core::FullSystemDesign &design)
{
    return nn::policyName(design.eval.point.policy) + " on " +
           design.eval.point.accel.name();
}

/** Scenario label like "nano/dense". */
inline std::string
scenarioLabel(const uav::UavSpec &spec,
              airlearning::ObstacleDensity density)
{
    return uav::uavClassName(spec.uavClass) + "/" +
           airlearning::densityName(density);
}

} // namespace autopilot::bench

#endif // AUTOPILOT_BENCH_BENCH_COMMON_H
