/**
 * @file
 * Reproduces Fig. 2b: E2E model parameters vs. task-level success rate.
 *
 * The paper reports success rates between 60% and 91% across the template
 * grid, with the task-dependent optima of Section V-A (5L/32F low,
 * 4L/48F medium, 7L/48F dense). This bench trains/validates the full grid
 * per scenario and prints (params, success) series.
 */

#include <iostream>

#include "airlearning/trainer.h"
#include "bench_common.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Fig. 2b: E2E model parameters vs. success rate "
                 "===\n\n";

    airlearning::TrainerConfig config;
    config.validationEpisodes = 300;
    const airlearning::Trainer trainer(config);
    const nn::PolicySpace space;

    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        airlearning::PolicyDatabase db;
        trainer.trainAll(space, density, db);

        std::cout << "--- " << airlearning::densityName(density)
                  << " obstacles ---\n";
        util::Table table({"policy", "params (M)", "MACs (G)",
                           "success %"});
        for (const nn::PolicyHyperParams &params : space.enumerate()) {
            const auto record = db.find(params, density);
            table.addRow(
                {nn::policyName(params),
                 util::formatDouble(record->modelParams * 1e-6, 1),
                 util::formatDouble(record->modelMacs * 1e-9, 2),
                 util::formatDouble(record->successRate * 100, 1)});
        }
        table.print(std::cout);

        const auto best = db.best(density);
        double lo = 1.0, hi = 0.0;
        for (const auto &record : db.forDensity(density)) {
            lo = std::min(lo, record.successRate);
            hi = std::max(hi, record.successRate);
        }
        std::cout << "best: " << best->policyId << " ("
                  << util::formatDouble(best->successRate * 100, 1)
                  << " %); grid band "
                  << util::formatDouble(lo * 100, 0) << "-"
                  << util::formatDouble(hi * 100, 0)
                  << " % (paper: 60-91 %)\n\n";
    }
    return 0;
}
