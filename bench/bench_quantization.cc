/**
 * @file
 * Quantization-width study: the DSSoC template assumes INT8 inference
 * (the paper cites QuaRL [44] for quantized RL policies; PULP-DroNet
 * runs INT8). This bench quantifies what 16-bit operands would cost:
 * doubled operand traffic and scratchpad pressure, and the mission-level
 * impact on the nano-UAV.
 */

#include <iostream>

#include "airlearning/policy.h"
#include "core/autopilot.h"
#include "core/fine_tuning.h"
#include "nn/e2e_template.h"
#include "power/mass_model.h"
#include "power/npu_power.h"
#include "power/soc_power.h"
#include "systolic/cycle_engine.h"
#include "uav/mission.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Operand-width ablation: INT8 vs INT16 ===\n\n";

    const nn::Model model = nn::buildE2EModel(
        airlearning::bestHyperParams(airlearning::ObstacleDensity::Dense));
    const uav::UavSpec nano = uav::zhangNano();
    const uav::MissionModel mission_model(nano);
    const power::MassModel mass_model;

    util::Table table({"array", "width", "FPS", "DRAM MB/frame",
                       "NPU W", "payload g", "missions"});
    for (int size : {16, 32, 64}) {
        for (int bytes : {1, 2}) {
            systolic::AcceleratorConfig config;
            config.peRows = size;
            config.peCols = size;
            config.ifmapSramKb = 256;
            config.filterSramKb = 256;
            config.ofmapSramKb = 256;
            config.bytesPerElement = bytes;

            const systolic::CycleEngine engine(config);
            const systolic::RunResult run = engine.run(model);
            const double fps = run.framesPerSecond(config.clockGhz);
            const double npu_w =
                power::NpuPowerModel(config).averagePowerW(run);
            const double payload =
                mass_model.computePayloadGrams(npu_w);
            const auto mission = mission_model.evaluate(
                payload, power::socPower(npu_w).totalW(), fps, 60.0);

            table.addRow(
                {std::to_string(size) + "x" + std::to_string(size),
                 bytes == 1 ? "INT8" : "INT16",
                 util::formatDouble(fps, 1),
                 util::formatDouble(
                     run.traffic.totalDramBytes() / 1048576.0, 1),
                 util::formatDouble(npu_w, 2),
                 util::formatDouble(payload, 1),
                 util::formatDouble(mission.numMissions, 1)});
        }
    }
    table.print(std::cout);

    std::cout << "\nINT16 doubles operand traffic (weights dominate the "
                 "E2E models), pushing small arrays further below the "
                 "knee and costing missions - the quantitative case for "
                 "the template's INT8 assumption.\n";
    return 0;
}
