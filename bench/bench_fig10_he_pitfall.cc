/**
 * @file
 * Reproduces Fig. 10: the high-efficiency (HE) pitfall. HE wins FPS/W
 * (paper: 64 vs 55 FPS/W) but is ~2x over-provisioned past the knee, so
 * its extra power and heatsink mass only cost missions (paper: AP 1.3x).
 */

#include <iostream>

#include "bench_pitfall_common.h"

int
main()
{
    std::cout << "=== Fig. 10: high-efficiency (HE) pitfall, nano-UAV "
                 "===\n\n";
    autopilot::bench::runPitfallBench(
        autopilot::core::DesignStrategy::HighEfficiency, 1.3);
    return 0;
}
