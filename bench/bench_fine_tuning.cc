/**
 * @file
 * Architectural fine-tuning study (Section III-C): when no Phase 2
 * candidate sits on the F-1 knee, AutoPilot shifts a design onto it with
 * frequency scaling, or ports it to another technology node. This bench
 * takes an over-provisioned design, scales its clock down to the
 * nano-UAV knee, and shows the mission gain; then ports the AP-class
 * design across nodes.
 */

#include <iostream>

#include "core/autopilot.h"
#include "core/fine_tuning.h"
#include "power/mass_model.h"
#include "uav/f1_model.h"
#include "uav/mission.h"
#include "util/table.h"

using namespace autopilot;

namespace
{

core::FullSystemDesign
lower(const dse::Evaluation &eval, const uav::UavSpec &vehicle)
{
    return core::AutoPilot::mapToFullSystem(eval, vehicle);
}

} // namespace

int
main()
{
    const uav::UavSpec nano = uav::zhangNano();

    std::cout << "=== Architectural fine-tuning onto the F-1 knee "
                 "(nano-UAV) ===\n\n";

    // An over-provisioned starting point: a large array at full clock
    // running the dense-scenario policy.
    dse::DesignPoint point;
    point.policy = {7, 48};
    point.accel.peRows = 64;
    point.accel.peCols = 64;
    point.accel.ifmapSramKb = 512;
    point.accel.filterSramKb = 512;
    point.accel.ofmapSramKb = 512;
    const dse::Evaluation base =
        core::ArchitecturalTuner::reevaluate(point, 0.85);

    // Find the knee for this design's mass and retune the clock to it.
    const core::FullSystemDesign base_design = lower(base, nano);
    const double knee = base_design.mission.kneeThroughputHz;
    const dse::Evaluation tuned =
        core::ArchitecturalTuner::scaleFrequency(base, knee);
    const core::FullSystemDesign tuned_design = lower(tuned, nano);

    util::Table freq({"design", "clock GHz", "FPS", "NPU W",
                      "payload g", "provisioning", "missions"});
    for (const auto *design : {&base_design, &tuned_design}) {
        freq.addRow(
            {design == &base_design ? "original (over-provisioned)"
                                    : "frequency-scaled to knee",
             util::formatDouble(design->eval.point.accel.clockGhz, 3),
             util::formatDouble(design->eval.fps, 1),
             util::formatDouble(design->eval.npuPowerW, 2),
             util::formatDouble(design->payloadGrams, 1),
             uav::provisioningName(design->mission.provisioning),
             util::formatDouble(design->mission.numMissions, 1)});
    }
    freq.print(std::cout);
    std::cout << "\nMission gain from frequency scaling: "
              << util::formatRatio(tuned_design.mission.numMissions /
                                   base_design.mission.numMissions)
              << "\n\n";

    // Technology-node port of an AP-class design.
    std::cout << "=== Technology-node scaling of an AP-class design "
                 "===\n\n";
    dse::DesignPoint ap_point;
    ap_point.policy = {7, 48};
    ap_point.accel.peRows = 32;
    ap_point.accel.peCols = 16;
    ap_point.accel.ifmapSramKb = 256;
    ap_point.accel.filterSramKb = 512;
    ap_point.accel.ofmapSramKb = 128;
    const dse::Evaluation ap28 =
        core::ArchitecturalTuner::reevaluate(ap_point, 0.85);

    util::Table nodes({"node", "clock GHz", "FPS", "NPU W", "payload g",
                       "missions"});
    for (int nm : {40, 28, 16, 7}) {
        const dse::Evaluation ported =
            nm == 28 ? ap28
                     : core::ArchitecturalTuner::scaleTechnology(ap28,
                                                                 nm);
        const core::FullSystemDesign design = lower(ported, nano);
        nodes.addRow(
            {std::to_string(nm) + " nm",
             util::formatDouble(ported.point.accel.clockGhz, 3),
             util::formatDouble(ported.fps, 1),
             util::formatDouble(ported.npuPowerW, 2),
             util::formatDouble(design.payloadGrams, 1),
             util::formatDouble(design.mission.numMissions, 1)});
    }
    nodes.print(std::cout);
    std::cout << "\nNewer nodes cut both the heatsink mass and the SoC "
                 "draw, compounding into mission gains - the paper's "
                 "second fine-tuning knob.\n";
    return 0;
}
