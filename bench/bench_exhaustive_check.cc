/**
 * @file
 * Ground-truth optimality check for the whole methodology: exhaustively
 * enumerate a tractable slice of the hardware space (best dense policy,
 * matched scratchpads: 8 x 8 x 8 = 512 designs), compute every design's
 * mission count through the full Phase 3 pipeline, and compare the true
 * optimum against what AutoPilot's sampled BO + F-1 selection finds.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "power/mass_model.h"
#include "power/npu_power.h"
#include "power/soc_power.h"
#include "systolic/engine.h"
#include "uav/mission.h"

using namespace autopilot;

int
main()
{
    std::cout << "=== Exhaustive slice vs AutoPilot selection "
                 "(nano-UAV, dense) ===\n\n";

    const uav::UavSpec nano = uav::zhangNano();
    const uav::MissionModel mission_model(nano);
    const power::MassModel mass_model;

    // AutoPilot run (sampled BO + F-1 back end).
    core::AutoPilot pilot(
        bench::benchTask(airlearning::ObstacleDensity::Dense));
    const core::AutoPilotRun run = pilot.designFor(nano);
    const auto &ap = run.selected;

    // Exhaustive slice: the AP policy on every (rows x cols x sram)
    // with matched scratchpads.
    const nn::Model model = nn::buildE2EModel(ap.eval.point.policy);
    const systolic::HardwareSpace space;

    struct Entry
    {
        systolic::AcceleratorConfig config;
        double fps = 0.0;
        double npuW = 0.0;
        double missions = 0.0;
    };
    std::vector<Entry> entries;
    for (int rows : space.peRowChoices) {
        for (int cols : space.peColChoices) {
            for (int sram : space.sramKbChoices) {
                Entry entry;
                entry.config.peRows = rows;
                entry.config.peCols = cols;
                entry.config.ifmapSramKb = sram;
                entry.config.filterSramKb = sram;
                entry.config.ofmapSramKb = sram;

                const systolic::AnalyticalEngine engine(entry.config);
                const systolic::RunResult result = engine.run(model);
                entry.fps =
                    result.framesPerSecond(entry.config.clockGhz);
                entry.npuW = power::NpuPowerModel(entry.config)
                                 .averagePowerW(result);
                const double payload =
                    mass_model.computePayloadGrams(entry.npuW);
                const int sensor = mission_model.selectSensorFps(
                    uav::F1Model(nano, payload).kneeThroughputHz());
                entry.missions =
                    mission_model
                        .evaluate(payload,
                                  power::socPower(entry.npuW).totalW(),
                                  entry.fps, sensor)
                        .numMissions;
                entries.push_back(entry);
            }
        }
    }

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.missions > b.missions;
              });

    std::cout << "Exhaustive slice: " << entries.size()
              << " designs (policy "
              << nn::policyName(ap.eval.point.policy)
              << ", matched scratchpads). Top 5 by missions:\n";
    util::Table top({"accelerator", "FPS", "NPU W", "missions"});
    for (std::size_t i = 0; i < 5 && i < entries.size(); ++i) {
        top.addRow({entries[i].config.name(),
                    util::formatDouble(entries[i].fps, 1),
                    util::formatDouble(entries[i].npuW, 2),
                    util::formatDouble(entries[i].missions, 1)});
    }
    top.print(std::cout);

    const double true_best = entries.front().missions;
    const double achieved = ap.mission.numMissions;
    std::cout << "\nAutoPilot selection: "
              << bench::designLabel(ap) << " -> "
              << util::formatDouble(achieved, 1) << " missions\n";
    std::cout << "True slice optimum:  "
              << util::formatDouble(true_best, 1)
              << " missions; AutoPilot achieves "
              << util::formatDouble(100.0 * achieved / true_best, 1)
              << "% of it with "
              << run.dseResult.archive.size() << " evaluations vs "
              << entries.size() * 27
              << " for the full exhaustive grid.\n";
    return 0;
}
