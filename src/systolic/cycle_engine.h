/**
 * @file
 * Cycle-stepped accelerator engine.
 *
 * Walks the fold schedule fold by fold with an explicit double-buffered
 * prefetch timeline over a single DRAM channel:
 *
 *   fetch_start[f]   = max(fetch_done[f-1], compute_done[f-2])
 *   fetch_done[f]    = fetch_start[f] + fetch_bytes[f] / BW
 *   compute_start[f] = max(compute_done[f-1], fetch_done[f])
 *   compute_done[f]  = compute_start[f] + fold_cycles[f]
 *
 * Writebacks share the DRAM channel and are issued after the producing
 * fold completes; the layer retires when both the last fold's compute and
 * all writebacks have drained. The compute_done[f-2] term models the two
 * buffer halves: the prefetch target for fold f is the half still in use
 * until fold f-2's compute finishes... (with two halves, fold f's buffer
 * is freed when fold f-2 completes, allowing fetch f to begin).
 */

#ifndef AUTOPILOT_SYSTOLIC_CYCLE_ENGINE_H
#define AUTOPILOT_SYSTOLIC_CYCLE_ENGINE_H

#include "systolic/contention.h"
#include "systolic/engine.h"

namespace autopilot::systolic
{

/** Reference engine with an explicit prefetch/writeback timeline. */
class CycleEngine : public Engine
{
  public:
    /** @param config Accelerator configuration (validated). */
    explicit CycleEngine(const AcceleratorConfig &config);

    /**
     * @param config  Accelerator configuration (validated).
     * @param profile Background traffic sharing the DRAM channel
     *                (validated). Fetch/writeback cycles are scaled by
     *                the profile's effective-bandwidth derate; fatal at
     *                construction when the derated bandwidth is not
     *                positive (fully-contended channel with no QoS
     *                floor) - an infeasible profile must be diagnosed,
     *                not simulated into infinite fold times.
     */
    CycleEngine(const AcceleratorConfig &config,
                const ContentionProfile &profile);

    LayerResult runLayer(const nn::Layer &layer) const override;

    const AcceleratorConfig &config() const { return cfg; }
    const ContentionProfile &contention() const { return profile; }

  private:
    AcceleratorConfig cfg;
    ContentionProfile profile;
    /// Effective-bandwidth fraction left to the NPU; 1.0 when the
    /// profile is empty (exact integer fold-cycle path, bit-identical
    /// to the contention-free engine).
    double bandwidthDerate = 1.0;
};

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_CYCLE_ENGINE_H
