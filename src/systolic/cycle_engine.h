/**
 * @file
 * Cycle-stepped accelerator engine.
 *
 * Walks the fold schedule fold by fold with an explicit double-buffered
 * prefetch timeline over a single DRAM channel:
 *
 *   fetch_start[f]   = max(fetch_done[f-1], compute_done[f-2])
 *   fetch_done[f]    = fetch_start[f] + fetch_bytes[f] / BW
 *   compute_start[f] = max(compute_done[f-1], fetch_done[f])
 *   compute_done[f]  = compute_start[f] + fold_cycles[f]
 *
 * Writebacks share the DRAM channel and are issued after the producing
 * fold completes; the layer retires when both the last fold's compute and
 * all writebacks have drained. The compute_done[f-2] term models the two
 * buffer halves: the prefetch target for fold f is the half still in use
 * until fold f-2's compute finishes... (with two halves, fold f's buffer
 * is freed when fold f-2 completes, allowing fetch f to begin).
 */

#ifndef AUTOPILOT_SYSTOLIC_CYCLE_ENGINE_H
#define AUTOPILOT_SYSTOLIC_CYCLE_ENGINE_H

#include "systolic/engine.h"

namespace autopilot::systolic
{

/** Reference engine with an explicit prefetch/writeback timeline. */
class CycleEngine : public Engine
{
  public:
    /** @param config Accelerator configuration (validated). */
    explicit CycleEngine(const AcceleratorConfig &config);

    LayerResult runLayer(const nn::Layer &layer) const override;

    const AcceleratorConfig &config() const { return cfg; }

  private:
    AcceleratorConfig cfg;
};

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_CYCLE_ENGINE_H
