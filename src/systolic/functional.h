/**
 * @file
 * Functional, register-level systolic-array simulator.
 *
 * The performance engines (engine.h, cycle_engine.h) use closed-form fold
 * timing. This module is their ground truth: a register-transfer-level
 * simulation of the weight-stationary array that actually moves INT8
 * operands through the PE grid cycle by cycle - activations enter the
 * left edge with the classic diagonal skew, partial sums flow down the
 * columns into INT32 accumulators - and produces both the numerical GEMM
 * result and the exact cycle count.
 *
 * Property tests assert that (a) the array computes bit-exactly the same
 * product as a reference GEMM for arbitrary shapes and tilings, and
 * (b) the measured cycles match the analytic foldCycles() formula.
 * This is the evidence behind calling the fold timing "cycle-accurate".
 */

#ifndef AUTOPILOT_SYSTOLIC_FUNCTIONAL_H
#define AUTOPILOT_SYSTOLIC_FUNCTIONAL_H

#include <cstdint>
#include <vector>

namespace autopilot::systolic
{

/** Row-major integer matrix for the functional simulation. */
struct IntMatrix
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::vector<std::int32_t> data;

    IntMatrix() = default;
    IntMatrix(std::int64_t r, std::int64_t c);

    std::int32_t &at(std::int64_t r, std::int64_t c);
    std::int32_t at(std::int64_t r, std::int64_t c) const;
};

/** Reference GEMM: C = A (MxK) * B (KxN) with INT32 accumulation. */
IntMatrix referenceGemm(const IntMatrix &a, const IntMatrix &b);

/** Result of a functional array execution. */
struct FunctionalResult
{
    IntMatrix output;          ///< The computed product.
    std::int64_t totalCycles = 0; ///< Preload + stream + drain cycles.
    std::int64_t foldCount = 0;   ///< Folds executed.
};

/**
 * Execute C = A * B on a rows x cols weight-stationary systolic array,
 * register-level: weights are preloaded per fold, activations stream
 * with diagonal skew, psums flow down and cross-fold partial results
 * accumulate in INT32.
 *
 * @param a        Activation matrix (M x K).
 * @param b        Weight matrix (K x N).
 * @param pe_rows  Array height (maps the K dimension).
 * @param pe_cols  Array width (maps the N dimension).
 */
FunctionalResult runWeightStationaryGemm(const IntMatrix &a,
                                         const IntMatrix &b, int pe_rows,
                                         int pe_cols);

/**
 * Execute C = A * B on an output-stationary array: each PE owns one
 * output element; activations stream from the left, weights from the
 * top, both with diagonal skew, and the accumulators drain through the
 * columns after the reduction.
 *
 * @param a        Activation matrix (M x K); M maps to array rows.
 * @param b        Weight matrix (K x N); N maps to array columns.
 * @param pe_rows  Array height (maps the M dimension).
 * @param pe_cols  Array width (maps the N dimension).
 */
FunctionalResult runOutputStationaryGemm(const IntMatrix &a,
                                         const IntMatrix &b, int pe_rows,
                                         int pe_cols);

/**
 * Execute C = A * B on an input-stationary array: the im2col'd
 * activations are pinned in the PEs (rows map K, columns map M) while
 * the weights stream through.
 *
 * Implemented through the duality IS(A, B) = WS(B^T, A^T)^T: pinning
 * the inputs and streaming the weights is the weight-stationary
 * execution of the transposed product, so the register-level behaviour
 * (and the cycle count) is exactly the WS simulation on swapped
 * operands.
 */
FunctionalResult runInputStationaryGemm(const IntMatrix &a,
                                        const IntMatrix &b, int pe_rows,
                                        int pe_cols);

/** Transposed copy. */
IntMatrix transposed(const IntMatrix &m);

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_FUNCTIONAL_H
