/**
 * @file
 * Compiled model plans and the SoA analytical batch kernel.
 *
 * The scalar analytical path (AnalyticalEngine::run) re-derives, for
 * every (design, model) pair, facts that depend only on the model: the
 * per-layer GEMM lowering, tensor element counts and MAC totals. Worse,
 * its per-layer timing walks a materialized std::vector<Fold> (hundreds
 * to thousands of heap-allocated Fold structs for small PE arrays) even
 * though the fold sums collapse to closed form. CompiledModelPlan
 * precomputes the model-only invariants once into contiguous
 * structure-of-arrays vectors; evaluatePlanBatch() then costs N
 * accelerator configurations against one plan with tight inner loops
 * over those arrays, no per-design heap allocation (scratch comes from a
 * util::Arena) and no fold vectors.
 *
 * Bit-exactness contract: for every configuration the kernel's
 * aggregates (cycles, MACs, LayerTraffic) are byte-identical to what
 * AnalyticalEngine::run computes on the same model - all arithmetic is
 * int64 and mirrors tiling.cc / memory.cc term for term:
 *
 *  - computeCycles: sum over folds of foldCycles(r_i, c_j, s)
 *      = sum_{i,j} (2 r_i + c_j + s - 2)
 *      = 2 * colFolds * rowDim + rowFolds * colDim
 *        + rowFolds * colFolds * (streamDim - 2),
 *    because the partial row/column uses sum back to the full dims.
 *  - traffic: computeTraffic()'s residency/chunk/reuse expressions.
 *  - first-tile latency: fold 0's evenShare() portions, where
 *    evenShare(total, count, 0) == ceil(total / count).
 *
 * The scalar engine remains the reference implementation; the
 * randomized property test (test_batch_kernel.cc) pins the equivalence
 * across dataflows and the whole hardware space.
 */

#ifndef AUTOPILOT_SYSTOLIC_COMPILED_PLAN_H
#define AUTOPILOT_SYSTOLIC_COMPILED_PLAN_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/model.h"
#include "systolic/config.h"
#include "systolic/memory.h"
#include "util/arena.h"

namespace autopilot::systolic
{

/**
 * Model-only per-layer invariants in structure-of-arrays form.
 *
 * Compile once per model (the 27 bundled policies make this a tiny,
 * cacheable set), evaluate many configurations against it.
 */
class CompiledModelPlan
{
  public:
    /** Precompute the plan for @p model (fatal on an empty model). */
    static CompiledModelPlan compile(const nn::Model &model);

    const std::string &modelName() const { return name_; }
    std::size_t layerCount() const { return gemmM.size(); }

    /** Total useful MACs of one inference (config-independent). */
    std::int64_t totalMacs() const { return totalMacs_; }

    // Per-layer SoA arrays (all layerCount() long).
    std::vector<std::int64_t> gemmM; ///< GEMM output rows.
    std::vector<std::int64_t> gemmN; ///< GEMM output columns.
    std::vector<std::int64_t> gemmK; ///< GEMM reduction depth.
    std::vector<std::int64_t> mk;    ///< m * k (ifmap GEMM elements).
    std::vector<std::int64_t> kn;    ///< k * n (filter GEMM elements).
    std::vector<std::int64_t> mn;    ///< m * n (ofmap GEMM elements).
    std::vector<std::int64_t> ifmapElems;  ///< Raw ifmap tensor elements.
    std::vector<std::int64_t> filterElems; ///< Raw filter tensor elements.
    std::vector<std::int64_t> ofmapElems;  ///< Raw ofmap tensor elements.

  private:
    std::string name_;
    std::int64_t totalMacs_ = 0;
};

/**
 * SoA view of N whole-model run aggregates, one slot per configuration.
 * The spans point into arena scratch owned by the caller's batch scope.
 */
struct BatchRunView
{
    std::span<std::int64_t> totalCycles;
    std::span<std::int64_t> computeCycles;
    std::span<std::int64_t> stallCycles;
    std::span<std::int64_t> totalMacs;
    std::span<LayerTraffic> traffic; ///< Whole-model accumulated traffic.

    std::size_t size() const { return totalCycles.size(); }
};

/** Allocate a zeroed BatchRunView for @p count designs from @p arena. */
BatchRunView allocateBatchRunView(std::size_t count, util::Arena &arena);

/**
 * Cost every configuration in @p configs against @p plan, filling the
 * matching slot of @p out. Aggregates are byte-identical to
 * AnalyticalEngine(config).run(model) on the plan's source model (see
 * the file comment). Each configuration is validated exactly as the
 * scalar engine's constructor does. Pure; safe to call concurrently on
 * disjoint views.
 */
void evaluatePlanBatch(const CompiledModelPlan &plan,
                       std::span<const AcceleratorConfig> configs,
                       const BatchRunView &out);

/** Convenience overload: allocate the view from @p arena, then fill it. */
BatchRunView evaluatePlanBatch(const CompiledModelPlan &plan,
                               std::span<const AcceleratorConfig> configs,
                               util::Arena &arena);

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_COMPILED_PLAN_H
