/**
 * @file
 * Shared-DRAM contention profile.
 *
 * Phase 2 costs accelerators as if the NPU owned the LPDDR channel, but
 * on the real UAV SoC the camera pipeline and the flight-control host
 * stream through the same controller. A ContentionProfile describes that
 * background traffic as sustained bytes/s; the cycle engine derates its
 * effective fetch/writeback bandwidth by the fraction of the channel the
 * background streams consume, and the power stack charges the extra
 * DRAM traffic. The profile is a sidecar to AcceleratorConfig - the
 * design space stays untouched, the deployment scenario changes.
 */

#ifndef AUTOPILOT_SYSTOLIC_CONTENTION_H
#define AUTOPILOT_SYSTOLIC_CONTENTION_H

#include "systolic/config.h"

namespace autopilot::systolic
{

/** Background DRAM traffic sharing the NPU's channel. */
struct ContentionProfile
{
    /// Camera/ISP pipeline stream (sensor frames through the channel),
    /// sustained bytes per second.
    double cameraBytesPerSec = 0.0;
    /// Flight-control host traffic (planner, state estimator, logging),
    /// sustained bytes per second.
    double hostBytesPerSec = 0.0;
    /// QoS floor: fraction of the channel the memory controller
    /// guarantees the NPU regardless of background load, in [0, 1).
    /// 0 (default) models a strictly fair channel - a background load
    /// at or above the peak bandwidth starves the NPU completely,
    /// which the cycle engine diagnoses as an infeasible profile.
    double npuFloorFraction = 0.0;

    /** Total background traffic in bytes per second. */
    double totalBytesPerSec() const
    {
        return cameraBytesPerSec + hostBytesPerSec;
    }

    /** True when any background traffic is configured. */
    bool enabled() const { return totalBytesPerSec() > 0.0; }

    /**
     * Fraction of @p config's peak DRAM bandwidth left to the NPU:
     * max(1 - background/peak, npuFloorFraction). May be <= 0 for a
     * fully-contended channel with no QoS floor; callers must diagnose
     * that instead of dividing by it.
     */
    double derate(const AcceleratorConfig &config) const;

    /**
     * Abort via fatal() when any rate is negative or non-finite, or the
     * QoS floor is outside [0, 1).
     */
    void validate() const;

    bool operator==(const ContentionProfile &other) const = default;
};

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_CONTENTION_H
