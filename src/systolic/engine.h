/**
 * @file
 * Accelerator performance engines.
 *
 * Two engines share one result format:
 *
 *  - AnalyticalEngine: closed-form per-layer timing
 *    (max(compute, DRAM-transfer) plus first-tile latency). Fast; used
 *    inside the Phase 2 design-space exploration loop.
 *  - CycleEngine (cycle_engine.h): walks the fold schedule cycle-by-cycle
 *    with an explicit double-buffered prefetch timeline. The reference
 *    model used by the benches.
 *
 * Property tests assert the analytical runtime brackets the cycle-stepped
 * runtime: max(C, D) <= T_cycle <= C + D (+ first tile, last drain).
 */

#ifndef AUTOPILOT_SYSTOLIC_ENGINE_H
#define AUTOPILOT_SYSTOLIC_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"
#include "systolic/config.h"
#include "systolic/memory.h"
#include "systolic/tiling.h"

namespace autopilot::systolic
{

/** Timing and memory activity of one layer. */
struct LayerResult
{
    std::string layerName;
    nn::GemmShape gemm;
    std::int64_t rowFolds = 0;
    std::int64_t colFolds = 0;
    std::int64_t computeCycles = 0; ///< Pure array busy cycles.
    std::int64_t stallCycles = 0;   ///< Cycles waiting on DRAM.
    std::int64_t totalCycles = 0;   ///< computeCycles + stallCycles.
    LayerTraffic traffic;

    /** Useful-MAC utilization of the PE array over totalCycles. */
    double utilization(std::int64_t pe_count) const;
};

/** Aggregate result of running a whole model on the accelerator. */
struct RunResult
{
    std::vector<LayerResult> layers;
    std::int64_t totalCycles = 0;
    std::int64_t computeCycles = 0;
    std::int64_t stallCycles = 0;
    std::int64_t totalMacs = 0;
    LayerTraffic traffic;

    /**
     * End-to-end inference latency in seconds at the given clock.
     * Degenerate inputs (totalCycles <= 0, clock_ghz <= 0 or NaN)
     * return 0 instead of inf/NaN (debug builds assert).
     */
    double runtimeSeconds(double clock_ghz) const;

    /** Inferences per second at the given clock. */
    double framesPerSecond(double clock_ghz) const;

    /** Useful-MAC utilization of the PE array over the whole run. */
    double peUtilization(std::int64_t pe_count) const;
};

/** Shared interface of the two engines. */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Simulate one layer. */
    virtual LayerResult runLayer(const nn::Layer &layer) const = 0;

    /** Simulate a whole model (layers execute back to back). */
    RunResult run(const nn::Model &model) const;
};

/**
 * Closed-form engine: per layer,
 * total = max(computeCycles, dramCycles) + firstTileLatency.
 */
class AnalyticalEngine : public Engine
{
  public:
    /** @param config Accelerator configuration (validated). */
    explicit AnalyticalEngine(const AcceleratorConfig &config);

    LayerResult runLayer(const nn::Layer &layer) const override;

    const AcceleratorConfig &config() const { return cfg; }

  private:
    AcceleratorConfig cfg;
};

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_ENGINE_H
