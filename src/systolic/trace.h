/**
 * @file
 * Memory-event trace generation, SCALE-Sim style.
 *
 * SCALE-Sim's primary output is per-cycle SRAM/DRAM traces that feed
 * power models; this module reproduces that interface at fold
 * granularity: a stream of records, one per (fold, event-kind), carrying
 * the byte/element counts and the fold's start cycle on the prefetch
 * timeline. The trace totals are guaranteed to match computeTraffic()
 * (property-tested), so trace consumers and the analytic power model
 * always agree.
 */

#ifndef AUTOPILOT_SYSTOLIC_TRACE_H
#define AUTOPILOT_SYSTOLIC_TRACE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "systolic/config.h"
#include "systolic/memory.h"
#include "systolic/tiling.h"

namespace autopilot::systolic
{

/** Kind of a trace event. */
enum class TraceEventKind
{
    DramFetch,     ///< Operand bytes fetched ahead of a fold.
    DramWriteback, ///< Result bytes written back after a fold.
    SramRead,      ///< Operand elements streamed from scratchpads.
    SramWrite,     ///< Result elements written to scratchpads.
};

/** Human-readable event-kind label. */
std::string traceEventKindName(TraceEventKind kind);

/** One trace record. */
struct TraceEvent
{
    std::int64_t foldIndex = 0;
    std::int64_t startCycle = 0; ///< Fold compute-start cycle.
    TraceEventKind kind = TraceEventKind::DramFetch;
    std::int64_t amount = 0; ///< Bytes (DRAM) or elements (SRAM).
};

/** Complete trace of one layer. */
struct LayerTrace
{
    std::string layerName;
    std::vector<TraceEvent> events;

    /** Sum of amounts for one event kind. */
    std::int64_t totalOf(TraceEventKind kind) const;

    /** Emit as CSV (layer,fold,cycle,kind,amount). */
    void writeCsv(std::ostream &os) const;
};

/**
 * Generate the fold-granular trace of a layer on a configuration.
 *
 * Fold start cycles follow the same double-buffered prefetch timeline as
 * the CycleEngine; DRAM amounts match foldFetchBytes/foldWritebackBytes
 * and SRAM amounts split computeTraffic()'s totals evenly across folds.
 */
LayerTrace traceLayer(const nn::Layer &layer,
                      const AcceleratorConfig &config);

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_TRACE_H
