/**
 * @file
 * Fold (tile) scheduling of a GEMM onto the PE array.
 *
 * A layer lowered to an (M x K) * (K x N) GEMM is executed as a sequence of
 * folds. Which GEMM dimensions map to the array's rows and columns depends
 * on the dataflow (SCALE-Sim convention):
 *
 *   WS: rows <- K (window depth), cols <- N (filters); M streams.
 *   OS: rows <- M (output pixels), cols <- N (filters); K streams.
 *   IS: rows <- K (window depth), cols <- M (output pixels); N streams.
 *
 * Each fold has a fill/compute/drain cycle count derived from the classic
 * systolic pipeline timing; the scheduler also reports per-fold operand
 * tile sizes so the memory model can build the prefetch timeline.
 */

#ifndef AUTOPILOT_SYSTOLIC_TILING_H
#define AUTOPILOT_SYSTOLIC_TILING_H

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "systolic/config.h"

namespace autopilot::systolic
{

/** One fold: the work mapped onto the array at one time. */
struct Fold
{
    std::int64_t rowsUsed = 0;   ///< PE rows occupied (<= peRows).
    std::int64_t colsUsed = 0;   ///< PE columns occupied (<= peCols).
    std::int64_t streamLen = 0;  ///< Elements streamed through the array.
    std::int64_t cycles = 0;     ///< Fill + stream + drain cycles.
    std::int64_t ifmapBytes = 0; ///< Ifmap tile fetched for this fold.
    std::int64_t filterBytes = 0;///< Filter tile fetched for this fold.
    std::int64_t ofmapBytes = 0; ///< Ofmap tile written back by this fold.
    std::int64_t macs = 0;       ///< Useful MACs performed in this fold.
};

/** Complete fold schedule of one layer. */
struct FoldSchedule
{
    std::int64_t rowFolds = 0; ///< Folds along the row-mapped dimension.
    std::int64_t colFolds = 0; ///< Folds along the column-mapped dimension.
    std::vector<Fold> folds;   ///< Row-major fold order.

    /** Total folds = rowFolds * colFolds. */
    std::int64_t foldCount() const { return rowFolds * colFolds; }

    /** Sum of per-fold compute cycles. */
    std::int64_t computeCycles() const;

    /** Sum of per-fold useful MACs. */
    std::int64_t totalMacs() const;
};

/**
 * Build the fold schedule for a layer on a given accelerator.
 *
 * @param gemm   GEMM view of the layer.
 * @param config Accelerator configuration (array shape and dataflow).
 */
FoldSchedule scheduleGemm(const nn::GemmShape &gemm,
                          const AcceleratorConfig &config);

/**
 * Cycles for a single fold given the array shape and streamed length.
 *
 * Timing follows the standard systolic pipeline: rows_used cycles to fill
 * (or pre-load the stationary operand), stream_len cycles of streaming,
 * rows_used + cols_used - 2 cycles to drain the last results.
 */
std::int64_t foldCycles(std::int64_t rows_used, std::int64_t cols_used,
                        std::int64_t stream_len);

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_TILING_H
