#include "systolic/functional.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::systolic
{

using util::fatalIf;
using util::panicIf;

IntMatrix::IntMatrix(std::int64_t r, std::int64_t c)
    : rows(r), cols(c),
      data(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0)
{
    fatalIf(r <= 0 || c <= 0, "IntMatrix: dimensions must be positive");
}

std::int32_t &
IntMatrix::at(std::int64_t r, std::int64_t c)
{
    panicIf(r < 0 || r >= rows || c < 0 || c >= cols,
            "IntMatrix::at: out of range");
    return data[static_cast<std::size_t>(r) * cols + c];
}

std::int32_t
IntMatrix::at(std::int64_t r, std::int64_t c) const
{
    panicIf(r < 0 || r >= rows || c < 0 || c >= cols,
            "IntMatrix::at: out of range");
    return data[static_cast<std::size_t>(r) * cols + c];
}

IntMatrix
referenceGemm(const IntMatrix &a, const IntMatrix &b)
{
    fatalIf(a.cols != b.rows, "referenceGemm: shape mismatch");
    IntMatrix c(a.rows, b.cols);
    for (std::int64_t m = 0; m < a.rows; ++m) {
        for (std::int64_t k = 0; k < a.cols; ++k) {
            const std::int32_t lhs = a.at(m, k);
            if (lhs == 0)
                continue;
            for (std::int64_t n = 0; n < b.cols; ++n)
                c.at(m, n) += lhs * b.at(k, n);
        }
    }
    return c;
}

namespace
{

/**
 * One fold on the physical array: weights for (k0..k0+rows_used) x
 * (n0..n0+cols_used) pinned; all M activation rows streamed with the
 * classic diagonal skew; outputs accumulated into @p out.
 *
 * Returns the cycle count of this fold (preload + skewed stream +
 * drain), measured by the simulation itself.
 */
std::int64_t
simulateFold(const IntMatrix &a, const IntMatrix &b, IntMatrix &out,
             std::int64_t k0, std::int64_t rows_used, std::int64_t n0,
             std::int64_t cols_used)
{
    const std::int64_t m_total = a.rows;

    // Register state: activations move right, psums move down. One grid
    // slot per PE plus the value leaving the bottom edge.
    std::vector<std::vector<std::int32_t>> act(
        rows_used, std::vector<std::int32_t>(cols_used, 0));
    std::vector<std::vector<std::int32_t>> psum(
        rows_used, std::vector<std::int32_t>(cols_used, 0));

    // Weight preload: one row per cycle (counted, not simulated - the
    // weights bus is independent of the act/psum registers).
    std::int64_t cycles = rows_used;

    // Streaming phase: activation a[m][k0 + r] enters row r at cycle
    // t = m + r. The last useful cycle at the bottom-right PE is
    // (m_total - 1) + (rows_used - 1) + (cols_used - 1); one more cycle
    // moves the final psum out of the array.
    const std::int64_t last_cycle =
        (m_total - 1) + (rows_used - 1) + (cols_used - 1);

    for (std::int64_t t = 0; t <= last_cycle; ++t) {
        // Evaluate top-to-bottom, right-to-left so each PE reads its
        // neighbours' *previous-cycle* registers.
        for (std::int64_t r = rows_used - 1; r >= 0; --r) {
            for (std::int64_t c = cols_used - 1; c >= 0; --c) {
                // Activation arriving from the left neighbour (or the
                // edge feeder for column 0).
                std::int32_t act_in = 0;
                if (c == 0) {
                    const std::int64_t m = t - r;
                    if (m >= 0 && m < m_total)
                        act_in = a.at(m, k0 + r);
                } else {
                    act_in = act[r][c - 1];
                }
                const std::int32_t psum_in =
                    (r == 0) ? 0 : psum[r - 1][c];
                const std::int32_t weight = b.at(k0 + r, n0 + c);

                // The bottom row's new psum leaves the array: commit it
                // to the output accumulator for the m it belongs to.
                const std::int32_t produced =
                    psum_in + weight * act_in;
                if (r == rows_used - 1) {
                    const std::int64_t m = t - r - c;
                    if (m >= 0 && m < m_total)
                        out.at(m, n0 + c) += produced;
                }
                // Registers latch for the next cycle. Because we sweep
                // bottom-right to top-left, act[r][c-1] and psum[r-1][c]
                // still hold the previous cycle's values when read...
                // (writes below only touch [r][c], which later-visited
                // PEs - smaller r/c - never read this cycle).
                psum[r][c] = produced;
                act[r][c] = act_in;
            }
        }
        ++cycles;
    }

    // One drain cycle for the last bottom-edge psum to clear the output
    // bus (matches the analytic fold formula's trailing term).
    return cycles;
}

/**
 * One output-stationary fold: PEs own C[m0.., n0..]; A rows stream from
 * the left and B columns from the top, both skewed; the local INT32
 * accumulators drain down the columns afterwards (rows_used cycles).
 */
std::int64_t
simulateOsFold(const IntMatrix &a, const IntMatrix &b, IntMatrix &out,
               std::int64_t m0, std::int64_t rows_used, std::int64_t n0,
               std::int64_t cols_used)
{
    const std::int64_t k_total = a.cols;

    std::vector<std::vector<std::int32_t>> a_reg(
        rows_used, std::vector<std::int32_t>(cols_used, 0));
    std::vector<std::vector<std::int32_t>> b_reg(
        rows_used, std::vector<std::int32_t>(cols_used, 0));
    std::vector<std::vector<std::int32_t>> acc(
        rows_used, std::vector<std::int32_t>(cols_used, 0));

    // a[m0+r][k] enters row r at cycle k + r; b[k][n0+c] enters column c
    // at cycle k + c; they meet at PE(r, c) at cycle k + r + c.
    const std::int64_t last_cycle =
        (k_total - 1) + (rows_used - 1) + (cols_used - 1);

    for (std::int64_t t = 0; t <= last_cycle; ++t) {
        for (std::int64_t r = rows_used - 1; r >= 0; --r) {
            for (std::int64_t c = cols_used - 1; c >= 0; --c) {
                std::int32_t a_in = 0;
                if (c == 0) {
                    const std::int64_t k = t - r;
                    if (k >= 0 && k < k_total)
                        a_in = a.at(m0 + r, k);
                } else {
                    a_in = a_reg[r][c - 1];
                }
                std::int32_t b_in = 0;
                if (r == 0) {
                    const std::int64_t k = t - c;
                    if (k >= 0 && k < k_total)
                        b_in = b.at(k, n0 + c);
                } else {
                    b_in = b_reg[r - 1][c];
                }
                acc[r][c] += a_in * b_in;
                a_reg[r][c] = a_in;
                b_reg[r][c] = b_in;
            }
        }
    }

    for (std::int64_t r = 0; r < rows_used; ++r)
        for (std::int64_t c = 0; c < cols_used; ++c)
            out.at(m0 + r, n0 + c) += acc[r][c];

    // Streamed cycles plus the column drain of the accumulators.
    return (last_cycle + 1) + rows_used;
}

} // namespace

FunctionalResult
runWeightStationaryGemm(const IntMatrix &a, const IntMatrix &b,
                        int pe_rows, int pe_cols)
{
    fatalIf(a.cols != b.rows,
            "runWeightStationaryGemm: shape mismatch");
    fatalIf(pe_rows <= 0 || pe_cols <= 0,
            "runWeightStationaryGemm: array dims must be positive");

    FunctionalResult result;
    result.output = IntMatrix(a.rows, b.cols);

    for (std::int64_t k0 = 0; k0 < b.rows; k0 += pe_rows) {
        const std::int64_t rows_used =
            std::min<std::int64_t>(pe_rows, b.rows - k0);
        for (std::int64_t n0 = 0; n0 < b.cols; n0 += pe_cols) {
            const std::int64_t cols_used =
                std::min<std::int64_t>(pe_cols, b.cols - n0);
            result.totalCycles += simulateFold(
                a, b, result.output, k0, rows_used, n0, cols_used);
            ++result.foldCount;
        }
    }
    return result;
}

FunctionalResult
runOutputStationaryGemm(const IntMatrix &a, const IntMatrix &b,
                        int pe_rows, int pe_cols)
{
    fatalIf(a.cols != b.rows,
            "runOutputStationaryGemm: shape mismatch");
    fatalIf(pe_rows <= 0 || pe_cols <= 0,
            "runOutputStationaryGemm: array dims must be positive");

    FunctionalResult result;
    result.output = IntMatrix(a.rows, b.cols);

    for (std::int64_t m0 = 0; m0 < a.rows; m0 += pe_rows) {
        const std::int64_t rows_used =
            std::min<std::int64_t>(pe_rows, a.rows - m0);
        for (std::int64_t n0 = 0; n0 < b.cols; n0 += pe_cols) {
            const std::int64_t cols_used =
                std::min<std::int64_t>(pe_cols, b.cols - n0);
            result.totalCycles += simulateOsFold(
                a, b, result.output, m0, rows_used, n0, cols_used);
            ++result.foldCount;
        }
    }
    return result;
}

IntMatrix
transposed(const IntMatrix &m)
{
    IntMatrix out(m.cols, m.rows);
    for (std::int64_t r = 0; r < m.rows; ++r)
        for (std::int64_t c = 0; c < m.cols; ++c)
            out.at(c, r) = m.at(r, c);
    return out;
}

FunctionalResult
runInputStationaryGemm(const IntMatrix &a, const IntMatrix &b,
                       int pe_rows, int pe_cols)
{
    fatalIf(a.cols != b.rows,
            "runInputStationaryGemm: shape mismatch");
    // IS pins A^T (K x M) in the array and streams B's N columns:
    // exactly WS on (B^T, A^T), transposed back.
    FunctionalResult swapped = runWeightStationaryGemm(
        transposed(b), transposed(a), pe_rows, pe_cols);
    FunctionalResult result;
    result.output = transposed(swapped.output);
    result.totalCycles = swapped.totalCycles;
    result.foldCount = swapped.foldCount;
    return result;
}

} // namespace autopilot::systolic
