#include "systolic/contention.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace autopilot::systolic
{

double
ContentionProfile::derate(const AcceleratorConfig &config) const
{
    const double peak_bytes_per_sec =
        static_cast<double>(config.dramBytesPerCycle) *
        config.clockGhz * 1e9;
    const double share = 1.0 - totalBytesPerSec() / peak_bytes_per_sec;
    return std::max(share, npuFloorFraction);
}

void
ContentionProfile::validate() const
{
    // !(x >= 0) instead of x < 0: NaN rates must not slip through.
    util::fatalIf(!(cameraBytesPerSec >= 0.0) ||
                      !std::isfinite(cameraBytesPerSec),
                  "ContentionProfile: camera rate must be finite and "
                  ">= 0");
    util::fatalIf(!(hostBytesPerSec >= 0.0) ||
                      !std::isfinite(hostBytesPerSec),
                  "ContentionProfile: host rate must be finite and "
                  ">= 0");
    util::fatalIf(!(npuFloorFraction >= 0.0) || npuFloorFraction >= 1.0,
                  "ContentionProfile: QoS floor outside [0, 1)");
}

} // namespace autopilot::systolic
