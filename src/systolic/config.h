/**
 * @file
 * Accelerator configuration (the "DSSoC template" of Fig. 3a) and the
 * hardware half of the Table II design space.
 */

#ifndef AUTOPILOT_SYSTOLIC_CONFIG_H
#define AUTOPILOT_SYSTOLIC_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "systolic/dataflow.h"

namespace autopilot::systolic
{

/**
 * Parameterized NPU template: a Sr x Sc systolic array with three
 * scratchpads (ifmap / filter / ofmap) and a DRAM interface.
 *
 * All scratchpads are double-buffered: half the capacity holds the working
 * tile while the other half is prefetched.
 */
struct AcceleratorConfig
{
    int peRows = 32;            ///< Systolic array height Sr.
    int peCols = 32;            ///< Systolic array width Sc.
    int ifmapSramKb = 256;      ///< Input feature-map scratchpad, KiB.
    int filterSramKb = 256;     ///< Filter scratchpad, KiB.
    int ofmapSramKb = 256;      ///< Output feature-map scratchpad, KiB.
    Dataflow dataflow = Dataflow::WeightStationary;
    double clockGhz = 0.2;      ///< NPU clock; 200 MHz default.
    int dramBytesPerCycle = 32; ///< DRAM interface width (bytes/cycle).
    int bytesPerElement = 1;    ///< INT8 quantized inference.

    /** Total number of processing elements. */
    std::int64_t peCount() const
    {
        return static_cast<std::int64_t>(peRows) * peCols;
    }

    /** Total on-chip SRAM capacity in KiB. */
    std::int64_t totalSramKb() const
    {
        return static_cast<std::int64_t>(ifmapSramKb) + filterSramKb +
               ofmapSramKb;
    }

    /** Short identifier, e.g. "ws_32x32_i256_f256_o256". */
    std::string name() const;

    /** Abort via fatal() when any field is out of its legal range. */
    void validate() const;

    bool operator==(const AcceleratorConfig &other) const = default;
};

/**
 * The hardware design space of Table II: PE rows/columns in
 * {8,...,1024}, scratchpad sizes in {32KB,...,4096KB}. The precision
 * axis (operand bytes per element) defaults to the single int8 choice,
 * which keeps legacy 7-dimension searches bit-identical; widening it to
 * {1,2,4} turns inference precision into an 8th search dimension.
 */
struct HardwareSpace
{
    std::vector<int> peRowChoices = {8, 16, 32, 64, 128, 256, 512, 1024};
    std::vector<int> peColChoices = {8, 16, 32, 64, 128, 256, 512, 1024};
    std::vector<int> sramKbChoices = {32, 64, 128, 256, 512, 1024, 2048,
                                      4096};
    std::vector<int> bytesPerElementChoices = {1};

    /** Number of distinct configurations (PEs x SRAMs x precisions). */
    std::int64_t cardinality() const;

    /** True when @p config uses only legal choice values (including
     *  bytesPerElement: an out-of-space precision is rejected here the
     *  same way DesignSpace::encode rejects it with a fatal). */
    bool contains(const AcceleratorConfig &config) const;
};

/** Canonical label for an operand width: 1 -> "int8", 2 -> "fp16",
 *  4 -> "fp32". Aborts via fatal() on any other width. */
std::string precisionName(int bytesPerElement);

/** Inverse of precisionName. Returns false on an unknown label. */
bool precisionFromName(const std::string &name, int &bytesPerElement);

/**
 * Parse a comma-separated precision list ("int8,fp16,fp32") into
 * ascending operand widths. Rejects empty lists, unknown labels and
 * duplicates with a diagnosis in @p error.
 */
bool parsePrecisionList(const std::string &text,
                        std::vector<int> &bytesPerElement,
                        std::string &error);

/** Stable text form of a precision list, e.g. "int8+fp16+fp32"; used
 *  by task fingerprints and telemetry labels. */
std::string formatPrecisionList(const std::vector<int> &bytesPerElement);

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_CONFIG_H
