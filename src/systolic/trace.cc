#include "systolic/trace.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::systolic
{

std::string
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::DramFetch:     return "dram_fetch";
      case TraceEventKind::DramWriteback: return "dram_writeback";
      case TraceEventKind::SramRead:      return "sram_read";
      case TraceEventKind::SramWrite:     return "sram_write";
    }
    return "?";
}

std::int64_t
LayerTrace::totalOf(TraceEventKind kind) const
{
    std::int64_t total = 0;
    for (const TraceEvent &event : events) {
        if (event.kind == kind)
            total += event.amount;
    }
    return total;
}

void
LayerTrace::writeCsv(std::ostream &os) const
{
    os << "layer,fold,cycle,kind,amount\n";
    for (const TraceEvent &event : events) {
        os << layerName << ',' << event.foldIndex << ','
           << event.startCycle << ',' << traceEventKindName(event.kind)
           << ',' << event.amount << '\n';
    }
}

LayerTrace
traceLayer(const nn::Layer &layer, const AcceleratorConfig &config)
{
    const FoldSchedule schedule = scheduleGemm(layer.gemm(), config);
    const LayerTraffic traffic =
        computeTraffic(layer, schedule, config);
    const std::int64_t fold_count = schedule.foldCount();
    const std::int64_t bw = config.dramBytesPerCycle;

    auto to_cycles = [bw](std::int64_t bytes) {
        return (bytes + bw - 1) / bw;
    };
    auto share = [fold_count](std::int64_t total, std::int64_t fold) {
        const std::int64_t base = total / fold_count;
        const std::int64_t extra = total % fold_count;
        return base + (fold < extra ? 1 : 0);
    };

    LayerTrace trace;
    trace.layerName = layer.name;
    trace.events.reserve(static_cast<std::size_t>(fold_count) * 4);

    const std::int64_t sram_reads =
        traffic.ifmapSramReads + traffic.filterSramReads +
        traffic.psumSramReads;
    const std::int64_t sram_writes =
        traffic.ofmapSramWrites + traffic.psumSramWrites;

    // Same timeline as CycleEngine::runLayer.
    std::int64_t dram_free = 0;
    std::int64_t compute_done = 0;
    std::int64_t compute_done_prev = 0;

    for (std::int64_t f = 0; f < fold_count; ++f) {
        const std::int64_t fetch_bytes =
            foldFetchBytes(layer, schedule, config, f);
        const std::int64_t wb_bytes =
            foldWritebackBytes(layer, schedule, config, f);

        const std::int64_t fetch_start =
            std::max(dram_free, compute_done_prev);
        const std::int64_t fetch_done =
            fetch_start + to_cycles(fetch_bytes);
        dram_free = fetch_done;

        const std::int64_t fold_cycles =
            schedule.folds[static_cast<std::size_t>(f)].cycles;
        const std::int64_t compute_start =
            std::max(compute_done, fetch_done);
        compute_done_prev = compute_done;
        compute_done = compute_start + fold_cycles;

        if (fetch_bytes > 0) {
            trace.events.push_back({f, fetch_start,
                                    TraceEventKind::DramFetch,
                                    fetch_bytes});
        }
        trace.events.push_back({f, compute_start,
                                TraceEventKind::SramRead,
                                share(sram_reads, f)});
        trace.events.push_back({f, compute_start,
                                TraceEventKind::SramWrite,
                                share(sram_writes, f)});
        if (wb_bytes > 0) {
            const std::int64_t wb_start =
                std::max(dram_free, compute_done);
            trace.events.push_back({f, wb_start,
                                    TraceEventKind::DramWriteback,
                                    wb_bytes});
            dram_free = wb_start + to_cycles(wb_bytes);
        }
    }

    return trace;
}

} // namespace autopilot::systolic
