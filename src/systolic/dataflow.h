/**
 * @file
 * Systolic-array dataflow taxonomy, following the SCALE-Sim convention.
 */

#ifndef AUTOPILOT_SYSTOLIC_DATAFLOW_H
#define AUTOPILOT_SYSTOLIC_DATAFLOW_H

#include <string>

namespace autopilot::systolic
{

/**
 * Mapping strategy for the PE array.
 *
 * Names follow SCALE-Sim / Eyeriss terminology: the "stationary" tensor is
 * pinned in the PEs while the other two stream through.
 */
enum class Dataflow
{
    OutputStationary, ///< PEs own output pixels; ifmap and filters stream.
    WeightStationary, ///< PEs own weights; ifmap streams, psums move down.
    InputStationary,  ///< PEs own ifmap elements; weights stream.
};

/** Human-readable dataflow name ("OS", "WS", "IS"). */
inline std::string
dataflowName(Dataflow dataflow)
{
    switch (dataflow) {
      case Dataflow::OutputStationary: return "OS";
      case Dataflow::WeightStationary: return "WS";
      case Dataflow::InputStationary:  return "IS";
    }
    return "?";
}

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_DATAFLOW_H
