#include "systolic/config.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"

namespace autopilot::systolic
{

using util::fatalIf;

std::string
AcceleratorConfig::name() const
{
    std::string label = dataflowName(dataflow);
    std::transform(label.begin(), label.end(), label.begin(),
                   [](unsigned char ch) {
                       return static_cast<char>(std::tolower(ch));
                   });
    return label + "_" + std::to_string(peRows) + "x" +
           std::to_string(peCols) + "_i" + std::to_string(ifmapSramKb) +
           "_f" + std::to_string(filterSramKb) + "_o" +
           std::to_string(ofmapSramKb);
}

void
AcceleratorConfig::validate() const
{
    fatalIf(peRows <= 0 || peCols <= 0,
            "AcceleratorConfig: PE dimensions must be positive");
    fatalIf(ifmapSramKb <= 0 || filterSramKb <= 0 || ofmapSramKb <= 0,
            "AcceleratorConfig: scratchpad sizes must be positive");
    fatalIf(clockGhz <= 0.0, "AcceleratorConfig: clock must be positive");
    fatalIf(dramBytesPerCycle <= 0,
            "AcceleratorConfig: DRAM width must be positive");
    fatalIf(bytesPerElement <= 0,
            "AcceleratorConfig: element size must be positive");
}

std::int64_t
HardwareSpace::cardinality() const
{
    const auto sram = static_cast<std::int64_t>(sramKbChoices.size());
    return static_cast<std::int64_t>(peRowChoices.size()) *
           static_cast<std::int64_t>(peColChoices.size()) * sram * sram *
           sram;
}

bool
HardwareSpace::contains(const AcceleratorConfig &config) const
{
    auto has = [](const std::vector<int> &choices, int value) {
        return std::find(choices.begin(), choices.end(), value) !=
               choices.end();
    };
    return has(peRowChoices, config.peRows) &&
           has(peColChoices, config.peCols) &&
           has(sramKbChoices, config.ifmapSramKb) &&
           has(sramKbChoices, config.filterSramKb) &&
           has(sramKbChoices, config.ofmapSramKb);
}

} // namespace autopilot::systolic
