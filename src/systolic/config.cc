#include "systolic/config.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"

namespace autopilot::systolic
{

using util::fatalIf;

std::string
AcceleratorConfig::name() const
{
    std::string label = dataflowName(dataflow);
    std::transform(label.begin(), label.end(), label.begin(),
                   [](unsigned char ch) {
                       return static_cast<char>(std::tolower(ch));
                   });
    return label + "_" + std::to_string(peRows) + "x" +
           std::to_string(peCols) + "_i" + std::to_string(ifmapSramKb) +
           "_f" + std::to_string(filterSramKb) + "_o" +
           std::to_string(ofmapSramKb);
}

void
AcceleratorConfig::validate() const
{
    fatalIf(peRows <= 0 || peCols <= 0,
            "AcceleratorConfig: PE dimensions must be positive");
    fatalIf(ifmapSramKb <= 0 || filterSramKb <= 0 || ofmapSramKb <= 0,
            "AcceleratorConfig: scratchpad sizes must be positive");
    fatalIf(clockGhz <= 0.0, "AcceleratorConfig: clock must be positive");
    fatalIf(dramBytesPerCycle <= 0,
            "AcceleratorConfig: DRAM width must be positive");
    fatalIf(bytesPerElement <= 0,
            "AcceleratorConfig: element size must be positive");
}

std::int64_t
HardwareSpace::cardinality() const
{
    const auto sram = static_cast<std::int64_t>(sramKbChoices.size());
    return static_cast<std::int64_t>(peRowChoices.size()) *
           static_cast<std::int64_t>(peColChoices.size()) * sram * sram *
           sram * static_cast<std::int64_t>(bytesPerElementChoices.size());
}

bool
HardwareSpace::contains(const AcceleratorConfig &config) const
{
    auto has = [](const std::vector<int> &choices, int value) {
        return std::find(choices.begin(), choices.end(), value) !=
               choices.end();
    };
    return has(peRowChoices, config.peRows) &&
           has(peColChoices, config.peCols) &&
           has(sramKbChoices, config.ifmapSramKb) &&
           has(sramKbChoices, config.filterSramKb) &&
           has(sramKbChoices, config.ofmapSramKb) &&
           has(bytesPerElementChoices, config.bytesPerElement);
}

std::string
precisionName(int bytesPerElement)
{
    switch (bytesPerElement) {
    case 1:
        return "int8";
    case 2:
        return "fp16";
    case 4:
        return "fp32";
    default:
        util::fatal("precisionName: unsupported operand width " +
                    std::to_string(bytesPerElement) +
                    " bytes (want 1, 2 or 4)");
    }
}

bool
precisionFromName(const std::string &name, int &bytesPerElement)
{
    if (name == "int8") {
        bytesPerElement = 1;
    } else if (name == "fp16") {
        bytesPerElement = 2;
    } else if (name == "fp32") {
        bytesPerElement = 4;
    } else {
        return false;
    }
    return true;
}

bool
parsePrecisionList(const std::string &text,
                   std::vector<int> &bytesPerElement, std::string &error)
{
    std::vector<int> parsed;
    std::string token;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        token = text.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
        // Trim surrounding whitespace so "int8, fp16" parses.
        while (!token.empty() &&
               std::isspace(static_cast<unsigned char>(token.front())))
            token.erase(token.begin());
        while (!token.empty() &&
               std::isspace(static_cast<unsigned char>(token.back())))
            token.pop_back();
        int width = 0;
        if (!precisionFromName(token, width)) {
            error = "unknown precision '" + token +
                    "' (want int8|fp16|fp32)";
            return false;
        }
        if (std::find(parsed.begin(), parsed.end(), width) !=
            parsed.end()) {
            error = "duplicate precision '" + token + "'";
            return false;
        }
        parsed.push_back(width);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (parsed.empty()) {
        error = "empty precision list";
        return false;
    }
    std::sort(parsed.begin(), parsed.end());
    bytesPerElement = std::move(parsed);
    return true;
}

std::string
formatPrecisionList(const std::vector<int> &bytesPerElement)
{
    std::string out;
    for (const int width : bytesPerElement) {
        if (!out.empty())
            out += '+';
        out += precisionName(width);
    }
    return out;
}

} // namespace autopilot::systolic
