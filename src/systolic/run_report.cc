#include "systolic/run_report.h"

#include <algorithm>

#include "util/logging.h"
#include "util/table.h"

namespace autopilot::systolic
{

void
printRunBreakdown(const RunResult &run, const AcceleratorConfig &config,
                  std::ostream &os)
{
    util::fatalIf(run.layers.empty(),
                  "printRunBreakdown: empty run result");

    util::Table table({"layer", "cycles", "time %", "stall %",
                       "DRAM MB", "util %"});
    for (const LayerResult &layer : run.layers) {
        const double time_share =
            100.0 * static_cast<double>(layer.totalCycles) /
            static_cast<double>(run.totalCycles);
        const double stall_share =
            layer.totalCycles > 0
                ? 100.0 * static_cast<double>(layer.stallCycles) /
                      static_cast<double>(layer.totalCycles)
                : 0.0;
        table.addRow(
            {layer.layerName, std::to_string(layer.totalCycles),
             util::formatDouble(time_share, 1),
             util::formatDouble(stall_share, 1),
             util::formatDouble(
                 layer.traffic.totalDramBytes() / 1048576.0, 2),
             util::formatDouble(
                 layer.utilization(config.peCount()) * 100, 1)});
    }
    table.addRow(
        {"TOTAL", std::to_string(run.totalCycles), "100.0",
         util::formatDouble(stallFraction(run) * 100, 1),
         util::formatDouble(run.traffic.totalDramBytes() / 1048576.0,
                            2),
         util::formatDouble(run.peUtilization(config.peCount()) * 100,
                            1)});
    table.print(os);
}

std::string
dominantLayer(const RunResult &run)
{
    util::fatalIf(run.layers.empty(), "dominantLayer: empty run result");
    const auto it = std::max_element(
        run.layers.begin(), run.layers.end(),
        [](const LayerResult &a, const LayerResult &b) {
            return a.totalCycles < b.totalCycles;
        });
    return it->layerName;
}

double
stallFraction(const RunResult &run)
{
    if (run.totalCycles <= 0)
        return 0.0;
    return static_cast<double>(run.stallCycles) /
           static_cast<double>(run.totalCycles);
}

} // namespace autopilot::systolic
