#include "systolic/compiled_plan.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::systolic
{

namespace
{

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Fold 0's portion of evenShare(total, share_count, 0) in memory.cc:
 * base + 1 extra byte whenever the division has a remainder, i.e.
 * ceil(total / share_count).
 */
std::int64_t
firstShare(std::int64_t total, std::int64_t share_count)
{
    return total / share_count + (total % share_count > 0 ? 1 : 0);
}

} // namespace

CompiledModelPlan
CompiledModelPlan::compile(const nn::Model &model)
{
    util::fatalIf(model.empty(),
                  "CompiledModelPlan::compile: empty model");

    CompiledModelPlan plan;
    plan.name_ = model.name();
    const std::size_t count = model.layers().size();
    plan.gemmM.reserve(count);
    plan.gemmN.reserve(count);
    plan.gemmK.reserve(count);
    plan.mk.reserve(count);
    plan.kn.reserve(count);
    plan.mn.reserve(count);
    plan.ifmapElems.reserve(count);
    plan.filterElems.reserve(count);
    plan.ofmapElems.reserve(count);

    for (const nn::Layer &layer : model.layers()) {
        const nn::GemmShape gemm = layer.gemm();
        util::panicIf(gemm.m <= 0 || gemm.n <= 0 || gemm.k <= 0,
                      "CompiledModelPlan::compile: degenerate GEMM "
                      "shape in layer " + layer.name);
        plan.gemmM.push_back(gemm.m);
        plan.gemmN.push_back(gemm.n);
        plan.gemmK.push_back(gemm.k);
        plan.mk.push_back(gemm.m * gemm.k);
        plan.kn.push_back(gemm.k * gemm.n);
        plan.mn.push_back(gemm.m * gemm.n);
        plan.ifmapElems.push_back(layer.ifmapElems());
        plan.filterElems.push_back(layer.filterElems());
        plan.ofmapElems.push_back(layer.ofmapElems());
        plan.totalMacs_ += gemm.macs();
    }
    return plan;
}

BatchRunView
allocateBatchRunView(std::size_t count, util::Arena &arena)
{
    BatchRunView view;
    view.totalCycles = arena.allocate<std::int64_t>(count);
    view.computeCycles = arena.allocate<std::int64_t>(count);
    view.stallCycles = arena.allocate<std::int64_t>(count);
    view.totalMacs = arena.allocate<std::int64_t>(count);
    view.traffic = arena.allocate<LayerTraffic>(count);
    return view;
}

void
evaluatePlanBatch(const CompiledModelPlan &plan,
                  std::span<const AcceleratorConfig> configs,
                  const BatchRunView &out)
{
    util::panicIf(out.totalCycles.size() != configs.size() ||
                      out.computeCycles.size() != configs.size() ||
                      out.stallCycles.size() != configs.size() ||
                      out.totalMacs.size() != configs.size() ||
                      out.traffic.size() != configs.size(),
                  "evaluatePlanBatch: view/config size mismatch");

    const std::size_t layers = plan.layerCount();

    for (std::size_t c = 0; c < configs.size(); ++c) {
        const AcceleratorConfig &cfg = configs[c];
        cfg.validate();

        const std::int64_t sr = cfg.peRows;
        const std::int64_t sc = cfg.peCols;
        const std::int64_t bpe = cfg.bytesPerElement;
        const std::int64_t dram_bpc = cfg.dramBytesPerCycle;
        // Half capacities: the scratchpads are double-buffered.
        const std::int64_t half_ifmap =
            static_cast<std::int64_t>(cfg.ifmapSramKb) * 1024 / 2;
        const std::int64_t half_filter =
            static_cast<std::int64_t>(cfg.filterSramKb) * 1024 / 2;
        const std::int64_t half_ofmap =
            static_cast<std::int64_t>(cfg.ofmapSramKb) * 1024 / 2;
        const std::int64_t chunk_rows =
            std::max<std::int64_t>(1, half_ofmap / (sc * psumBytes));
        const Dataflow dataflow = cfg.dataflow;

        std::int64_t acc_total = 0;
        std::int64_t acc_compute = 0;
        std::int64_t acc_macs = 0;
        LayerTraffic acc_traffic;

        for (std::size_t l = 0; l < layers; ++l) {
            const std::int64_t m = plan.gemmM[l];
            const std::int64_t n = plan.gemmN[l];
            const std::int64_t k = plan.gemmK[l];

            // Dimension assignment per dataflow (tiling.cc convention).
            std::int64_t row_dim = 0, col_dim = 0, stream_dim = 0;
            switch (dataflow) {
              case Dataflow::WeightStationary:
                row_dim = k; col_dim = n; stream_dim = m;
                break;
              case Dataflow::OutputStationary:
                row_dim = m; col_dim = n; stream_dim = k;
                break;
              case Dataflow::InputStationary:
                row_dim = k; col_dim = m; stream_dim = n;
                break;
            }

            const std::int64_t row_folds = ceilDiv(row_dim, sr);
            const std::int64_t col_folds = ceilDiv(col_dim, sc);
            const std::int64_t fold_count = row_folds * col_folds;

            // Closed form of sum_{i,j} foldCycles(r_i, c_j, s): the
            // partial row/column uses sum back to the full dims.
            const std::int64_t compute_cycles =
                2 * col_folds * row_dim + row_folds * col_dim +
                fold_count * (stream_dim - 2);

            // --- Residency (memory.cc analyzeResidency) ---
            const std::int64_t ifmap_bytes = plan.ifmapElems[l] * bpe;
            const std::int64_t filter_bytes = plan.filterElems[l] * bpe;
            const std::int64_t ofmap_bytes = plan.ofmapElems[l] * bpe;
            const bool ifmap_res = ifmap_bytes <= half_ifmap;
            const bool filter_res = filter_bytes <= half_filter;
            const bool psum_on_chip =
                plan.mn[l] * psumBytes <= half_ofmap;
            const std::int64_t chunk_stream_dim =
                dataflow == Dataflow::InputStationary ? n : m;
            const std::int64_t stream_chunks =
                psum_on_chip ? 1 : ceilDiv(chunk_stream_dim, chunk_rows);

            const bool crosses_folds =
                dataflow != Dataflow::OutputStationary && row_folds > 1;
            const std::int64_t chunks =
                crosses_folds ? stream_chunks : 1;

            // --- DRAM traffic (memory.cc computeTraffic) ---
            std::int64_t ifmap_dram = 0, filter_dram = 0;
            std::int64_t ifmap_sram = 0, filter_sram = 0;
            switch (dataflow) {
              case Dataflow::WeightStationary:
                ifmap_dram = ifmap_res ? ifmap_bytes
                                       : ifmap_bytes * col_folds;
                filter_dram = filter_res ? filter_bytes
                                         : filter_bytes * chunks;
                ifmap_sram = plan.mk[l] * col_folds;
                filter_sram = plan.kn[l] * chunks;
                break;
              case Dataflow::OutputStationary:
                ifmap_dram = ifmap_res ? ifmap_bytes
                                       : ifmap_bytes * col_folds;
                filter_dram = filter_res ? filter_bytes
                                         : filter_bytes * row_folds;
                ifmap_sram = plan.mk[l] * col_folds;
                filter_sram = plan.kn[l] * row_folds;
                break;
              case Dataflow::InputStationary:
                ifmap_dram = ifmap_res ? ifmap_bytes
                                       : plan.mk[l] * bpe * chunks;
                filter_dram = filter_res ? filter_bytes
                                         : filter_bytes * col_folds;
                ifmap_sram = plan.mk[l] * chunks;
                filter_sram = plan.kn[l] * col_folds;
                break;
            }
            const std::int64_t psum_sram =
                crosses_folds ? plan.mn[l] * (row_folds - 1) : 0;

            // --- First-tile latency: fold 0's evenShare portions ---
            std::int64_t fetch0 = 0;
            if (dataflow == Dataflow::InputStationary || !ifmap_res)
                fetch0 += firstShare(ifmap_dram, fold_count);
            else
                fetch0 += firstShare(ifmap_dram, row_folds);
            if (dataflow == Dataflow::OutputStationary && filter_res)
                fetch0 += firstShare(filter_dram, col_folds);
            else if (dataflow == Dataflow::InputStationary && filter_res)
                fetch0 += firstShare(filter_dram, row_folds);
            else
                fetch0 += firstShare(filter_dram, fold_count);

            // --- Layer timing (engine.cc runLayer) ---
            const std::int64_t dram_bytes =
                ifmap_dram + filter_dram + ofmap_bytes;
            const std::int64_t dram_cycles =
                (dram_bytes + dram_bpc - 1) / dram_bpc;
            const std::int64_t first_tile =
                (fetch0 + dram_bpc - 1) / dram_bpc;
            const std::int64_t total_cycles =
                std::max(compute_cycles, dram_cycles) + first_tile;

            acc_total += total_cycles;
            acc_compute += compute_cycles;
            acc_macs += m * n * k;
            acc_traffic.ifmapDramBytes += ifmap_dram;
            acc_traffic.filterDramBytes += filter_dram;
            acc_traffic.ofmapDramBytes += ofmap_bytes;
            acc_traffic.ifmapSramReads += ifmap_sram;
            acc_traffic.filterSramReads += filter_sram;
            acc_traffic.ofmapSramWrites += plan.mn[l];
            acc_traffic.psumSramReads += psum_sram;
            acc_traffic.psumSramWrites += psum_sram;
        }

        out.totalCycles[c] = acc_total;
        out.computeCycles[c] = acc_compute;
        out.stallCycles[c] = acc_total - acc_compute;
        out.totalMacs[c] = acc_macs;
        out.traffic[c] = acc_traffic;
    }
}

BatchRunView
evaluatePlanBatch(const CompiledModelPlan &plan,
                  std::span<const AcceleratorConfig> configs,
                  util::Arena &arena)
{
    BatchRunView view = allocateBatchRunView(configs.size(), arena);
    evaluatePlanBatch(plan, configs, view);
    return view;
}

} // namespace autopilot::systolic
