#include "systolic/tiling.h"

#include "util/logging.h"

namespace autopilot::systolic
{

using util::panicIf;

namespace
{

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** GEMM dimensions assigned to array rows/columns/stream per dataflow. */
struct DimAssignment
{
    std::int64_t rowDim = 0;
    std::int64_t colDim = 0;
    std::int64_t streamDim = 0;
};

DimAssignment
assignDims(const nn::GemmShape &gemm, Dataflow dataflow)
{
    switch (dataflow) {
      case Dataflow::WeightStationary:
        return {gemm.k, gemm.n, gemm.m};
      case Dataflow::OutputStationary:
        return {gemm.m, gemm.n, gemm.k};
      case Dataflow::InputStationary:
        return {gemm.k, gemm.m, gemm.n};
    }
    util::panic("assignDims: unknown dataflow");
}

} // namespace

std::int64_t
FoldSchedule::computeCycles() const
{
    std::int64_t total = 0;
    for (const Fold &fold : folds)
        total += fold.cycles;
    return total;
}

std::int64_t
FoldSchedule::totalMacs() const
{
    std::int64_t total = 0;
    for (const Fold &fold : folds)
        total += fold.macs;
    return total;
}

std::int64_t
foldCycles(std::int64_t rows_used, std::int64_t cols_used,
           std::int64_t stream_len)
{
    panicIf(rows_used <= 0 || cols_used <= 0 || stream_len <= 0,
            "foldCycles: non-positive fold dimension");
    // Preload/fill the stationary operand (rows_used), stream the moving
    // operand (stream_len), then drain the pipeline diagonal.
    return 2 * rows_used + cols_used + stream_len - 2;
}

FoldSchedule
scheduleGemm(const nn::GemmShape &gemm, const AcceleratorConfig &config)
{
    panicIf(gemm.m <= 0 || gemm.n <= 0 || gemm.k <= 0,
            "scheduleGemm: degenerate GEMM shape");
    config.validate();

    const DimAssignment dims = assignDims(gemm, config.dataflow);
    const std::int64_t sr = config.peRows;
    const std::int64_t sc = config.peCols;
    const std::int64_t bpe = config.bytesPerElement;

    FoldSchedule schedule;
    schedule.rowFolds = ceilDiv(dims.rowDim, sr);
    schedule.colFolds = ceilDiv(dims.colDim, sc);
    schedule.folds.reserve(
        static_cast<std::size_t>(schedule.rowFolds * schedule.colFolds));

    for (std::int64_t i = 0; i < schedule.rowFolds; ++i) {
        const std::int64_t rows_used =
            std::min(sr, dims.rowDim - i * sr);
        for (std::int64_t j = 0; j < schedule.colFolds; ++j) {
            const std::int64_t cols_used =
                std::min(sc, dims.colDim - j * sc);

            Fold fold;
            fold.rowsUsed = rows_used;
            fold.colsUsed = cols_used;
            fold.streamLen = dims.streamDim;
            fold.cycles = foldCycles(rows_used, cols_used, dims.streamDim);
            fold.macs = rows_used * cols_used * dims.streamDim;

            switch (config.dataflow) {
              case Dataflow::WeightStationary:
                fold.filterBytes = rows_used * cols_used * bpe;
                fold.ifmapBytes = rows_used * dims.streamDim * bpe;
                fold.ofmapBytes = cols_used * dims.streamDim * bpe;
                break;
              case Dataflow::OutputStationary:
                fold.ifmapBytes = rows_used * dims.streamDim * bpe;
                fold.filterBytes = cols_used * dims.streamDim * bpe;
                fold.ofmapBytes = rows_used * cols_used * bpe;
                break;
              case Dataflow::InputStationary:
                fold.ifmapBytes = rows_used * cols_used * bpe;
                fold.filterBytes = rows_used * dims.streamDim * bpe;
                fold.ofmapBytes = cols_used * dims.streamDim * bpe;
                break;
            }
            schedule.folds.push_back(fold);
        }
    }
    return schedule;
}

} // namespace autopilot::systolic
