#include "systolic/engine.h"

#include <algorithm>

#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::systolic
{

double
LayerResult::utilization(std::int64_t pe_count) const
{
    AUTOPILOT_DEBUG_ASSERT(totalCycles > 0 && pe_count > 0,
                           "LayerResult::utilization: degenerate "
                           "cycle count or PE count");
    if (totalCycles <= 0 || pe_count <= 0)
        return 0.0;
    return static_cast<double>(gemm.macs()) /
           (static_cast<double>(totalCycles) *
            static_cast<double>(pe_count));
}

double
RunResult::runtimeSeconds(double clock_ghz) const
{
    AUTOPILOT_DEBUG_ASSERT(clock_ghz > 0.0 && totalCycles > 0,
                           "RunResult::runtimeSeconds: degenerate "
                           "clock or cycle count");
    // NaN clocks fail the positivity test too, so the inf/NaN seconds
    // the old division produced collapse to the 0.0 sentinel.
    if (totalCycles <= 0 || !(clock_ghz > 0.0))
        return 0.0;
    return static_cast<double>(totalCycles) / (clock_ghz * 1e9);
}

double
RunResult::framesPerSecond(double clock_ghz) const
{
    const double seconds = runtimeSeconds(clock_ghz);
    return seconds > 0.0 ? 1.0 / seconds : 0.0;
}

double
RunResult::peUtilization(std::int64_t pe_count) const
{
    AUTOPILOT_DEBUG_ASSERT(totalCycles > 0 && pe_count > 0,
                           "RunResult::peUtilization: degenerate "
                           "cycle count or PE count");
    if (totalCycles <= 0 || pe_count <= 0)
        return 0.0;
    return static_cast<double>(totalMacs) /
           (static_cast<double>(totalCycles) *
            static_cast<double>(pe_count));
}

RunResult
Engine::run(const nn::Model &model) const
{
    util::fatalIf(model.empty(), "Engine::run: empty model");
    util::TraceSpan span("systolic.run", "systolic");
    RunResult result;
    for (const nn::Layer &layer : model.layers()) {
        LayerResult lr = runLayer(layer);
        result.totalCycles += lr.totalCycles;
        result.computeCycles += lr.computeCycles;
        result.stallCycles += lr.stallCycles;
        result.totalMacs += lr.gemm.macs();
        result.traffic.accumulate(lr.traffic);
        result.layers.push_back(std::move(lr));
    }
    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled()) {
        telemetry.metrics().counter("systolic.runs").add();
        telemetry.metrics()
            .counter("systolic.cycles")
            .add(static_cast<std::uint64_t>(result.totalCycles));
    }
    return result;
}

AnalyticalEngine::AnalyticalEngine(const AcceleratorConfig &config)
    : cfg(config)
{
    cfg.validate();
}

LayerResult
AnalyticalEngine::runLayer(const nn::Layer &layer) const
{
    const FoldSchedule schedule = scheduleGemm(layer.gemm(), cfg);

    LayerResult result;
    result.layerName = layer.name;
    result.gemm = layer.gemm();
    result.rowFolds = schedule.rowFolds;
    result.colFolds = schedule.colFolds;
    result.computeCycles = schedule.computeCycles();
    result.traffic = computeTraffic(layer, schedule, cfg);

    const std::int64_t dram_bytes = result.traffic.totalDramBytes();
    const std::int64_t dram_cycles =
        (dram_bytes + cfg.dramBytesPerCycle - 1) / cfg.dramBytesPerCycle;
    const std::int64_t first_tile =
        (foldFetchBytes(layer, schedule, cfg, 0) + cfg.dramBytesPerCycle -
         1) /
        cfg.dramBytesPerCycle;

    result.totalCycles =
        std::max(result.computeCycles, dram_cycles) + first_tile;
    result.stallCycles = result.totalCycles - result.computeCycles;
    return result;
}

} // namespace autopilot::systolic
