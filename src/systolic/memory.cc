#include "systolic/memory.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::systolic
{

using util::panicIf;

namespace
{

std::int64_t
halfCapacityBytes(int sram_kb)
{
    // Double buffering: half the scratchpad holds the working set.
    return static_cast<std::int64_t>(sram_kb) * 1024 / 2;
}

/**
 * Evenly split @p total bytes over @p share_count designated folds; fold
 * @p share_index gets the remainder-adjusted portion so shares sum exactly
 * to total.
 */
std::int64_t
evenShare(std::int64_t total, std::int64_t share_count,
          std::int64_t share_index)
{
    panicIf(share_count <= 0, "evenShare: no designated folds");
    const std::int64_t base = total / share_count;
    const std::int64_t extra = total % share_count;
    return base + (share_index < extra ? 1 : 0);
}

} // namespace

void
LayerTraffic::accumulate(const LayerTraffic &other)
{
    ifmapDramBytes += other.ifmapDramBytes;
    filterDramBytes += other.filterDramBytes;
    ofmapDramBytes += other.ofmapDramBytes;
    psumDramBytes += other.psumDramBytes;
    ifmapSramReads += other.ifmapSramReads;
    filterSramReads += other.filterSramReads;
    ofmapSramWrites += other.ofmapSramWrites;
    psumSramReads += other.psumSramReads;
    psumSramWrites += other.psumSramWrites;
}

Residency
analyzeResidency(const nn::Layer &layer, const AcceleratorConfig &config)
{
    const std::int64_t bpe = config.bytesPerElement;
    const nn::GemmShape gemm = layer.gemm();

    Residency residency;
    residency.ifmapResident =
        layer.ifmapElems() * bpe <= halfCapacityBytes(config.ifmapSramKb);
    residency.filterResident =
        layer.filterElems() * bpe <= halfCapacityBytes(config.filterSramKb);
    // Partial sums live in the ofmap scratchpad between row-fold passes.
    residency.psumOnChip =
        gemm.m * gemm.n * psumBytes <= halfCapacityBytes(config.ofmapSramKb);

    // When they do not fit, the stream dimension is chunked so each
    // chunk's psums (chunk x one column-fold's width) stay on chip.
    const std::int64_t stream_dim =
        config.dataflow == Dataflow::InputStationary ? gemm.n : gemm.m;
    const std::int64_t chunk_rows = std::max<std::int64_t>(
        1, halfCapacityBytes(config.ofmapSramKb) /
               (static_cast<std::int64_t>(config.peCols) * psumBytes));
    if (!residency.psumOnChip) {
        residency.streamChunks =
            (stream_dim + chunk_rows - 1) / chunk_rows;
    }
    return residency;
}

LayerTraffic
computeTraffic(const nn::Layer &layer, const FoldSchedule &schedule,
               const AcceleratorConfig &config)
{
    const std::int64_t bpe = config.bytesPerElement;
    const nn::GemmShape gemm = layer.gemm();
    const Residency residency = analyzeResidency(layer, config);
    const std::int64_t ifmap_bytes = layer.ifmapElems() * bpe;
    const std::int64_t filter_bytes = layer.filterElems() * bpe;
    const std::int64_t ofmap_bytes = layer.ofmapElems() * bpe;

    LayerTraffic traffic;

    const bool crosses_folds =
        config.dataflow != Dataflow::OutputStationary &&
        schedule.rowFolds > 1;
    const std::int64_t chunks =
        crosses_folds ? residency.streamChunks : 1;

    // --- DRAM traffic ---
    switch (config.dataflow) {
      case Dataflow::WeightStationary:
        traffic.ifmapDramBytes = residency.ifmapResident
            ? ifmap_bytes : ifmap_bytes * schedule.colFolds;
        // Weights are pinned once per stream chunk (once total when the
        // psums of the whole stream fit on chip), unless the filter set
        // is SRAM-resident.
        traffic.filterDramBytes = residency.filterResident
            ? filter_bytes : filter_bytes * chunks;
        break;
      case Dataflow::OutputStationary:
        traffic.ifmapDramBytes = residency.ifmapResident
            ? ifmap_bytes : ifmap_bytes * schedule.colFolds;
        traffic.filterDramBytes = residency.filterResident
            ? filter_bytes : filter_bytes * schedule.rowFolds;
        break;
      case Dataflow::InputStationary:
        // The im2col footprint is pinned once per stream chunk.
        traffic.ifmapDramBytes = residency.ifmapResident
            ? ifmap_bytes : gemm.m * gemm.k * bpe * chunks;
        traffic.filterDramBytes = residency.filterResident
            ? filter_bytes : filter_bytes * schedule.colFolds;
        break;
    }
    traffic.ofmapDramBytes = ofmap_bytes;
    // Cross-fold partial sums always accumulate on chip (see file
    // comment); no psum DRAM traffic.
    traffic.psumDramBytes = 0;

    // --- Scratchpad accesses (elements) ---
    switch (config.dataflow) {
      case Dataflow::WeightStationary:
        traffic.ifmapSramReads = gemm.m * gemm.k * schedule.colFolds;
        traffic.filterSramReads = gemm.k * gemm.n * chunks;
        break;
      case Dataflow::OutputStationary:
        traffic.ifmapSramReads = gemm.m * gemm.k * schedule.colFolds;
        traffic.filterSramReads = gemm.k * gemm.n * schedule.rowFolds;
        break;
      case Dataflow::InputStationary:
        traffic.ifmapSramReads = gemm.m * gemm.k * chunks;
        traffic.filterSramReads = gemm.k * gemm.n * schedule.colFolds;
        break;
    }
    traffic.ofmapSramWrites = gemm.m * gemm.n;
    if (crosses_folds) {
        traffic.psumSramReads = gemm.m * gemm.n * (schedule.rowFolds - 1);
        traffic.psumSramWrites = traffic.psumSramReads;
    }

    return traffic;
}

std::int64_t
foldFetchBytes(const nn::Layer &layer, const FoldSchedule &schedule,
               const AcceleratorConfig &config, std::int64_t fold_index)
{
    panicIf(fold_index < 0 || fold_index >= schedule.foldCount(),
            "foldFetchBytes: fold index out of range");
    const LayerTraffic traffic = computeTraffic(layer, schedule, config);
    const Residency residency = analyzeResidency(layer, config);
    const std::int64_t col_folds = schedule.colFolds;
    const std::int64_t row_folds = schedule.rowFolds;
    const std::int64_t i = fold_index / col_folds;
    const std::int64_t j = fold_index % col_folds;

    std::int64_t bytes = 0;

    // Ifmap: when resident, only the first column pass of each row fold
    // fetches; otherwise every fold fetches its share.
    {
        const bool designated =
            config.dataflow == Dataflow::InputStationary
                ? true
                : (!residency.ifmapResident || j == 0);
        std::int64_t share_count = 0;
        std::int64_t share_index = 0;
        if (config.dataflow == Dataflow::InputStationary ||
            !residency.ifmapResident) {
            share_count = schedule.foldCount();
            share_index = fold_index;
        } else {
            share_count = row_folds;
            share_index = i;
        }
        if (designated)
            bytes += evenShare(traffic.ifmapDramBytes, share_count,
                               share_index);
    }

    // Filter: WS fetches per fold by construction; OS/IS fetch per fold
    // unless resident, in which case only the first pass fetches.
    {
        bool designated = true;
        std::int64_t share_count = schedule.foldCount();
        std::int64_t share_index = fold_index;
        if (config.dataflow == Dataflow::OutputStationary &&
            residency.filterResident) {
            designated = (i == 0);
            share_count = col_folds;
            share_index = j;
        } else if (config.dataflow == Dataflow::InputStationary &&
                   residency.filterResident) {
            designated = (j == 0);
            share_count = row_folds;
            share_index = i;
        }
        if (designated)
            bytes += evenShare(traffic.filterDramBytes, share_count,
                               share_index);
    }

    // Spilled partial sums are read back at the start of every pass after
    // the first.
    if (traffic.psumDramBytes > 0 && i > 0) {
        const std::int64_t reads = traffic.psumDramBytes / 2;
        bytes += evenShare(reads, (row_folds - 1) * col_folds,
                           (i - 1) * col_folds + j);
    }

    return bytes;
}

std::int64_t
foldWritebackBytes(const nn::Layer &layer, const FoldSchedule &schedule,
                   const AcceleratorConfig &config, std::int64_t fold_index)
{
    panicIf(fold_index < 0 || fold_index >= schedule.foldCount(),
            "foldWritebackBytes: fold index out of range");
    const LayerTraffic traffic = computeTraffic(layer, schedule, config);
    const std::int64_t col_folds = schedule.colFolds;
    const std::int64_t row_folds = schedule.rowFolds;
    const std::int64_t i = fold_index / col_folds;
    const std::int64_t j = fold_index % col_folds;

    std::int64_t bytes = 0;

    // Final ofmap tiles leave the chip on the last row-fold pass (OS
    // finishes a tile per fold, but its row folds partition M, so the
    // last-pass rule is equivalent to "every fold for its own tile" only
    // for WS/IS; for OS all folds write).
    if (config.dataflow == Dataflow::OutputStationary) {
        bytes += evenShare(traffic.ofmapDramBytes, schedule.foldCount(),
                           fold_index);
    } else if (i == row_folds - 1) {
        bytes += evenShare(traffic.ofmapDramBytes, col_folds, j);
    }

    // Spilled partial sums are written out at the end of every pass except
    // the last.
    if (traffic.psumDramBytes > 0 && i < row_folds - 1) {
        const std::int64_t writes = traffic.psumDramBytes / 2;
        bytes += evenShare(writes, (row_folds - 1) * col_folds,
                           i * col_folds + j);
    }

    return bytes;
}

} // namespace autopilot::systolic
