/**
 * @file
 * Per-layer breakdown reporting for accelerator runs: where the cycles,
 * stalls and DRAM traffic go - the table an architect reads before
 * resizing anything.
 */

#ifndef AUTOPILOT_SYSTOLIC_RUN_REPORT_H
#define AUTOPILOT_SYSTOLIC_RUN_REPORT_H

#include <ostream>

#include "systolic/config.h"
#include "systolic/engine.h"

namespace autopilot::systolic
{

/**
 * Print the per-layer table of a run: cycles, share of total time,
 * stall fraction, DRAM megabytes and PE utilization, plus a totals row.
 */
void printRunBreakdown(const RunResult &run,
                       const AcceleratorConfig &config, std::ostream &os);

/** Name of the layer consuming the most cycles. */
std::string dominantLayer(const RunResult &run);

/** Fraction of total cycles spent stalled on DRAM. */
double stallFraction(const RunResult &run);

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_RUN_REPORT_H
