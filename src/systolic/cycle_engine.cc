#include "systolic/cycle_engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::systolic
{

CycleEngine::CycleEngine(const AcceleratorConfig &config) : cfg(config)
{
    cfg.validate();
}

CycleEngine::CycleEngine(const AcceleratorConfig &config,
                         const ContentionProfile &contention)
    : cfg(config), profile(contention)
{
    cfg.validate();
    profile.validate();
    bandwidthDerate = profile.enabled() ? profile.derate(cfg) : 1.0;
    if (bandwidthDerate <= 0.0) {
        std::ostringstream what;
        what << "CycleEngine: contention profile leaves no DRAM "
                "bandwidth to the NPU (background "
             << profile.totalBytesPerSec() << " B/s >= peak "
             << static_cast<double>(cfg.dramBytesPerCycle) *
                    cfg.clockGhz * 1e9
             << " B/s and no QoS floor) - raise npuFloorFraction or "
                "lower the background load";
        util::fatal(what.str());
    }
}

LayerResult
CycleEngine::runLayer(const nn::Layer &layer) const
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    util::ScopedTimer sim_timer(
        telemetry.enabled()
            ? &telemetry.metrics().histogram(
                  "systolic.cycle.layer_sim_s")
            : nullptr);

    const FoldSchedule schedule = scheduleGemm(layer.gemm(), cfg);
    const std::int64_t fold_count = schedule.foldCount();
    const std::int64_t bw = cfg.dramBytesPerCycle;
    const double derate = bandwidthDerate;

    // The underated path must stay the exact integer ceiling so an
    // empty contention profile is bit-identical to the contention-free
    // engine; the derated path pays ceil(bytes / (BW * derate)).
    auto to_cycles = [bw, derate](std::int64_t bytes) {
        if (derate >= 1.0)
            return (bytes + bw - 1) / bw;
        return static_cast<std::int64_t>(
            std::ceil(static_cast<double>(bytes) /
                      (static_cast<double>(bw) * derate)));
    };

    // Timeline state. The DRAM channel serializes fetches and writebacks;
    // writebacks are queued behind the fetch stream as they are produced.
    std::int64_t dram_free = 0;       // When the DRAM channel is next idle.
    std::int64_t compute_done = 0;    // Fold f-1 completion.
    std::int64_t compute_done_prev = 0; // Fold f-2 completion.
    std::int64_t compute_busy = 0;    // Accumulated array-busy cycles.
    std::int64_t last_writeback_done = 0;

    for (std::int64_t f = 0; f < fold_count; ++f) {
        const std::int64_t fetch_bytes =
            foldFetchBytes(layer, schedule, cfg, f);
        const std::int64_t wb_bytes =
            foldWritebackBytes(layer, schedule, cfg, f);

        // Prefetch for fold f may start once the channel is free and the
        // target buffer half is released (fold f-2 retired).
        const std::int64_t fetch_start =
            std::max(dram_free, compute_done_prev);
        const std::int64_t fetch_done = fetch_start + to_cycles(fetch_bytes);
        dram_free = fetch_done;

        const std::int64_t fold_cycles =
            schedule.folds[static_cast<std::size_t>(f)].cycles;
        const std::int64_t compute_start =
            std::max(compute_done, fetch_done);
        compute_done_prev = compute_done;
        compute_done = compute_start + fold_cycles;
        compute_busy += fold_cycles;

        if (wb_bytes > 0) {
            const std::int64_t wb_start = std::max(dram_free, compute_done);
            last_writeback_done = wb_start + to_cycles(wb_bytes);
            dram_free = last_writeback_done;
        }
    }

    LayerResult result;
    result.layerName = layer.name;
    result.gemm = layer.gemm();
    result.rowFolds = schedule.rowFolds;
    result.colFolds = schedule.colFolds;
    result.computeCycles = compute_busy;
    result.traffic = computeTraffic(layer, schedule, cfg);
    result.totalCycles = std::max(compute_done, last_writeback_done);
    result.stallCycles = result.totalCycles - result.computeCycles;

    if (telemetry.enabled()) {
        telemetry.metrics().counter("systolic.cycle.layers").add();
        telemetry.metrics()
            .counter("systolic.cycle.cycles")
            .add(static_cast<std::uint64_t>(result.totalCycles));
    }
    return result;
}

} // namespace autopilot::systolic
