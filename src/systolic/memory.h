/**
 * @file
 * Scratchpad residency and DRAM traffic model.
 *
 * The three scratchpads (ifmap / filter / ofmap) are double-buffered: half
 * of each capacity holds the working set while the other half prefetches.
 * A tensor that fits in its half-capacity is fetched from DRAM exactly
 * once; otherwise it is re-fetched every time a fold pass needs it again,
 * with the refetch factor determined by the dataflow's reuse pattern.
 *
 * Partial sums that must cross row folds are 32-bit and always accumulate
 * on chip: when the full cross-fold working set does not fit the ofmap
 * scratchpad, the mapper chunks the streaming dimension so each chunk's
 * psums fit, re-streaming the stationary operand once per chunk (the
 * standard WS loop order). Psum traffic therefore never reaches DRAM;
 * the cost appears as extra stationary-operand fetches instead.
 *
 * This is the same fidelity level as SCALE-Sim's memory estimates: tensor
 * granularity residency with fold-derived reuse multipliers.
 */

#ifndef AUTOPILOT_SYSTOLIC_MEMORY_H
#define AUTOPILOT_SYSTOLIC_MEMORY_H

#include <cstdint>

#include "nn/layer.h"
#include "systolic/config.h"
#include "systolic/tiling.h"

namespace autopilot::systolic
{

/** Bytes used per partial-sum word (32-bit accumulators). */
constexpr std::int64_t psumBytes = 4;

/** Per-layer memory-system activity counts. */
struct LayerTraffic
{
    // DRAM traffic in bytes.
    std::int64_t ifmapDramBytes = 0;
    std::int64_t filterDramBytes = 0;
    std::int64_t ofmapDramBytes = 0;
    std::int64_t psumDramBytes = 0;

    // Scratchpad accesses in elements.
    std::int64_t ifmapSramReads = 0;
    std::int64_t filterSramReads = 0;
    std::int64_t ofmapSramWrites = 0;
    std::int64_t psumSramReads = 0;
    std::int64_t psumSramWrites = 0;

    /** Total DRAM bytes moved for the layer. */
    std::int64_t totalDramBytes() const
    {
        return ifmapDramBytes + filterDramBytes + ofmapDramBytes +
               psumDramBytes;
    }

    /** Total scratchpad accesses (reads + writes), in elements. */
    std::int64_t totalSramAccesses() const
    {
        return ifmapSramReads + filterSramReads + ofmapSramWrites +
               psumSramReads + psumSramWrites;
    }

    /** Accumulate another layer's counts into this one. */
    void accumulate(const LayerTraffic &other);
};

/** Residency of the three tensors in their scratchpads. */
struct Residency
{
    bool ifmapResident = false;  ///< Whole ifmap fits half its scratchpad.
    bool filterResident = false; ///< Whole filter set fits half capacity.
    /// True when all cross-fold partial sums fit at once (no stream
    /// chunking needed).
    bool psumOnChip = false;
    /// Number of stream-dimension chunks needed to keep psums on chip
    /// (1 when psumOnChip or when there is a single row fold).
    std::int64_t streamChunks = 1;
};

/** Determine tensor residency for a layer on a given configuration. */
Residency analyzeResidency(const nn::Layer &layer,
                           const AcceleratorConfig &config);

/**
 * Compute DRAM traffic and scratchpad access counts for one layer.
 *
 * @param layer    The layer (provides raw tensor footprints).
 * @param schedule Fold schedule from scheduleGemm().
 * @param config   Accelerator configuration.
 */
LayerTraffic computeTraffic(const nn::Layer &layer,
                            const FoldSchedule &schedule,
                            const AcceleratorConfig &config);

/**
 * DRAM bytes that fold @p fold_index must fetch before compute can start,
 * consistent with computeTraffic()'s totals: tensors that are resident are
 * only fetched during the first pass that touches them.
 *
 * Used by the cycle-stepped engine to build the prefetch timeline.
 *
 * @param layer      The layer being executed.
 * @param schedule   Fold schedule (row-major fold order).
 * @param config     Accelerator configuration.
 * @param fold_index Index into schedule.folds.
 */
std::int64_t foldFetchBytes(const nn::Layer &layer,
                            const FoldSchedule &schedule,
                            const AcceleratorConfig &config,
                            std::int64_t fold_index);

/**
 * DRAM bytes written back by fold @p fold_index (final ofmap tiles plus any
 * partial-sum spill), consistent with computeTraffic()'s totals.
 */
std::int64_t foldWritebackBytes(const nn::Layer &layer,
                                const FoldSchedule &schedule,
                                const AcceleratorConfig &config,
                                std::int64_t fold_index);

} // namespace autopilot::systolic

#endif // AUTOPILOT_SYSTOLIC_MEMORY_H
