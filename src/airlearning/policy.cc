#include "airlearning/policy.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace autopilot::airlearning
{

namespace
{

/** Ideal template capacity per scenario (Section V-A). */
struct IdealCapacity
{
    double layers = 5.0;
    double filters = 32.0;
    double ceiling = 0.92; ///< Quality of the ideal network.
};

IdealCapacity
idealCapacity(ObstacleDensity density)
{
    switch (density) {
      case ObstacleDensity::Low:    return {5.0, 32.0, 0.94};
      case ObstacleDensity::Medium: return {4.0, 48.0, 0.88};
      case ObstacleDensity::Dense:  return {7.0, 48.0, 0.82};
    }
    util::panic("idealCapacity: unknown density");
}

} // namespace

PolicyCapability
PolicyCapability::fromQuality(double quality)
{
    util::fatalIf(quality < 0.0 || quality > 1.0,
                  "PolicyCapability::fromQuality: quality outside [0, 1]");
    PolicyCapability capability;
    capability.quality = quality;
    capability.perceptionRangeM = 0.9 + 2.4 * quality;
    capability.detectionProb = 0.15 + 0.65 * quality;
    capability.headingNoiseRad = 0.40 * (1.0 - quality) + 0.03;
    return capability;
}

double
policyQuality(const nn::PolicyHyperParams &params, ObstacleDensity density)
{
    const IdealCapacity ideal = idealCapacity(density);
    const double dl = params.numConvLayers - ideal.layers;
    // Asymmetric depth penalty: undersized networks underfit quickly,
    // oversized ones degrade more slowly (harder training on the same
    // one-million-step budget).
    const double sigma_depth = dl < 0.0 ? 1.6 : 3.2;
    const double depth_term =
        std::exp(-(dl * dl) / (2.0 * sigma_depth * sigma_depth));
    const double df = params.numFilters - ideal.filters;
    const double sigma_filters = 20.0;
    const double filter_term =
        std::exp(-(df * df) / (2.0 * sigma_filters * sigma_filters));

    const double floor = 0.30;
    const double quality =
        floor + (ideal.ceiling - floor) * depth_term * filter_term;
    return std::clamp(quality, 0.0, 1.0);
}

double
trainedPolicyQuality(const nn::PolicyHyperParams &params,
                     ObstacleDensity density, std::uint64_t training_seed)
{
    util::Rng rng(training_seed ^ 0xA17C0F1E5EEDull);
    const double jitter = rng.normal(0.0, 0.015);
    return std::clamp(policyQuality(params, density) + jitter, 0.0, 1.0);
}

nn::PolicyHyperParams
bestHyperParams(ObstacleDensity density)
{
    const nn::PolicySpace space;
    nn::PolicyHyperParams best;
    double best_quality = -1.0;
    for (const nn::PolicyHyperParams &candidate : space.enumerate()) {
        const double quality = policyQuality(candidate, density);
        if (quality > best_quality) {
            best_quality = quality;
            best = candidate;
        }
    }
    return best;
}

} // namespace autopilot::airlearning
