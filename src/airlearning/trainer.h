/**
 * @file
 * Phase 1 trainer: produce validated policies for a task specification.
 *
 * For each hyperparameter combination the trainer "trains" a policy
 * (capability surrogate with per-run variance), validates it over
 * domain-randomized rollouts, and records the measured success rate in
 * the Air Learning database. This mirrors the paper's Phase 1: many Air
 * Learning training instances launched from the template, each validated
 * before entering the database.
 */

#ifndef AUTOPILOT_AIRLEARNING_TRAINER_H
#define AUTOPILOT_AIRLEARNING_TRAINER_H

#include <cstdint>

#include "airlearning/database.h"
#include "airlearning/rollout.h"
#include "util/thread_pool.h"

namespace autopilot::airlearning
{

/** Trainer configuration. */
struct TrainerConfig
{
    int validationEpisodes = 200; ///< Rollouts per policy validation.
    /// Independent training runs per hyperparameter combination; the
    /// best-validating run enters the database (RL training variance is
    /// real, and production pipelines train several seeds).
    int trainingSeeds = 1;
    std::uint64_t seed = 0xA1121;  ///< Master seed for the whole phase.
    RolloutConfig rollout;        ///< Episode physics.
};

/** Phase 1 driver. */
class Trainer
{
  public:
    /** @param config Trainer configuration. */
    explicit Trainer(const TrainerConfig &config = TrainerConfig());

    /**
     * Train and validate one policy; the record is not stored.
     *
     * @param params  Template hyperparameters.
     * @param density Deployment scenario.
     */
    PolicyRecord trainOne(const nn::PolicyHyperParams &params,
                          ObstacleDensity density) const;

    /**
     * Train @p seeds independent runs of one policy and return the
     * best-validating record.
     */
    PolicyRecord trainBestOf(const nn::PolicyHyperParams &params,
                             ObstacleDensity density, int seeds) const;

    /**
     * Train and validate every combination in @p space for a scenario,
     * inserting all records into @p database.
     *
     * Training runs fan out across @p pool when one is attached (each
     * combination trains independently from its own derived seed);
     * records are committed to the database in enumeration order either
     * way, so the database contents are identical to a serial run.
     *
     * @param pool Optional worker pool; null trains serially.
     * @return Number of policies added.
     */
    int trainAll(const nn::PolicySpace &space, ObstacleDensity density,
                 PolicyDatabase &database,
                 util::ThreadPool *pool = nullptr) const;

    const TrainerConfig &config() const { return cfg; }

  private:
    TrainerConfig cfg;
};

} // namespace autopilot::airlearning

#endif // AUTOPILOT_AIRLEARNING_TRAINER_H
