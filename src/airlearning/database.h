/**
 * @file
 * The Air Learning database (Fig. 1, Phase 1 output).
 *
 * Each record stores an algorithm identifier, the hyperparameters used for
 * training and the validated task success rate - exactly the schema
 * Section III-B describes. Phase 2's Bayesian optimization reads success
 * rates from here instead of re-training.
 */

#ifndef AUTOPILOT_AIRLEARNING_DATABASE_H
#define AUTOPILOT_AIRLEARNING_DATABASE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "airlearning/environment.h"
#include "nn/e2e_template.h"

namespace autopilot::airlearning
{

/** One validated policy record. */
struct PolicyRecord
{
    std::string policyId;
    nn::PolicyHyperParams params;
    ObstacleDensity density = ObstacleDensity::Low;
    double successRate = 0.0;
    std::int64_t modelParams = 0; ///< Parameter count of the network.
    std::int64_t modelMacs = 0;   ///< MACs per inference.
    std::int64_t trainingSteps = 0; ///< Steps actually trained.
    bool converged = true; ///< Converged within the step budget.
};

/** In-memory policy database with per-scenario lookup. */
class PolicyDatabase
{
  public:
    /** Insert or overwrite the record for (params, density). */
    void upsert(const PolicyRecord &record);

    /** Look up a record by hyperparameters and scenario. */
    std::optional<PolicyRecord> find(const nn::PolicyHyperParams &params,
                                     ObstacleDensity density) const;

    /** All records for one scenario. */
    std::vector<PolicyRecord> forDensity(ObstacleDensity density) const;

    /** Records for a scenario meeting a minimum success rate. */
    std::vector<PolicyRecord>
    meetingSuccessRate(ObstacleDensity density, double min_rate) const;

    /** Highest-success-rate record for a scenario, if any. */
    std::optional<PolicyRecord> best(ObstacleDensity density) const;

    std::size_t size() const { return records.size(); }
    const std::vector<PolicyRecord> &all() const { return records; }

  private:
    std::vector<PolicyRecord> records;
};

} // namespace autopilot::airlearning

#endif // AUTOPILOT_AIRLEARNING_DATABASE_H
