#include "airlearning/rollout.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace autopilot::airlearning
{

namespace
{

double
distance(double ax, double ay, double bx, double by)
{
    const double dx = ax - bx;
    const double dy = ay - by;
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace

EpisodeResult
runEpisode(const Environment &env, const PolicyCapability &capability,
           const RolloutConfig &config, util::Rng &rng)
{
    util::fatalIf(config.speedMps <= 0.0 || config.dtSeconds <= 0.0,
                  "runEpisode: speed and dt must be positive");
    util::fatalIf(config.maxSteps <= 0, "runEpisode: maxSteps must be > 0");

    double x = env.start.x;
    double y = env.start.y;
    double current_heading =
        std::atan2(env.goal.y - y, env.goal.x - x);
    // Detection memory: once seen, an obstacle stays tracked.
    std::vector<bool> detected(env.obstacles.size(), false);

    EpisodeResult result;
    result.minClearanceM = std::numeric_limits<double>::max();

    for (int step = 0; step < config.maxSteps; ++step) {
        result.steps = step + 1;

        // --- Sense ---
        for (std::size_t i = 0; i < env.obstacles.size(); ++i) {
            if (detected[i])
                continue;
            const Obstacle &obstacle = env.obstacles[i];
            const double surface =
                distance(x, y, obstacle.x, obstacle.y) - obstacle.radius;
            const double effective_range =
                obstacle.camouflaged
                    ? std::min(0.6, capability.perceptionRangeM)
                    : capability.perceptionRangeM;
            if (surface <= effective_range &&
                rng.bernoulli(capability.detectionProb)) {
                detected[i] = true;
            }
        }

        // --- Steer: goal attraction + repulsion from tracked obstacles ---
        double hx = env.goal.x - x;
        double hy = env.goal.y - y;
        const double goal_dist = std::sqrt(hx * hx + hy * hy);
        if (goal_dist > 1e-9) {
            hx /= goal_dist;
            hy /= goal_dist;
        }
        const double goal_ux = hx;
        const double goal_uy = hy;
        for (std::size_t i = 0; i < env.obstacles.size(); ++i) {
            if (!detected[i])
                continue;
            const Obstacle &obstacle = env.obstacles[i];
            const double center_dist =
                distance(x, y, obstacle.x, obstacle.y);
            const double surface = center_dist - obstacle.radius;
            if (surface > config.avoidMarginM)
                continue;
            // Only react to obstacles ahead of the direction of travel,
            // unless dangerously close; repulsion from obstacles already
            // passed would cancel the goal attraction.
            if (center_dist > 1e-9) {
                const double toward_x = (obstacle.x - x) / center_dist;
                const double toward_y = (obstacle.y - y) / center_dist;
                const bool ahead =
                    toward_x * goal_ux + toward_y * goal_uy > -0.1;
                const bool panic = surface < 0.5 * config.avoidMarginM;
                if (!ahead && !panic)
                    continue;
                const double closeness =
                    (config.avoidMarginM - surface) / config.avoidMarginM;
                // Quadratic radial growth: gentle far out, dominant when
                // about to graze the surface.
                const double strength =
                    config.repulsionGain * closeness * closeness;
                // Slide around the obstacle: mostly tangential steering
                // (choosing the tangent that keeps goal progress) plus a
                // radial push-out. Pure radial repulsion creates local
                // minima between obstacle pairs.
                double tan_x = -toward_y;
                double tan_y = toward_x;
                if (tan_x * goal_ux + tan_y * goal_uy < 0.0) {
                    tan_x = -tan_x;
                    tan_y = -tan_y;
                }
                hx += strength * (1.0 * tan_x - 1.4 * toward_x);
                hy += strength * (1.0 * tan_y - 1.4 * toward_y);
            }
        }

        // --- Policy noise and vehicle dynamics ---
        double desired = std::atan2(hy, hx);
        desired += rng.normal(0.0, capability.headingNoiseRad);
        double delta = desired - current_heading;
        while (delta > M_PI)
            delta -= 2.0 * M_PI;
        while (delta < -M_PI)
            delta += 2.0 * M_PI;
        delta = std::clamp(delta, -config.maxTurnRadPerStep,
                           config.maxTurnRadPerStep);
        current_heading += delta;

        // --- Move ---
        const double step_len = config.speedMps * config.dtSeconds;
        x += step_len * std::cos(current_heading);
        y += step_len * std::sin(current_heading);
        if (config.windSigmaM > 0.0) {
            x += rng.normal(0.0, config.windSigmaM);
            y += rng.normal(0.0, config.windSigmaM);
        }
        x = std::clamp(x, 0.0, env.arenaSize);
        y = std::clamp(y, 0.0, env.arenaSize);
        result.pathLengthM += step_len;

        // --- Terminate ---
        const double clearance = env.obstacles.empty()
                                     ? env.arenaSize
                                     : env.clearance(x, y);
        result.minClearanceM = std::min(result.minClearanceM, clearance);
        if (clearance < config.robotRadiusM) {
            result.outcome = EpisodeOutcome::Collision;
            return result;
        }
        if (distance(x, y, env.goal.x, env.goal.y) <=
            config.goalToleranceM) {
            result.outcome = EpisodeOutcome::Success;
            return result;
        }
    }

    result.outcome = EpisodeOutcome::Timeout;
    return result;
}

EvaluationResult
evaluatePolicy(const EnvironmentConfig &env_config,
               const PolicyCapability &capability, int episodes,
               std::uint64_t seed, const RolloutConfig &config)
{
    util::fatalIf(episodes <= 0, "evaluatePolicy: episodes must be > 0");

    const EnvironmentGenerator generator(env_config);
    util::Rng master(seed);

    EvaluationResult aggregate;
    aggregate.episodes = episodes;
    double path_sum = 0.0;
    for (int episode = 0; episode < episodes; ++episode) {
        util::Rng env_rng =
            master.fork(static_cast<std::uint64_t>(episode) * 2);
        util::Rng episode_rng =
            master.fork(static_cast<std::uint64_t>(episode) * 2 + 1);
        const Environment env = generator.generate(env_rng);
        const EpisodeResult result =
            runEpisode(env, capability, config, episode_rng);
        switch (result.outcome) {
          case EpisodeOutcome::Success:
            ++aggregate.successes;
            break;
          case EpisodeOutcome::Collision:
            ++aggregate.collisions;
            break;
          case EpisodeOutcome::Timeout:
            ++aggregate.timeouts;
            break;
        }
        path_sum += result.pathLengthM;
    }
    aggregate.meanPathLengthM = path_sum / episodes;
    return aggregate;
}

} // namespace autopilot::airlearning
