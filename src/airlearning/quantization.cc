#include "airlearning/quantization.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/logging.h"

namespace autopilot::airlearning
{

double
quantizationPenalty(const nn::PolicyHyperParams &params)
{
    util::fatalIf(params.numConvLayers <= 0 || params.numFilters <= 0,
                  "quantizationPenalty: hyperparameters must be positive");
    // Penalty shrinks with network capacity: a 2-layer/32-filter policy
    // loses ~6% success to int8 rounding, the 10-layer/64-filter one
    // ~2%. The 1/sqrt(capacity) shape mirrors how quantization error
    // averages out over more accumulations.
    const double capacity = static_cast<double>(params.numConvLayers) *
                            static_cast<double>(params.numFilters);
    return 0.5 / std::sqrt(capacity);
}

double
quantizedSuccessRate(double baseSuccessRate,
                     const nn::PolicyHyperParams &params,
                     int bytesPerElement)
{
    // The database record IS the int8 number: return it untouched so
    // default-precision runs stay bit-identical.
    if (bytesPerElement == 1)
        return baseSuccessRate;

    double recovered = 0.0;
    switch (bytesPerElement) {
    case 2:
        recovered = 0.75;
        break;
    case 4:
        recovered = 1.0;
        break;
    default:
        util::fatal("quantizedSuccessRate: unsupported operand width " +
                    std::to_string(bytesPerElement) +
                    " bytes (want 1, 2 or 4)");
    }
    const double adjusted =
        baseSuccessRate + recovered * quantizationPenalty(params);
    return std::min(1.0, adjusted);
}

} // namespace autopilot::airlearning
