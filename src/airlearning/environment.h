/**
 * @file
 * Domain-randomized environment generator (the Air Learning environment
 * generator [1], [43] substitute).
 *
 * Three deployment complexities follow Section V-A: the low-obstacle
 * scenario places four randomly-positioned obstacles with a random goal;
 * the medium scenario has four fixed obstacles plus up to three random
 * ones; the dense scenario has four fixed obstacles plus up to five random
 * ones (with larger obstacle radii). Every episode re-randomizes obstacle
 * positions, sizes and the goal, which is the domain-randomization [83]
 * mechanism that forces trained policies to generalize.
 */

#ifndef AUTOPILOT_AIRLEARNING_ENVIRONMENT_H
#define AUTOPILOT_AIRLEARNING_ENVIRONMENT_H

#include <string>
#include <vector>

#include "util/rng.h"

namespace autopilot::airlearning
{

/** Deployment-scenario complexity (Section V-A). */
enum class ObstacleDensity
{
    Low,
    Medium,
    Dense,
};

/** Human-readable scenario name. */
std::string densityName(ObstacleDensity density);

/** All three scenarios in {Low, Medium, Dense} order. */
std::vector<ObstacleDensity> allDensities();

/** A circular obstacle in the 2-D arena. */
struct Obstacle
{
    double x = 0.0;
    double y = 0.0;
    double radius = 1.0;
    /// Visually hard cases (glare, texture-matched surfaces): detectable
    /// only at very short range regardless of policy quality. These set
    /// the task's achievable success ceiling, mirroring the sub-100%
    /// ceilings reported for trained agents in the robotics literature.
    bool camouflaged = false;
};

/** 2-D position. */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;
};

/** One generated episode environment. */
struct Environment
{
    double arenaSize = 30.0; ///< Square arena side, meters.
    std::vector<Obstacle> obstacles;
    Vec2 start;
    Vec2 goal;

    /** Distance from a point to the nearest obstacle surface (can be
     * negative when inside an obstacle). */
    double clearance(double x, double y) const;
};

/** Generator configuration for one scenario. */
struct EnvironmentConfig
{
    ObstacleDensity density = ObstacleDensity::Low;
    double arenaSize = 30.0;
    int fixedObstacles = 0;     ///< Grid-placed obstacles.
    int maxRandomObstacles = 4; ///< Up to this many random obstacles.
    double minRadius = 0.6;
    double maxRadius = 1.0;
    double goalDistance = 22.0; ///< Start-to-goal separation.
    double camouflageProb = 0.06; ///< Chance an obstacle is hard to see.

    /** Scenario presets per Section V-A. */
    static EnvironmentConfig forDensity(ObstacleDensity density);
};

/**
 * Environment generator with domain randomization.
 *
 * Deterministic: the same seed sequence yields the same episodes.
 */
class EnvironmentGenerator
{
  public:
    /** @param config Scenario configuration. */
    explicit EnvironmentGenerator(const EnvironmentConfig &config);

    /**
     * Generate one randomized episode.
     *
     * Guarantees the start and goal positions are outside all obstacles.
     *
     * @param rng Random stream for this episode.
     */
    Environment generate(util::Rng &rng) const;

    const EnvironmentConfig &config() const { return cfg; }

  private:
    EnvironmentConfig cfg;
};

} // namespace autopilot::airlearning

#endif // AUTOPILOT_AIRLEARNING_ENVIRONMENT_H
