/**
 * @file
 * Episode rollout simulator: the "evaluate and validate" half of Phase 1.
 *
 * A point-mass UAV flies from start to goal in a generated environment.
 * Each control step it senses nearby obstacles (range and reliability set
 * by the policy capability), steers with a goal-attraction /
 * obstacle-repulsion law perturbed by policy-dependent heading noise, and
 * fails on collision or timeout. Success rates are the fraction of
 * successful episodes over many domain-randomized environments - the same
 * validation protocol Air Learning applies to its trained agents.
 */

#ifndef AUTOPILOT_AIRLEARNING_ROLLOUT_H
#define AUTOPILOT_AIRLEARNING_ROLLOUT_H

#include <cstdint>

#include "airlearning/environment.h"
#include "airlearning/policy.h"
#include "util/rng.h"

namespace autopilot::airlearning
{

/** Rollout physics and termination parameters. */
struct RolloutConfig
{
    double speedMps = 3.0;      ///< Commanded forward speed.
    double dtSeconds = 0.1;     ///< Control period.
    int maxSteps = 900;         ///< Timeout budget.
    double robotRadiusM = 0.3;  ///< Collision radius of the vehicle.
    double goalToleranceM = 1.0;///< Arrival threshold.
    double avoidMarginM = 1.3;  ///< Repulsion zone beyond the surface.
    double repulsionGain = 2.2; ///< Strength of obstacle repulsion.
    /// Maximum heading change per control step (vehicle dynamics): at
    /// cruise speed a quarter turn takes several steps, so obstacles
    /// detected late cannot always be dodged.
    double maxTurnRadPerStep = 0.35;
    /// Wind-gust position disturbance per step (1-sigma, meters); 0
    /// disables. Used by robustness/failure-injection studies.
    double windSigmaM = 0.0;
};

/** Outcome of one episode. */
enum class EpisodeOutcome
{
    Success,
    Collision,
    Timeout,
};

/** Telemetry of one episode. */
struct EpisodeResult
{
    EpisodeOutcome outcome = EpisodeOutcome::Timeout;
    int steps = 0;
    double pathLengthM = 0.0;
    double minClearanceM = 0.0;
};

/**
 * Run one episode.
 *
 * @param env        The generated environment.
 * @param capability Trained-policy behavioural parameters.
 * @param config     Rollout physics parameters.
 * @param rng        Episode random stream (sensing + noise).
 */
EpisodeResult runEpisode(const Environment &env,
                         const PolicyCapability &capability,
                         const RolloutConfig &config, util::Rng &rng);

/** Aggregate of many episodes. */
struct EvaluationResult
{
    int episodes = 0;
    int successes = 0;
    int collisions = 0;
    int timeouts = 0;
    double meanPathLengthM = 0.0;

    /** Task success rate in [0, 1]. */
    double successRate() const
    {
        return episodes > 0
                   ? static_cast<double>(successes) / episodes
                   : 0.0;
    }
};

/**
 * Evaluate a policy capability over many randomized episodes.
 *
 * @param env_config Scenario configuration (regenerated per episode).
 * @param capability Trained-policy behavioural parameters.
 * @param episodes   Number of Monte-Carlo episodes.
 * @param seed       Master seed; episodes fork deterministic streams.
 * @param config     Rollout physics parameters.
 */
EvaluationResult evaluatePolicy(const EnvironmentConfig &env_config,
                                const PolicyCapability &capability,
                                int episodes, std::uint64_t seed,
                                const RolloutConfig &config =
                                    RolloutConfig());

} // namespace autopilot::airlearning

#endif // AUTOPILOT_AIRLEARNING_ROLLOUT_H
