#include "airlearning/trainer.h"

#include "airlearning/training_curve.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::airlearning
{

Trainer::Trainer(const TrainerConfig &config) : cfg(config)
{
    util::fatalIf(cfg.validationEpisodes <= 0,
                  "Trainer: validationEpisodes must be positive");
    util::fatalIf(cfg.trainingSeeds <= 0,
                  "Trainer: trainingSeeds must be positive");
}

namespace
{

/** One training run with an explicit seed, validated. */
PolicyRecord
trainWithSeed(const TrainerConfig &cfg,
              const nn::PolicyHyperParams &params,
              ObstacleDensity density, std::uint64_t training_seed)
{
    const double quality =
        trainedPolicyQuality(params, density, training_seed);
    const PolicyCapability capability =
        PolicyCapability::fromQuality(quality);

    const EnvironmentConfig env_config =
        EnvironmentConfig::forDensity(density);
    const EvaluationResult evaluation =
        evaluatePolicy(env_config, capability, cfg.validationEpisodes,
                       training_seed ^ 0xE7A1u, cfg.rollout);

    const nn::Model model = nn::buildE2EModel(params);

    PolicyRecord record;
    record.policyId = nn::policyName(params) + "_" + densityName(density);
    record.params = params;
    record.density = density;
    record.successRate = evaluation.successRate();
    record.modelParams = model.totalParams();
    record.modelMacs = model.totalMacs();

    // "One million steps or until convergence" (Section IV).
    const LearningCurve curve(quality, record.modelParams);
    record.trainingSteps =
        static_cast<std::int64_t>(curve.trainingSteps());
    record.converged = curve.convergesWithinBudget();
    return record;
}

/** Reproducible per-policy base seed. */
std::uint64_t
policySeed(const TrainerConfig &cfg, const nn::PolicyHyperParams &params,
           ObstacleDensity density)
{
    return cfg.seed ^
           (static_cast<std::uint64_t>(params.numConvLayers) << 32) ^
           (static_cast<std::uint64_t>(params.numFilters) << 16) ^
           static_cast<std::uint64_t>(density);
}

} // namespace

PolicyRecord
Trainer::trainOne(const nn::PolicyHyperParams &params,
                  ObstacleDensity density) const
{
    return trainWithSeed(cfg, params, density,
                         policySeed(cfg, params, density));
}

PolicyRecord
Trainer::trainBestOf(const nn::PolicyHyperParams &params,
                     ObstacleDensity density, int seeds) const
{
    util::fatalIf(seeds <= 0, "trainBestOf: seeds must be positive");
    const std::uint64_t base = policySeed(cfg, params, density);
    PolicyRecord best;
    for (int run = 0; run < seeds; ++run) {
        const PolicyRecord record = trainWithSeed(
            cfg, params, density,
            base ^ (static_cast<std::uint64_t>(run) *
                    0x9E3779B97F4A7C15ull));
        if (run == 0 || record.successRate > best.successRate)
            best = record;
    }
    return best;
}

int
Trainer::trainAll(const nn::PolicySpace &space, ObstacleDensity density,
                  PolicyDatabase &database, util::ThreadPool *pool) const
{
    const std::vector<nn::PolicyHyperParams> combinations =
        space.enumerate();
    // Each combination trains from its own derived seed, so runs are
    // independent; records land in per-index slots and are committed in
    // enumeration order, keeping the database identical to a serial run.
    std::vector<PolicyRecord> records(combinations.size());
    util::parallel_for(pool, combinations.size(), [&](std::size_t i) {
        util::TraceSpan span("phase1.train_policy", "phase1");
        records[i] =
            trainBestOf(combinations[i], density, cfg.trainingSeeds);
    });
    for (PolicyRecord &record : records)
        database.upsert(std::move(record));
    return static_cast<int>(records.size());
}

} // namespace autopilot::airlearning
