/**
 * @file
 * Precision-aware success-rate surrogate for Phase 1 policies.
 *
 * The Air Learning database stores success rates validated with INT8
 * quantized inference (the paper's deployment precision), so the record
 * already includes the quantization penalty. When the Phase 2 search
 * widens the precision axis, running the same policy at fp16/fp32
 * recovers part or all of that penalty: quantization error is an
 * accuracy loss relative to full precision, and the loss is larger for
 * small networks (fewer layers/filters mean less redundancy to absorb
 * rounding noise - the AutoSoC observation that precision must be
 * co-designed with the accelerator).
 */

#ifndef AUTOPILOT_AIRLEARNING_QUANTIZATION_H
#define AUTOPILOT_AIRLEARNING_QUANTIZATION_H

#include "nn/e2e_template.h"

namespace autopilot::airlearning
{

/**
 * INT8 quantization penalty of a policy: the success-rate gap between
 * the stored INT8 validation number and a full-precision deployment of
 * the same weights. Deterministic in the hyperparameters; larger for
 * smaller networks.
 */
double quantizationPenalty(const nn::PolicyHyperParams &params);

/**
 * Success rate of @p params deployed at @p bytesPerElement, given the
 * database's INT8-validated @p baseSuccessRate.
 *
 * bytesPerElement == 1 returns @p baseSuccessRate verbatim (bit-for-bit:
 * the record already is the int8 number). fp16 (2) recovers three
 * quarters of the quantization penalty, fp32 (4) recovers all of it;
 * the result is clamped to 1. Fatal on any other width.
 */
double quantizedSuccessRate(double baseSuccessRate,
                            const nn::PolicyHyperParams &params,
                            int bytesPerElement);

} // namespace autopilot::airlearning

#endif // AUTOPILOT_AIRLEARNING_QUANTIZATION_H
