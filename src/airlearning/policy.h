/**
 * @file
 * Trained-policy capability model (the training surrogate).
 *
 * The real Air Learning pipeline spends GPU-days running DDQN/PPO to turn
 * (template hyperparameters, task) into network weights; downstream phases
 * only ever consume the resulting *behaviour*. We therefore model a
 * trained policy as a small set of behavioural parameters (perception
 * range, detection reliability, steering noise) derived from a scalar
 * policy quality q in [0, 1].
 *
 * q is a calibrated function of the hyperparameters and the task: each
 * deployment scenario has an ideal capacity (the paper reports 5 layers /
 * 32 filters for low obstacles, 4 / 48 for medium, 7 / 48 for dense -
 * Section V-A) with an asymmetric penalty for under- and over-sized
 * networks (undersized policies underfit; oversized ones train poorly on
 * the same step budget). A per-seed jitter reproduces training variance.
 * Success rates are then *measured* by Monte-Carlo rollouts
 * (rollout.h), not asserted.
 */

#ifndef AUTOPILOT_AIRLEARNING_POLICY_H
#define AUTOPILOT_AIRLEARNING_POLICY_H

#include "airlearning/environment.h"
#include "nn/e2e_template.h"

namespace autopilot::airlearning
{

/** Behavioural parameters of a trained navigation policy. */
struct PolicyCapability
{
    double quality = 0.5;          ///< Scalar policy quality in [0, 1].
    double perceptionRangeM = 3.5; ///< Obstacle detection range.
    double detectionProb = 0.8;    ///< Per-step detection reliability.
    double headingNoiseRad = 0.2;  ///< Steering noise (1 sigma).

    /** Derive the behavioural parameters from a quality scalar. */
    static PolicyCapability fromQuality(double quality);
};

/**
 * Deterministic policy quality for a hyperparameter/task combination.
 *
 * @param params  Template hyperparameters.
 * @param density Deployment scenario.
 */
double policyQuality(const nn::PolicyHyperParams &params,
                     ObstacleDensity density);

/**
 * Policy quality with per-training-run jitter (training variance).
 *
 * @param params        Template hyperparameters.
 * @param density       Deployment scenario.
 * @param training_seed Seed of the simulated training run.
 */
double trainedPolicyQuality(const nn::PolicyHyperParams &params,
                            ObstacleDensity density,
                            std::uint64_t training_seed);

/** The hyperparameters with the highest deterministic quality. */
nn::PolicyHyperParams bestHyperParams(ObstacleDensity density);

} // namespace autopilot::airlearning

#endif // AUTOPILOT_AIRLEARNING_POLICY_H
