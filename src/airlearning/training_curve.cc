#include "airlearning/training_curve.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace autopilot::airlearning
{

LearningCurve::LearningCurve(double asymptote_quality,
                             std::int64_t model_params,
                             const LearningCurveParams &params)
    : asymptote(asymptote_quality), curveParams(params)
{
    util::fatalIf(asymptote_quality < 0.0 || asymptote_quality > 1.0,
                  "LearningCurve: asymptote outside [0, 1]");
    util::fatalIf(model_params < 0,
                  "LearningCurve: negative parameter count");
    util::fatalIf(params.convergenceFraction <= 0.0 ||
                      params.convergenceFraction >= 1.0,
                  "LearningCurve: convergence fraction outside (0, 1)");
    tau = params.tauBaseSteps +
          params.tauPerMparamSteps * (model_params * 1e-6);
}

double
LearningCurve::qualityAtStep(double steps) const
{
    util::fatalIf(steps < 0.0, "LearningCurve: negative steps");
    return asymptote * (1.0 - std::exp(-steps / tau));
}

double
LearningCurve::stepsToConverge() const
{
    // Solve q(t) = fraction * asymptote.
    return -tau * std::log(1.0 - curveParams.convergenceFraction);
}

bool
LearningCurve::convergesWithinBudget() const
{
    return stepsToConverge() <= curveParams.stepBudget;
}

double
LearningCurve::trainingSteps() const
{
    return std::min(stepsToConverge(), curveParams.stepBudget);
}

double
LearningCurve::achievedQuality() const
{
    return qualityAtStep(trainingSteps());
}

} // namespace autopilot::airlearning
