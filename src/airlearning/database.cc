#include "airlearning/database.h"

#include <algorithm>

namespace autopilot::airlearning
{

void
PolicyDatabase::upsert(const PolicyRecord &record)
{
    for (PolicyRecord &existing : records) {
        if (existing.params == record.params &&
            existing.density == record.density) {
            existing = record;
            return;
        }
    }
    records.push_back(record);
}

std::optional<PolicyRecord>
PolicyDatabase::find(const nn::PolicyHyperParams &params,
                     ObstacleDensity density) const
{
    for (const PolicyRecord &record : records) {
        if (record.params == params && record.density == density)
            return record;
    }
    return std::nullopt;
}

std::vector<PolicyRecord>
PolicyDatabase::forDensity(ObstacleDensity density) const
{
    std::vector<PolicyRecord> out;
    for (const PolicyRecord &record : records) {
        if (record.density == density)
            out.push_back(record);
    }
    return out;
}

std::vector<PolicyRecord>
PolicyDatabase::meetingSuccessRate(ObstacleDensity density,
                                   double min_rate) const
{
    std::vector<PolicyRecord> out;
    for (const PolicyRecord &record : records) {
        if (record.density == density && record.successRate >= min_rate)
            out.push_back(record);
    }
    return out;
}

std::optional<PolicyRecord>
PolicyDatabase::best(ObstacleDensity density) const
{
    const std::vector<PolicyRecord> candidates = forDensity(density);
    if (candidates.empty())
        return std::nullopt;
    return *std::max_element(candidates.begin(), candidates.end(),
                             [](const PolicyRecord &a,
                                const PolicyRecord &b) {
                                 return a.successRate < b.successRate;
                             });
}

} // namespace autopilot::airlearning
