/**
 * @file
 * Reinforcement-learning training-curve model.
 *
 * Section IV: "each E2E model is trained for one million steps or until
 * convergence". We model the learning curve as a saturating exponential
 * q(t) = q_inf * (1 - exp(-t / tau)) whose time constant grows with
 * model capacity (bigger policies need more samples), and expose the
 * two quantities Phase 1 records: the steps actually spent (converged
 * early or capped at the budget) and whether the budget sufficed.
 */

#ifndef AUTOPILOT_AIRLEARNING_TRAINING_CURVE_H
#define AUTOPILOT_AIRLEARNING_TRAINING_CURVE_H

#include <cstdint>

namespace autopilot::airlearning
{

/** Learning-curve shape parameters. */
struct LearningCurveParams
{
    double tauBaseSteps = 1.5e5;    ///< Time constant of a tiny policy.
    double tauPerMparamSteps = 8e3; ///< Extra tau per million params.
    double convergenceFraction = 0.97; ///< "Converged" threshold.
    double stepBudget = 1e6;        ///< Section IV's training budget.
};

/** Saturating-exponential learning curve for one policy. */
class LearningCurve
{
  public:
    /**
     * @param asymptote_quality Final policy quality (the surrogate's q).
     * @param model_params      Parameter count of the network.
     * @param params            Curve shape parameters.
     */
    LearningCurve(double asymptote_quality, std::int64_t model_params,
                  const LearningCurveParams &params =
                      LearningCurveParams());

    /** Time constant in environment steps. */
    double tauSteps() const { return tau; }

    /** Quality after @p steps of training. */
    double qualityAtStep(double steps) const;

    /** Steps to reach the convergence fraction of the asymptote. */
    double stepsToConverge() const;

    /** True when convergence happens within the step budget. */
    bool convergesWithinBudget() const;

    /**
     * Steps Phase 1 actually spends: min(stepsToConverge, budget),
     * matching "one million steps or until convergence".
     */
    double trainingSteps() const;

    /** Quality actually reached after trainingSteps(). */
    double achievedQuality() const;

  private:
    double asymptote;
    double tau;
    LearningCurveParams curveParams;
};

} // namespace autopilot::airlearning

#endif // AUTOPILOT_AIRLEARNING_TRAINING_CURVE_H
