#include "airlearning/environment.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace autopilot::airlearning
{

std::string
densityName(ObstacleDensity density)
{
    switch (density) {
      case ObstacleDensity::Low:    return "low";
      case ObstacleDensity::Medium: return "medium";
      case ObstacleDensity::Dense:  return "dense";
    }
    return "?";
}

std::vector<ObstacleDensity>
allDensities()
{
    return {ObstacleDensity::Low, ObstacleDensity::Medium,
            ObstacleDensity::Dense};
}

double
Environment::clearance(double x, double y) const
{
    double best = std::numeric_limits<double>::max();
    for (const Obstacle &obstacle : obstacles) {
        const double dx = x - obstacle.x;
        const double dy = y - obstacle.y;
        const double dist = std::sqrt(dx * dx + dy * dy) - obstacle.radius;
        best = std::min(best, dist);
    }
    return best;
}

EnvironmentConfig
EnvironmentConfig::forDensity(ObstacleDensity density)
{
    EnvironmentConfig config;
    config.density = density;
    switch (density) {
      case ObstacleDensity::Low:
        config.fixedObstacles = 0;
        config.maxRandomObstacles = 4;
        config.minRadius = 0.6;
        config.maxRadius = 1.0;
        config.camouflageProb = 0.05;
        break;
      case ObstacleDensity::Medium:
        config.fixedObstacles = 4;
        config.maxRandomObstacles = 3;
        config.minRadius = 0.8;
        config.maxRadius = 1.4;
        config.camouflageProb = 0.08;
        break;
      case ObstacleDensity::Dense:
        config.fixedObstacles = 4;
        config.maxRandomObstacles = 5;
        config.minRadius = 0.9;
        config.maxRadius = 1.5;
        config.camouflageProb = 0.11;
        break;
    }
    return config;
}

EnvironmentGenerator::EnvironmentGenerator(const EnvironmentConfig &config)
    : cfg(config)
{
    using util::fatalIf;
    fatalIf(cfg.arenaSize <= 0.0,
            "EnvironmentGenerator: arena size must be positive");
    fatalIf(cfg.minRadius <= 0.0 || cfg.maxRadius < cfg.minRadius,
            "EnvironmentGenerator: bad obstacle radius range");
    fatalIf(cfg.fixedObstacles < 0 || cfg.maxRandomObstacles < 0,
            "EnvironmentGenerator: negative obstacle counts");
    fatalIf(cfg.goalDistance <= 0.0 ||
                cfg.goalDistance > cfg.arenaSize * 1.4143,
            "EnvironmentGenerator: goal distance outside the arena");
}

Environment
EnvironmentGenerator::generate(util::Rng &rng) const
{
    Environment env;
    env.arenaSize = cfg.arenaSize;

    // Start near one corner; goal at the configured separation along the
    // diagonal, jittered so every episode differs.
    env.start = {2.0, 2.0};
    const double angle = rng.uniform(M_PI / 6.0, M_PI / 3.0);
    env.goal = {env.start.x + cfg.goalDistance * std::cos(angle),
                env.start.y + cfg.goalDistance * std::sin(angle)};
    env.goal.x = std::min(env.goal.x, cfg.arenaSize - 2.0);
    env.goal.y = std::min(env.goal.y, cfg.arenaSize - 2.0);

    auto blocks_endpoint = [&](const Obstacle &obstacle) {
        auto covers = [&](const Vec2 &point) {
            const double dx = point.x - obstacle.x;
            const double dy = point.y - obstacle.y;
            return std::sqrt(dx * dx + dy * dy) < obstacle.radius + 1.2;
        };
        return covers(env.start) || covers(env.goal);
    };

    // A minimum surface-to-surface gap keeps every environment passable:
    // the domain randomization must produce hard tasks, not impossible
    // ones (Air Learning regenerates unsolvable arenas the same way).
    const double min_gap = 1.5;
    auto too_close = [&](const Obstacle &obstacle) {
        for (const Obstacle &existing : env.obstacles) {
            const double dx = obstacle.x - existing.x;
            const double dy = obstacle.y - existing.y;
            const double gap = std::sqrt(dx * dx + dy * dy) -
                               obstacle.radius - existing.radius;
            if (gap < min_gap)
                return true;
        }
        return false;
    };

    // Obstacles populate the flight corridor between start and goal so
    // every episode actually exercises the avoidance policy (an obstacle
    // in a far corner of the arena tests nothing).
    const double dir_x = env.goal.x - env.start.x;
    const double dir_y = env.goal.y - env.start.y;
    const double corridor_len =
        std::sqrt(dir_x * dir_x + dir_y * dir_y);
    const double ux = dir_x / corridor_len;
    const double uy = dir_y / corridor_len;
    const double px = -uy; // Perpendicular unit vector.
    const double py = ux;

    auto corridor_point = [&](double along, double lateral) {
        Vec2 point;
        point.x = env.start.x + along * corridor_len * ux + lateral * px;
        point.y = env.start.y + along * corridor_len * uy + lateral * py;
        point.x = std::clamp(point.x, 1.0, cfg.arenaSize - 1.0);
        point.y = std::clamp(point.y, 1.0, cfg.arenaSize - 1.0);
        return point;
    };

    // Fixed obstacles: deterministic stations along the corridor with
    // alternating lateral offsets; radii are still randomized (the
    // paper's "four fixed" refers to placement).
    for (int i = 0; i < cfg.fixedObstacles; ++i) {
        const double along =
            0.25 + 0.6 * static_cast<double>(i) /
                       std::max(cfg.fixedObstacles - 1, 1);
        const double lateral = (i % 2 == 0 ? 1.0 : -1.0) * 1.5;
        const Vec2 at = corridor_point(along, lateral);
        Obstacle obstacle;
        obstacle.x = at.x;
        obstacle.y = at.y;
        obstacle.radius = rng.uniform(cfg.minRadius, cfg.maxRadius);
        obstacle.camouflaged = rng.bernoulli(cfg.camouflageProb);
        if (!blocks_endpoint(obstacle) && !too_close(obstacle))
            env.obstacles.push_back(obstacle);
    }

    // Randomly placed obstacles: count is itself randomized ("up to N"),
    // positions scattered across the corridor band.
    const int random_count =
        cfg.maxRandomObstacles > 0
            ? rng.uniformInt(cfg.fixedObstacles > 0 ? 1 : 2,
                             cfg.maxRandomObstacles)
            : 0;
    int placed = 0;
    int attempts = 0;
    while (placed < random_count && attempts < 200) {
        ++attempts;
        const double along = rng.uniform(0.15, 0.92);
        const double lateral = rng.uniform(-3.5, 3.5);
        const Vec2 at = corridor_point(along, lateral);
        Obstacle obstacle;
        obstacle.x = at.x;
        obstacle.y = at.y;
        obstacle.radius = rng.uniform(cfg.minRadius, cfg.maxRadius);
        obstacle.camouflaged = rng.bernoulli(cfg.camouflageProb);
        if (blocks_endpoint(obstacle) || too_close(obstacle))
            continue;
        env.obstacles.push_back(obstacle);
        ++placed;
    }

    return env;
}

} // namespace autopilot::airlearning
