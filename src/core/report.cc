#include "core/report.h"

#include "util/table.h"
#include "util/telemetry.h"

namespace autopilot::core
{

using util::formatDouble;
using util::formatRatio;

void
printDesignReport(const FullSystemDesign &design, std::ostream &os,
                  bool showFidelity)
{
    util::Table table({"property", "value"});
    table.addRow({"policy", nn::policyName(design.eval.point.policy)});
    table.addRow({"accelerator", design.eval.point.accel.name()});
    table.addRow({"success rate",
                  formatDouble(design.eval.successRate * 100, 1) +
                      " %"});
    table.addRow({"inference rate",
                  formatDouble(design.eval.fps, 1) + " FPS"});
    table.addRow({"latency",
                  formatDouble(design.eval.latencyMs, 1) + " ms"});
    table.addRow({"NPU power",
                  formatDouble(design.eval.npuPowerW, 2) + " W"});
    table.addRow({"SoC power",
                  formatDouble(design.eval.socPowerW, 2) + " W"});
    table.addRow({"compute payload",
                  formatDouble(design.payloadGrams, 1) + " g"});
    table.addRow({"sensor", std::to_string(design.sensorFps) + " FPS"});
    table.addRow({"action throughput",
                  formatDouble(design.mission.actionThroughputHz, 1) +
                      " Hz"});
    table.addRow({"knee point",
                  formatDouble(design.mission.kneeThroughputHz, 1) +
                      " Hz"});
    table.addRow(
        {"provisioning",
         uav::provisioningName(design.mission.provisioning)});
    table.addRow({"safe velocity",
                  formatDouble(design.mission.safeVelocityMps, 1) +
                      " m/s"});
    table.addRow({"missions / charge",
                  formatDouble(design.mission.numMissions, 1)});
    if (!design.mission.feasible &&
        !design.mission.infeasibleReason.empty())
        table.addRow({"infeasible", design.mission.infeasibleReason});
    if (showFidelity)
        table.addRow({"eval fidelity",
                      dse::fidelityName(design.eval.fidelity)});
    table.print(os);
}

std::vector<std::size_t>
missionParetoFront(const std::vector<FullSystemDesign> &candidates)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < candidates.size() && !dominated;
             ++j) {
            if (i == j)
                continue;
            const bool no_worse =
                candidates[j].missionScore() >=
                    candidates[i].missionScore() &&
                candidates[j].eval.socPowerW <=
                    candidates[i].eval.socPowerW;
            const bool better =
                candidates[j].missionScore() >
                    candidates[i].missionScore() ||
                candidates[j].eval.socPowerW <
                    candidates[i].eval.socPowerW;
            // Duplicates on both axes keep only the first occurrence.
            dominated = (no_worse && better) ||
                        (no_worse && !better && j < i);
        }
        if (!dominated)
            front.push_back(i);
    }
    return front;
}

void
printRunReport(const AutoPilotRun &run, std::ostream &os)
{
    os << "AutoPilot run: " << run.uav.name << ", "
       << airlearning::densityName(run.task.density)
       << " obstacles\n";
    os << "Phase 2 archive: " << run.dseResult.archive.size()
       << " designs (" << run.dseResult.front().size()
       << " Pareto-optimal); Phase 3 candidates: "
       << run.candidates.size() << "\n";
    // Per-fidelity breakdown only for non-default backends, so the
    // analytical report stays byte-identical to the historical output.
    const bool mixed_fidelity = run.task.backend != "analytical";
    if (mixed_fidelity) {
        std::size_t analytical = 0, cycle = 0, bank = 0;
        for (const dse::Evaluation &eval : run.dseResult.archive) {
            if (eval.fidelity == dse::Fidelity::BankAccurate)
                ++bank;
            else if (eval.fidelity == dse::Fidelity::CycleAccurate)
                ++cycle;
            else
                ++analytical;
        }
        // The bank count appears only when present, so pre-dram golden
        // outputs are unchanged.
        os << "Phase 2 backend: " << run.task.backend << " (fidelity: ";
        if (bank > 0)
            os << bank << " bank-accurate, ";
        os << cycle << " cycle-accurate, " << analytical
           << " analytical)\n";
    }
    os << "\nSelected design:\n";
    printDesignReport(run.selected, os, mixed_fidelity);

    // Mission-mix section only for non-default mixes, so the default
    // single-scenario report stays byte-identical to the seed output.
    if (!run.task.missionMix.isDefault()) {
        os << "\nMission mix '" << run.task.missionMix.tag()
           << "': weighted missions / charge "
           << formatDouble(run.selected.weightedMissions, 1) << "\n";
        util::Table table({"scenario", "airframe", "weight", "sensor",
                           "v_safe m/s", "missions", "detail"});
        for (const ScenarioOutcome &outcome : run.selected.scenarios) {
            table.addRow(
                {outcome.name, uav::airframeKindName(outcome.airframe),
                 formatDouble(outcome.weight, 1),
                 std::to_string(outcome.sensorFps) + " FPS",
                 formatDouble(outcome.mission.safeVelocityMps, 1),
                 formatDouble(outcome.mission.numMissions, 1),
                 outcome.mission.feasible
                     ? "ok"
                     : outcome.mission.infeasibleReason});
        }
        table.print(os);
        const std::vector<std::size_t> front =
            missionParetoFront(run.candidates);
        os << "Fleet Pareto front (weighted missions vs SoC W): "
           << front.size() << " of " << run.candidates.size()
           << " candidates\n";
        for (const std::size_t index : front) {
            const FullSystemDesign &design = run.candidates[index];
            os << "  " << nn::policyName(design.eval.point.policy)
               << " / " << design.eval.point.accel.name() << ": "
               << formatDouble(design.missionScore(), 1)
               << " missions, "
               << formatDouble(design.eval.socPowerW, 2) << " W\n";
        }
    }

    if (util::Telemetry::instance().enabled()) {
        os << "\nRun telemetry:\n";
        printTelemetrySummary(os);
    }
}

void
printStrategyComparison(const std::vector<FullSystemDesign> &candidates,
                        std::ostream &os)
{
    util::Table table({"strategy", "design", "FPS", "SoC W", "FPS/W",
                       "payload g", "v_safe m/s", "missions"});
    for (DesignStrategy strategy :
         {DesignStrategy::HighThroughput, DesignStrategy::LowPower,
          DesignStrategy::HighEfficiency,
          DesignStrategy::AutoPilotPick}) {
        const FullSystemDesign design =
            AutoPilot::selectByStrategy(candidates, strategy);
        table.addRow(
            {strategyName(strategy),
             nn::policyName(design.eval.point.policy) + " / " +
                 design.eval.point.accel.name(),
             formatDouble(design.eval.fps, 1),
             formatDouble(design.eval.socPowerW, 2),
             formatDouble(design.eval.fps / design.eval.socPowerW, 1),
             formatDouble(design.payloadGrams, 1),
             formatDouble(design.mission.safeVelocityMps, 1),
             formatDouble(design.mission.numMissions, 1)});
    }
    table.print(os);
}

void
printTelemetrySummary(std::ostream &os)
{
    util::Telemetry::instance().printSummary(os);
}

} // namespace autopilot::core
