/**
 * @file
 * Architectural fine-tuning (Section III-C).
 *
 * When no Phase 2 candidate sits on the F-1 knee point, AutoPilot can
 * shift a design toward it with frequency scaling and technology-node
 * scaling before final selection. Both knobs re-run the performance and
 * power models rather than applying ad-hoc factors: frequency changes the
 * cycle-time (and therefore the dynamic-power density), a node change
 * rescales every energy/leakage constant and the achievable clock.
 */

#ifndef AUTOPILOT_CORE_FINE_TUNING_H
#define AUTOPILOT_CORE_FINE_TUNING_H

#include "dse/evaluator.h"

namespace autopilot::core
{

/** Re-evaluation and tuning of individual design points. */
class ArchitecturalTuner
{
  public:
    /**
     * Re-run the performance/power models for a design point.
     *
     * @param point        Design to evaluate (its clockGhz is honoured).
     * @param success_rate Phase 1 success rate to carry through.
     * @param technology_nm Process node (40/28/16/7).
     */
    static dse::Evaluation reevaluate(const dse::DesignPoint &point,
                                      double success_rate,
                                      int technology_nm = 28);

    /**
     * Scale the NPU clock so the design's inference rate approaches
     * @p target_fps (e.g., the F-1 knee point); clamped to a plausible
     * frequency window.
     */
    static dse::Evaluation scaleFrequency(const dse::Evaluation &eval,
                                          double target_fps,
                                          double min_ghz = 0.05,
                                          double max_ghz = 1.2);

    /**
     * Port the design to another technology node; the clock is scaled by
     * the node's frequency headroom.
     */
    static dse::Evaluation scaleTechnology(const dse::Evaluation &eval,
                                           int technology_nm);
};

} // namespace autopilot::core

#endif // AUTOPILOT_CORE_FINE_TUNING_H
