#include "core/baselines.h"

#include "util/logging.h"

namespace autopilot::core
{

double
BaselinePlatform::framesPerSecond(const nn::Model &model) const
{
    if (fixedThroughput)
        return fixedFps;
    util::fatalIf(model.empty(),
                  "BaselinePlatform::framesPerSecond: empty model");
    const double gmacs =
        static_cast<double>(model.totalMacs()) * 1e-9;
    util::panicIf(gmacs <= 0.0, "BaselinePlatform: zero-MAC model");
    return effectiveGmacPerS / gmacs;
}

BaselinePlatform
jetsonTx2()
{
    BaselinePlatform platform;
    platform.name = "Jetson TX2";
    // Batch-1 FP16 policy inference achieves a small fraction of the
    // 1.3 TFLOP/s peak: latency- and bandwidth-bound.
    platform.effectiveGmacPerS = 55.0;
    platform.runPowerW = 12.0;
    platform.massGrams = 85.0;
    return platform;
}

BaselinePlatform
xavierNx()
{
    BaselinePlatform platform;
    platform.name = "Xavier NX";
    platform.effectiveGmacPerS = 110.0;
    platform.runPowerW = 10.0;
    platform.massGrams = 75.0;
    return platform;
}

BaselinePlatform
intelNcs()
{
    BaselinePlatform platform;
    platform.name = "Intel NCS";
    platform.effectiveGmacPerS = 15.0;
    platform.runPowerW = 1.5;
    platform.massGrams = 40.0; // Stick plus a host microcontroller board.
    return platform;
}

BaselinePlatform
pulpDronet()
{
    BaselinePlatform platform;
    platform.name = "P-DroNet";
    platform.fixedThroughput = true;
    platform.fixedFps = 6.0;   // Reported numbers, used "as is".
    platform.runPowerW = 0.064;
    platform.massGrams = 5.0;  // No heatsink; minimal carrier.
    return platform;
}

std::vector<BaselinePlatform>
figure5Baselines()
{
    return {jetsonTx2(), xavierNx(), pulpDronet()};
}

} // namespace autopilot::core
