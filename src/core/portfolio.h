/**
 * @file
 * DSSoC portfolio selection: Section VI turned into an algorithm.
 *
 * Table V shows that reusing one DSSoC across deployment scenarios costs
 * missions, while a design per scenario costs silicon. A fleet operator
 * covering several vehicles and scenarios therefore faces a set-cover
 * question: how few distinct accelerator configurations cover all
 * (vehicle, scenario) cells with acceptable degradation?
 *
 * The selector pools the accelerator configurations AutoPilot's Phase 2
 * produces for each scenario, evaluates every configuration on every
 * cell (the policy is retrained per scenario - software is free, silicon
 * is not - so a cell runs its scenario-best policy on the shared
 * hardware), and greedily picks configurations that maximize fleet-wide
 * success-weighted missions. The output quantifies the marginal value of
 * each additional tape-out.
 */

#ifndef AUTOPILOT_CORE_PORTFOLIO_H
#define AUTOPILOT_CORE_PORTFOLIO_H

#include <map>
#include <string>
#include <vector>

#include "core/autopilot.h"

namespace autopilot::core
{

/** One (vehicle, scenario) deployment cell. */
struct PortfolioCell
{
    uav::UavSpec vehicle;
    airlearning::ObstacleDensity density =
        airlearning::ObstacleDensity::Low;

    /** Label like "nano/dense". */
    std::string name() const;
};

/** Assignment of one portfolio member to a cell. */
struct CellAssignment
{
    std::string cellName;
    std::size_t designIndex = 0;  ///< Into PortfolioResult::accelerators.
    double missions = 0.0;        ///< Achieved on this cell.
    double successRate = 0.0;     ///< Of the retrained policy.
    double cellOptimalMissions = 0.0; ///< Per-cell custom design.
    double degradationPct = 0.0;  ///< vs. the per-cell optimum.
};

/** Result of a portfolio selection. */
struct PortfolioResult
{
    std::vector<systolic::AcceleratorConfig> accelerators;
    std::vector<CellAssignment> assignments;

    /** Mean degradation across cells vs. per-cell custom designs. */
    double meanDegradationPct() const;

    /** Worst-cell degradation. */
    double maxDegradationPct() const;
};

/** Greedy portfolio selector over the nine Table IV cells. */
class PortfolioSelector
{
  public:
    /**
     * @param base_task Budgets/seed template; the density field is
     *                  overridden per scenario.
     */
    explicit PortfolioSelector(const TaskSpec &base_task);

    /**
     * Pick up to @p max_designs accelerator configurations covering all
     * (vehicle, scenario) cells.
     */
    PortfolioResult select(int max_designs);

    /** The deployment cells (3 vehicles x 3 scenarios). */
    const std::vector<PortfolioCell> &cells() const { return cellList; }

  private:
    TaskSpec baseTask;
    std::vector<PortfolioCell> cellList;
    std::map<airlearning::ObstacleDensity, AutoPilot> pilots;

    /** Missions x success of a configuration on a cell (memoized). */
    double cellValue(const systolic::AcceleratorConfig &config,
                     const PortfolioCell &cell, double *missions_out,
                     double *success_out);

    std::map<std::string, std::pair<double, double>> valueCache;
};

} // namespace autopilot::core

#endif // AUTOPILOT_CORE_PORTFOLIO_H
