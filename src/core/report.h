/**
 * @file
 * Textual reports for AutoPilot runs: one place that renders designs,
 * candidate sets and comparisons so examples and downstream tools agree
 * on the format.
 */

#ifndef AUTOPILOT_CORE_REPORT_H
#define AUTOPILOT_CORE_REPORT_H

#include <cstddef>
#include <ostream>
#include <vector>

#include "core/autopilot.h"

namespace autopilot::core
{

/**
 * Indices (in @p candidates order) of the designs on the fleet-level
 * Pareto front: maximize the mission score (weighted missions across
 * the mix) while minimizing SoC power. Ties on both axes keep the
 * first occurrence, so the front is deterministic in candidate order.
 */
std::vector<std::size_t>
missionParetoFront(const std::vector<FullSystemDesign> &candidates);

/**
 * Print one full-system design as a two-column property table.
 *
 * @param showFidelity Append an "eval fidelity" row naming the cost
 *        model that produced the compute numbers. Off by default so
 *        reports from the default analytical backend are unchanged.
 */
void printDesignReport(const FullSystemDesign &design, std::ostream &os,
                       bool showFidelity = false);

/**
 * Print the whole run: task, Phase 2 statistics, the candidate set and
 * the selected design with its mission metrics. For a non-default
 * cost-model backend the Phase 2 line gains a per-fidelity breakdown
 * of the archive and the design table an "eval fidelity" row; with the
 * default "analytical" backend the output is byte-identical to the
 * pre-backend report. For a non-default mission mix the report gains a
 * per-scenario table for the selected design and the fleet-level
 * weighted-missions Pareto front; on the default mix the output is
 * unchanged.
 */
void printRunReport(const AutoPilotRun &run, std::ostream &os);

/**
 * Print the four strategy picks (HT/LP/HE/AP) from a candidate set side
 * by side - the Section V-B comparison view.
 */
void printStrategyComparison(
    const std::vector<FullSystemDesign> &candidates, std::ostream &os);

/**
 * Print the global run-telemetry metrics as a human-readable table
 * (counters, gauges and latency histograms collected while
 * TaskSpec::telemetry was on). printRunReport() appends this
 * automatically when telemetry is enabled; with telemetry off the
 * report output is unchanged.
 */
void printTelemetrySummary(std::ostream &os);

} // namespace autopilot::core

#endif // AUTOPILOT_CORE_REPORT_H
