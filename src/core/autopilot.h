/**
 * @file
 * The AutoPilot methodology facade: the three-phase pipeline of Fig. 1.
 *
 *  Phase 1 (domain-specific front end): train and validate E2E policies
 *  for the task specification; fill the Air Learning database.
 *
 *  Phase 2 (domain-agnostic multi-objective DSE): Bayesian optimization
 *  over the joint Table II space, optimizing {success rate, SoC power,
 *  inference latency}.
 *
 *  Phase 3 (domain-specific back end): filter the candidates with the
 *  highest success rates, map each through the compute-weight model onto
 *  the F-1 model of the target vehicle, and select the combination that
 *  maximizes the number of missions.
 *
 * Phases 1 and 2 depend only on the deployment scenario, not the vehicle,
 * so one AutoPilot instance can lower the same Phase 2 result to several
 * UAVs ("a bad design point for one UAV type can be a balanced design for
 * another") - exactly why the methodology is split into three phases.
 */

#ifndef AUTOPILOT_CORE_AUTOPILOT_H
#define AUTOPILOT_CORE_AUTOPILOT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "airlearning/database.h"
#include "airlearning/trainer.h"
#include "dram/config.h"
#include "dse/bayesopt.h"
#include "dse/optimizer.h"
#include "systolic/contention.h"
#include "uav/mission.h"
#include "uav/mission_profile.h"
#include "uav/uav_spec.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace autopilot::core
{

/** High-level task specification (the user input of Fig. 1). */
struct TaskSpec
{
    airlearning::ObstacleDensity density =
        airlearning::ObstacleDensity::Low;
    int validationEpisodes = 150;  ///< Phase 1 rollouts per policy.
    int dseBudget = 110;           ///< Phase 2 evaluation budget.
    double successTolerance = 0.02;///< Phase 3 filter band below best.
    /// Hard real-time bound on policy inference (Section III-A's
    /// "real-time latency constraints"); 0 disables the constraint.
    /// Candidates violating it are dropped in Phase 3 (with a warning
    /// fallback to the unconstrained set when nothing survives).
    double maxLatencyMs = 0.0;
    std::uint64_t seed = 0xA070D1; ///< Reproducibility seed.
    /// Worker threads for the batch-parallel pipeline stages (Phase 1
    /// training fan-out, Phase 2 batch evaluation and acquisition
    /// screening, Phase 3 candidate mapping). 1 runs fully serial on
    /// the calling thread; 0 uses the hardware concurrency. Results are
    /// byte-identical across thread counts for a fixed seed: every
    /// parallel stage commits its results in proposal order.
    int threads = 1;
    /// Cost-model backend for the Phase 2 evaluator, by registry name
    /// (dse::BackendRegistry): "analytical" (default; the closed-form
    /// path, bit-identical to the historical pipeline), "cycle" (the
    /// cycle-stepped reference engine), "tiered" (analytical screen +
    /// cycle-accurate verification of Pareto-competitive points), or
    /// any custom backend registered at startup. Fatal on an unknown
    /// name. Each archived evaluation records the fidelity that
    /// produced it; printRunReport() shows the per-fidelity breakdown
    /// for non-default backends.
    std::string backend = "analytical";
    /// Shared-DRAM contention profile for the Phase 2 cost model:
    /// background camera/host traffic on the NPU's channel (see
    /// systolic::ContentionProfile). Read by the "contention" backend
    /// and the "tiered" verify tier; the default empty profile leaves
    /// every backend bit-identical to its contention-free behavior.
    /// Validated at construction; part of the task fingerprint, so a
    /// journal written under one profile never resumes under another.
    systolic::ContentionProfile contention;
    /// Bank-level DRAM channel for the Phase 2 cost model: command
    /// timing plus programmable camera/host traffic generators (see
    /// dram::DramSpec). Read by the "dram" backend and, when enabled,
    /// by the "tiered" verify tier; the default spec (no generators)
    /// leaves every backend bit-identical to the pure-cycle path and
    /// contributes nothing to the task fingerprint, so legacy journals
    /// keep resuming. Validated at construction - degenerate timing is
    /// rejected with a human-readable diagnosis - and mutually
    /// exclusive with a non-empty contention profile (the two encode
    /// the same background traffic at different fidelities; billing
    /// both would double-charge latency and power).
    dram::DramSpec dram;
    /// Phase 2 optimizer, by report name ("bo" - the paper's Bayesian
    /// optimization and the default - "nsga2", "sa" or "random"; see
    /// dse::makeOptimizer). Fatal on an unknown name. All optimizers
    /// run with default algorithm parameters; budget and seed come from
    /// dseBudget/seed above.
    std::string optimizer = "bo";
    /// Directory for the run's durable state: the Phase 1 policy
    /// checkpoint ("policies.chk") and the Phase 2 evaluation journal
    /// ("journal.csv"), both headed by the task fingerprint. Empty
    /// (default) disables checkpointing entirely. The directory is
    /// created on demand.
    std::string checkpointDir;
    /// Warm-start from checkpointDir's files when they exist and their
    /// fingerprint matches taskFingerprint(): Phase 1 loads the policy
    /// checkpoint instead of retraining, Phase 2 preloads the journal
    /// into the memo cache (and the backend's warm-start state) so the
    /// optimizer replays its recorded trajectory without re-simulating,
    /// then continues where the interrupted run stopped. A resumed run
    /// with an unchanged spec produces byte-identical results to an
    /// uninterrupted one. Mismatched or absent files fall back to a
    /// fresh run (with a warning when a mismatched file existed).
    bool resume = false;
    /// Cooperative cancellation handle, checked at phase starts and at
    /// every Phase 2 batch boundary (DseEvaluator::evaluateBatch entry),
    /// so an expired deadline or a service drain stops a pipeline
    /// within one batch instead of after the phase - committed journal
    /// batches stay whole and the task resumes byte-identically.
    /// Inert by default. Like threads, EXCLUDED from taskFingerprint():
    /// when a run is cancelled does not change what it computes.
    util::CancelToken cancel;
    /// Fleet workload for Phase 3: a weighted set of (airframe,
    /// mission) scenarios (uav::MissionMix). The selection objective
    /// becomes the weighted missions-per-charge across the mix, with
    /// per-scenario results retained in each FullSystemDesign for the
    /// report. The default empty mix is the legacy single quadrotor
    /// point-to-point scenario: results and the task fingerprint are
    /// bit-identical to the pre-mix pipeline, so existing checkpoints
    /// and journals keep resuming. Validated at construction; a
    /// non-default mix is folded into taskFingerprint().
    uav::MissionMix missionMix;
    /// Searchable operand precisions for the Phase 2 design space's 8th
    /// dimension, as ascending bytes-per-element drawn from {1,2,4}
    /// (int8/fp16/fp32; see systolic::precisionName). The default
    /// int8-only set pins the axis: no RNG draws are spent on it, the
    /// archive keeps the legacy column layout, and nothing is folded
    /// into the fingerprint - results are bit-identical to the
    /// pre-precision pipeline and old journals keep resuming. A wider
    /// set makes precision a search dimension (pair with the
    /// "quantized" backend for per-precision telemetry): wider operands
    /// pay quadratically more MAC energy and proportionally more
    /// SRAM/DRAM traffic but recover the Phase 1 int8 quantization
    /// penalty. Validated at construction; folded into
    /// taskFingerprint() when non-default.
    std::vector<int> precisions = {1};
    /// Enable the run-telemetry subsystem (util::Telemetry): Phase
    /// 1/2/3 trace spans, per-evaluation simulate spans, cache/pool
    /// metrics, and a summary table appended to printRunReport(). Off
    /// by default so reports and golden outputs are unchanged. The flag
    /// switches the process-wide telemetry context on; it never turns
    /// it off, so several AutoPilot instances can share one enabled
    /// context.
    bool telemetry = false;
};

/**
 * 64-bit fingerprint (FNV-1a) over every TaskSpec field that affects
 * results: density, budgets, tolerance, latency bound, seed, backend,
 * optimizer, the contention profile and (when non-default) the mission
 * mix, the bank-level DRAM channel and the precision set. Deliberately
 * EXCLUDES threads,
 * cancel and telemetry (results
 * are byte-identical across thread counts, so a journal written at
 * --threads 4 legitimately resumes at --threads 1) and the
 * checkpointing fields themselves. Stamped into checkpoint/journal
 * headers so a resumed run never replays state computed for a
 * different problem.
 */
std::uint64_t taskFingerprint(const TaskSpec &task);

/** One mission-mix scenario's evaluation of a candidate design. */
struct ScenarioOutcome
{
    std::string name;          ///< Scenario tag from the mix.
    uav::AirframeKind airframe = uav::AirframeKind::Quadrotor;
    double weight = 1.0;       ///< Relative share in the objective.
    int sensorFps = 30;        ///< Sensor picked for this scenario.
    uav::MissionResult mission;///< Mission evaluation on this scenario.
};

/** A Phase 2 candidate lowered to a full UAV system (Phase 3 view). */
struct FullSystemDesign
{
    dse::Evaluation eval;      ///< Compute-level metrics.
    double tdpW = 0.0;         ///< NPU power driving heatsink sizing.
    double payloadGrams = 0.0; ///< PCB + heatsink mass.
    int sensorFps = 30;        ///< Sensor rate (primary scenario).
    uav::MissionResult mission;///< Primary-scenario mission evaluation.
    /// Per-scenario evaluations, in mix order (one default entry for
    /// the legacy single-scenario workload).
    std::vector<ScenarioOutcome> scenarios;
    /// Weight-averaged missions-per-charge across the mix; equals
    /// mission.numMissions bit-for-bit on the default mix.
    double weightedMissions = 0.0;

    /// The Phase 3 selection objective: the weighted fleet metric when
    /// scenarios were mapped, the primary mission metric otherwise
    /// (hand-built designs in tests).
    double missionScore() const
    {
        return scenarios.empty() ? mission.numMissions
                                 : weightedMissions;
    }
};

/** Traditional selection strategies of Section V-B. */
enum class DesignStrategy
{
    HighThroughput, ///< Max compute FPS ("HT").
    LowPower,       ///< Min SoC power ("LP").
    HighEfficiency, ///< Max FPS/W ("HE").
    AutoPilotPick,  ///< Phase 3 full-system selection ("AP").
};

/** Short strategy label ("HT", "LP", "HE", "AP"). */
std::string strategyName(DesignStrategy strategy);

/** Complete record of one AutoPilot run for one vehicle. */
struct AutoPilotRun
{
    uav::UavSpec uav;
    TaskSpec task;
    dse::OptimizerResult dseResult;          ///< Phase 2 archive.
    std::vector<FullSystemDesign> candidates;///< Phase 3 mapped set.
    FullSystemDesign selected;               ///< The AP design.
};

/** The three-phase pipeline, with Phase 1/2 results cached for reuse. */
class AutoPilot
{
  public:
    /** @param task Task specification shared by every vehicle. */
    explicit AutoPilot(const TaskSpec &task);

    /**
     * Construct on a caller-owned worker pool instead of a private
     * one: the campaign service runs many concurrent pipelines over a
     * single shared (work-stealing) pool, so one huge campaign's tasks
     * interleave with everyone else's instead of monopolizing threads.
     * @p sharedPool is non-owning and must outlive the pipeline; null
     * falls back to the private-pool behavior of the other ctor.
     * Results are identical either way (tasks are pure, commits are
     * ordered), so sharing is purely a scheduling decision.
     */
    AutoPilot(const TaskSpec &task, util::ThreadPool *sharedPool);

    /** Phase 1: lazily train/validate all template policies. */
    const airlearning::PolicyDatabase &phase1();

    /** Phase 2: lazily run the multi-objective DSE (runs Phase 1). */
    const dse::OptimizerResult &phase2();

    /**
     * Phase 3: lower the Phase 2 candidates to @p uav and select the
     * design that maximizes the number of missions.
     */
    AutoPilotRun designFor(const uav::UavSpec &uav);

    /**
     * Map one Phase 2 evaluation to a full-system design on a vehicle
     * (compute weight model + sensor selection + mission model) for the
     * legacy single quadrotor point-to-point scenario.
     */
    static FullSystemDesign mapToFullSystem(const dse::Evaluation &eval,
                                            const uav::UavSpec &uav);

    /**
     * Mission-mix mapping: evaluate the design on every scenario of
     * @p mix (each with its own airframe, mission profile and sensor
     * selection) and aggregate the weighted missions-per-charge. The
     * primary fields (sensorFps, mission) mirror the first scenario.
     */
    static FullSystemDesign mapToFullSystem(const dse::Evaluation &eval,
                                            const uav::UavSpec &uav,
                                            const uav::MissionMix &mix);

    /**
     * The Phase 3 candidate set for a vehicle: Phase 2 archive entries
     * whose success rate is within the tolerance of the best, each mapped
     * to the full system.
     */
    std::vector<FullSystemDesign>
    candidatesFor(const uav::UavSpec &uav);

    /**
     * Pick a design from a candidate set by a selection strategy; used by
     * the Section V-B pitfall studies.
     */
    static FullSystemDesign
    selectByStrategy(const std::vector<FullSystemDesign> &candidates,
                     DesignStrategy strategy);

    const TaskSpec &task() const { return taskSpec; }

    /**
     * The worker pool shared by all pipeline stages; null when the task
     * requested serial execution (threads == 1). Lazily started so a
     * pipeline that only replays cached phases never spawns threads.
     */
    util::ThreadPool *workerPool();

  private:
    TaskSpec taskSpec;
    bool phase1Done = false;
    bool phase2Done = false;
    airlearning::PolicyDatabase database;
    dse::OptimizerResult dseResult;
    std::unique_ptr<util::ThreadPool> pool;
    util::ThreadPool *externalPool = nullptr; ///< Non-owning override.
};

} // namespace autopilot::core

#endif // AUTOPILOT_CORE_AUTOPILOT_H
