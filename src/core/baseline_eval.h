/**
 * @file
 * Mission-level evaluation of baseline platforms on a target vehicle,
 * used by the Fig. 5 and Table V comparisons.
 */

#ifndef AUTOPILOT_CORE_BASELINE_EVAL_H
#define AUTOPILOT_CORE_BASELINE_EVAL_H

#include <string>

#include "core/baselines.h"
#include "uav/mission.h"
#include "uav/uav_spec.h"

namespace autopilot::core
{

/** Full-system evaluation of one baseline platform on one vehicle. */
struct BaselineMissionResult
{
    std::string platformName;
    double fps = 0.0;        ///< Achieved policy inference rate.
    double computePowerW = 0.0; ///< Board + sensor + interface power.
    double payloadGrams = 0.0;
    int sensorFps = 30;
    uav::MissionResult mission;
};

/**
 * Run a baseline platform through the same Phase 3 pipeline as AutoPilot
 * candidates: board mass as the compute payload, board power plus the
 * fixed sensor/interface power, sensor rate chosen against the vehicle's
 * knee point.
 *
 * @param platform Baseline spec.
 * @param model    Policy network the platform must run.
 * @param uav      Target vehicle.
 */
BaselineMissionResult evaluateBaselineOnUav(
    const BaselinePlatform &platform, const nn::Model &model,
    const uav::UavSpec &uav);

} // namespace autopilot::core

#endif // AUTOPILOT_CORE_BASELINE_EVAL_H
