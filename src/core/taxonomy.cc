#include "core/taxonomy.h"

#include "util/logging.h"
#include "util/table.h"

namespace autopilot::core
{

std::string
domainName(Domain domain)
{
    switch (domain) {
      case Domain::Uav:              return "UAV";
      case Domain::SelfDrivingCar:   return "Self-Driving Car";
      case Domain::ArticulatedRobot: return "Articulated Robot";
    }
    return "?";
}

std::string
paradigmName(Paradigm paradigm)
{
    switch (paradigm) {
      case Paradigm::EndToEnd:     return "E2E";
      case Paradigm::SensePlanAct: return "SPA";
      case Paradigm::Hybrid:       return "Hybrid (PPC+NN)";
    }
    return "?";
}

std::string
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::DomainSpecificFrontEnd:
        return "Domain-Specific Front End";
      case Phase::MultiObjectiveDse:
        return "Domain-Agnostic Multi-Objective DSE";
      case Phase::DomainSpecificBackEnd:
        return "Domain-Specific Back End";
    }
    return "?";
}

const std::vector<TaxonomyEntry> &
taxonomyTable()
{
    static const std::vector<TaxonomyEntry> table = {
        // --- This work: UAV / E2E (highlighted in the paper) ---
        {Domain::Uav, Paradigm::EndToEnd,
         Phase::DomainSpecificFrontEnd,
         {"Air Learning"},
         true},
        {Domain::Uav, Paradigm::EndToEnd, Phase::MultiObjectiveDse,
         {"Systolic Arrays (SCALE-Sim)", "Bayesian Optimization"},
         true},
        {Domain::Uav, Paradigm::EndToEnd, Phase::DomainSpecificBackEnd,
         {"F-1 Model"},
         true},

        // --- UAV generalizations ---
        {Domain::Uav, Paradigm::EndToEnd,
         Phase::DomainSpecificFrontEnd,
         {"PEDRA", "AirSim", "Gym-FC"},
         false},
        {Domain::Uav, Paradigm::EndToEnd, Phase::MultiObjectiveDse,
         {"Gemmini", "Simba", "Edge-TPU", "Eyeriss",
          "Mind Mappings", "MAESTRO", "Movidius", "MCU", "PULP",
          "MAGNet", "BO", "RL", "GA", "SA"},
         false},
        {Domain::Uav, Paradigm::SensePlanAct,
         Phase::DomainSpecificFrontEnd,
         {"MAVBench"},
         false},
        {Domain::Uav, Paradigm::SensePlanAct, Phase::MultiObjectiveDse,
         {"Navion (SLAM/VIO)", "OctoMap/OMU (mapping)",
          "RoboX (motion planning)", "BO", "RL", "GA", "SA"},
         false},
        {Domain::Uav, Paradigm::SensePlanAct,
         Phase::DomainSpecificBackEnd,
         {"F-1 Model"},
         false},

        // --- Self-driving cars ---
        {Domain::SelfDrivingCar, Paradigm::Hybrid,
         Phase::DomainSpecificFrontEnd,
         {"CARLA", "Apollo", "AirSim"},
         false},
        {Domain::SelfDrivingCar, Paradigm::Hybrid,
         Phase::MultiObjectiveDse,
         {"Systolic Arrays", "Simba", "Eyeriss", "EyeQ", "Tesla FSD",
          "MAGNet", "BO", "RL", "GA", "SA"},
         false},
        {Domain::SelfDrivingCar, Paradigm::Hybrid,
         Phase::DomainSpecificBackEnd,
         {"Intel RSS", "Nvidia SFF"},
         false},

        // --- Articulated robots ---
        {Domain::ArticulatedRobot, Paradigm::EndToEnd,
         Phase::DomainSpecificFrontEnd,
         {"Robot Farms (QT-Opt)", "Gazebo"},
         false},
        {Domain::ArticulatedRobot, Paradigm::EndToEnd,
         Phase::MultiObjectiveDse,
         {"Systolic Arrays", "Simba", "Eyeriss", "MAGNet", "BO", "RL",
          "GA", "SA"},
         false},
        {Domain::ArticulatedRobot, Paradigm::SensePlanAct,
         Phase::DomainSpecificFrontEnd,
         {"Gazebo"},
         false},
        {Domain::ArticulatedRobot, Paradigm::SensePlanAct,
         Phase::MultiObjectiveDse,
         {"SLAM accelerators", "OctoMap", "Murray et al.",
          "Robomorphic Computing", "RACOD", "BO", "RL", "GA", "SA"},
         false},
        {Domain::ArticulatedRobot, Paradigm::EndToEnd,
         Phase::DomainSpecificBackEnd,
         {"ANYpulator safety model"},
         false},
    };
    return table;
}

std::vector<std::string>
componentsFor(Domain domain, Paradigm paradigm, Phase phase)
{
    std::vector<std::string> components;
    for (const TaxonomyEntry &entry : taxonomyTable()) {
        if (entry.domain == domain && entry.paradigm == paradigm &&
            entry.phase == phase) {
            components.insert(components.end(),
                              entry.components.begin(),
                              entry.components.end());
        }
    }
    return components;
}

bool
implementedHere(Domain domain, Paradigm paradigm)
{
    for (const TaxonomyEntry &entry : taxonomyTable()) {
        if (entry.domain == domain && entry.paradigm == paradigm &&
            entry.thisWork) {
            return true;
        }
    }
    return false;
}

void
printTaxonomy(std::ostream &os)
{
    util::Table table({"domain", "paradigm", "phase", "components",
                       "this work"});
    for (const TaxonomyEntry &entry : taxonomyTable()) {
        std::string components;
        for (const std::string &component : entry.components) {
            if (!components.empty())
                components += ", ";
            components += component;
        }
        table.addRow({domainName(entry.domain),
                      paradigmName(entry.paradigm),
                      phaseName(entry.phase), components,
                      entry.thisWork ? "*" : ""});
    }
    table.print(os);
}

} // namespace autopilot::core
