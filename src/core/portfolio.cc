#include "core/portfolio.h"

#include <algorithm>
#include <set>

#include "core/fine_tuning.h"
#include "util/logging.h"

namespace autopilot::core
{

std::string
PortfolioCell::name() const
{
    return uav::uavClassName(vehicle.uavClass) + "/" +
           airlearning::densityName(density);
}

double
PortfolioResult::meanDegradationPct() const
{
    if (assignments.empty())
        return 0.0;
    double sum = 0.0;
    for (const CellAssignment &assignment : assignments)
        sum += assignment.degradationPct;
    return sum / assignments.size();
}

double
PortfolioResult::maxDegradationPct() const
{
    double worst = 0.0;
    for (const CellAssignment &assignment : assignments)
        worst = std::max(worst, assignment.degradationPct);
    return worst;
}

PortfolioSelector::PortfolioSelector(const TaskSpec &base_task)
    : baseTask(base_task)
{
    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        TaskSpec task = baseTask;
        task.density = density;
        pilots.emplace(density, AutoPilot(task));
        for (const uav::UavSpec &vehicle : uav::allUavs())
            cellList.push_back({vehicle, density});
    }
}

double
PortfolioSelector::cellValue(const systolic::AcceleratorConfig &config,
                             const PortfolioCell &cell,
                             double *missions_out, double *success_out)
{
    const std::string key = config.name() + "@" + cell.name();
    const auto cached = valueCache.find(key);
    double missions = 0.0;
    double success = 0.0;
    if (cached != valueCache.end()) {
        missions = cached->second.first;
        success = cached->second.second;
    } else {
        AutoPilot &pilot = pilots.at(cell.density);
        const auto best =
            pilot.phase1().best(cell.density);
        util::panicIf(!best.has_value(),
                      "PortfolioSelector: empty policy database");

        dse::DesignPoint point;
        point.policy = best->params;
        point.accel = config;
        const dse::Evaluation eval =
            ArchitecturalTuner::reevaluate(point, best->successRate);
        const FullSystemDesign design =
            AutoPilot::mapToFullSystem(eval, cell.vehicle);
        missions = design.mission.numMissions;
        success = best->successRate;
        valueCache.emplace(key, std::make_pair(missions, success));
    }
    if (missions_out)
        *missions_out = missions;
    if (success_out)
        *success_out = success;
    return missions * success;
}

PortfolioResult
PortfolioSelector::select(int max_designs)
{
    util::fatalIf(max_designs <= 0,
                  "PortfolioSelector: max_designs must be positive");

    // Candidate pool: distinct accelerator configurations from every
    // scenario's Phase 3 candidate set (evaluated on that scenario's
    // reference vehicle set inside candidatesFor).
    std::vector<systolic::AcceleratorConfig> pool;
    std::set<std::string> seen;
    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        AutoPilot &pilot = pilots.at(density);
        for (const FullSystemDesign &candidate :
             pilot.candidatesFor(uav::zhangNano())) {
            const systolic::AcceleratorConfig &config =
                candidate.eval.point.accel;
            if (seen.insert(config.name()).second)
                pool.push_back(config);
        }
    }
    util::fatalIf(pool.empty(), "PortfolioSelector: empty design pool");

    // Per-cell optimum over the whole pool (the "custom silicon
    // everywhere" reference).
    std::vector<double> cell_optimal(cellList.size(), 0.0);
    for (std::size_t c = 0; c < cellList.size(); ++c) {
        for (const systolic::AcceleratorConfig &config : pool) {
            double missions = 0.0;
            cellValue(config, cellList[c], &missions, nullptr);
            cell_optimal[c] = std::max(cell_optimal[c], missions);
        }
    }

    // Greedy cover: each round add the configuration with the largest
    // marginal fleet value.
    PortfolioResult result;
    std::vector<double> best_value(cellList.size(), 0.0);
    for (int round = 0; round < max_designs; ++round) {
        double best_gain = 0.0;
        const systolic::AcceleratorConfig *best_config = nullptr;
        for (const systolic::AcceleratorConfig &config : pool) {
            double gain = 0.0;
            for (std::size_t c = 0; c < cellList.size(); ++c) {
                const double value =
                    cellValue(config, cellList[c], nullptr, nullptr);
                gain += std::max(0.0, value - best_value[c]);
            }
            if (gain > best_gain) {
                best_gain = gain;
                best_config = &config;
            }
        }
        if (best_config == nullptr || best_gain <= 1e-9)
            break; // No configuration improves any cell.
        result.accelerators.push_back(*best_config);
        for (std::size_t c = 0; c < cellList.size(); ++c) {
            best_value[c] = std::max(
                best_value[c],
                cellValue(*best_config, cellList[c], nullptr, nullptr));
        }
    }

    // Final assignment: each cell served by its best portfolio member.
    for (std::size_t c = 0; c < cellList.size(); ++c) {
        CellAssignment assignment;
        assignment.cellName = cellList[c].name();
        double best = -1.0;
        for (std::size_t d = 0; d < result.accelerators.size(); ++d) {
            double missions = 0.0;
            double success = 0.0;
            const double value = cellValue(result.accelerators[d],
                                           cellList[c], &missions,
                                           &success);
            if (value > best) {
                best = value;
                assignment.designIndex = d;
                assignment.missions = missions;
                assignment.successRate = success;
            }
        }
        assignment.cellOptimalMissions = cell_optimal[c];
        assignment.degradationPct =
            cell_optimal[c] > 0.0
                ? 100.0 * (1.0 - assignment.missions / cell_optimal[c])
                : 0.0;
        result.assignments.push_back(assignment);
    }
    return result;
}

} // namespace autopilot::core
