/**
 * @file
 * Baseline compute platforms (Section V-A / Table V).
 *
 * The paper compares AutoPilot-generated DSSoCs against general-purpose
 * boards (Jetson TX2, Xavier NX, Intel NCS) and the PULP-DroNet chip.
 * These are modelled at spec level - achieved effective GMAC/s on
 * batch-1 INT8/FP16 policy inference, board power while running, and
 * board mass (module + carrier, heatsink included) - which is exactly how
 * the paper treats them (PULP's 6 FPS @ 64 mW is taken from its paper
 * "as is", an optimistic assumption the comparison keeps).
 */

#ifndef AUTOPILOT_CORE_BASELINES_H
#define AUTOPILOT_CORE_BASELINES_H

#include <string>
#include <vector>

#include "nn/model.h"

namespace autopilot::core
{

/** Spec-level model of an off-the-shelf compute platform. */
struct BaselinePlatform
{
    std::string name;
    double effectiveGmacPerS = 0.0; ///< Achieved batch-1 throughput.
    double runPowerW = 0.0;         ///< Board power while inferring.
    double massGrams = 0.0;         ///< Board + heatsink mass.
    bool fixedThroughput = false;   ///< True: fps is model-independent.
    double fixedFps = 0.0;          ///< Used when fixedThroughput.

    /** Inference rate for a given policy network, frames/s. */
    double framesPerSecond(const nn::Model &model) const;
};

/** NVIDIA Jetson TX2 (general purpose). */
BaselinePlatform jetsonTx2();

/** NVIDIA Xavier NX (general purpose). */
BaselinePlatform xavierNx();

/** Intel Neural Compute Stick (general purpose, Table V). */
BaselinePlatform intelNcs();

/**
 * PULP / GAP8 running DroNet [60]: the paper's optimistic assumption of
 * 6 FPS at 64 mW even for the 109x larger AutoPilot policies.
 */
BaselinePlatform pulpDronet();

/** The Fig. 5 comparison set: TX2, Xavier NX, PULP. */
std::vector<BaselinePlatform> figure5Baselines();

} // namespace autopilot::core

#endif // AUTOPILOT_CORE_BASELINES_H
