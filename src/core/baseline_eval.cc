#include "core/baseline_eval.h"

#include "power/soc_power.h"
#include "uav/f1_model.h"

namespace autopilot::core
{

BaselineMissionResult
evaluateBaselineOnUav(const BaselinePlatform &platform,
                      const nn::Model &model, const uav::UavSpec &uav)
{
    BaselineMissionResult result;
    result.platformName = platform.name;
    result.fps = platform.framesPerSecond(model);
    // The board still needs the camera and its interface.
    result.computePowerW =
        power::socPower(platform.runPowerW).totalW();
    result.payloadGrams = platform.massGrams;

    const uav::MissionModel mission_model(uav);
    const uav::F1Model f1(uav, result.payloadGrams);
    result.sensorFps =
        mission_model.selectSensorFps(f1.kneeThroughputHz());
    result.mission = mission_model.evaluate(
        result.payloadGrams, result.computePowerW, result.fps,
        static_cast<double>(result.sensorFps));
    return result;
}

} // namespace autopilot::core
