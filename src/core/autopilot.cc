#include "core/autopilot.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "dse/eval_backend.h"
#include "io/journal.h"
#include "power/mass_model.h"
#include "uav/f1_model.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::core
{

std::string
strategyName(DesignStrategy strategy)
{
    switch (strategy) {
      case DesignStrategy::HighThroughput: return "HT";
      case DesignStrategy::LowPower:       return "LP";
      case DesignStrategy::HighEfficiency: return "HE";
      case DesignStrategy::AutoPilotPick:  return "AP";
    }
    return "?";
}

std::uint64_t
taskFingerprint(const TaskSpec &task)
{
    std::ostringstream key;
    key.precision(17);
    key << airlearning::densityName(task.density) << '|'
        << task.validationEpisodes << '|' << task.dseBudget << '|'
        << task.successTolerance << '|' << task.maxLatencyMs << '|'
        << task.seed << '|' << task.backend << '|' << task.optimizer
        << '|' << task.contention.cameraBytesPerSec << '|'
        << task.contention.hostBytesPerSec << '|'
        << task.contention.npuFloorFraction;
    // A disabled DramSpec contributes nothing (like the default mix
    // below), so every pre-dram checkpoint and journal keeps its
    // fingerprint and stays resumable.
    if (task.dram.enabled())
        key << "|dram|" << task.dram.fingerprintText();
    // The default int8-only precision set contributes nothing, so every
    // pre-precision checkpoint and journal keeps its fingerprint and
    // stays resumable.
    if (task.precisions != std::vector<int>{1})
        key << "|precision|"
            << systolic::formatPrecisionList(task.precisions);
    // The default mix contributes nothing, so every pre-mix checkpoint
    // and journal keeps its fingerprint and stays resumable.
    if (!task.missionMix.isDefault()) {
        for (const uav::MissionScenario &scenario :
             task.missionMix.scenarios) {
            key << "|mix|" << scenario.name << '|'
                << uav::airframeKindName(scenario.airframe) << '|'
                << uav::missionClassName(scenario.profile.missionClass)
                << '|' << scenario.profile.distanceM << '|'
                << scenario.profile.searchAreaM2 << '|'
                << scenario.profile.laneSpacingM << '|'
                << scenario.profile.deliveryPayloadG << '|'
                << scenario.weight;
        }
    }
    // FNV-1a, 64-bit.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : key.str()) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

AutoPilot::AutoPilot(const TaskSpec &task, util::ThreadPool *sharedPool)
    : AutoPilot(task)
{
    externalPool = sharedPool;
}

AutoPilot::AutoPilot(const TaskSpec &task) : taskSpec(task)
{
    util::fatalIf(taskSpec.validationEpisodes <= 0 ||
                      taskSpec.dseBudget <= 0,
                  "AutoPilot: budgets must be positive");
    util::fatalIf(taskSpec.successTolerance < 0.0 ||
                      taskSpec.successTolerance > 1.0,
                  "AutoPilot: success tolerance outside [0, 1]");
    util::fatalIf(taskSpec.threads < 0,
                  "AutoPilot: thread count must be >= 0");
    util::fatalIf(
        !dse::BackendRegistry::instance().knows(taskSpec.backend),
        "AutoPilot: unknown cost-model backend '" + taskSpec.backend +
            "'");
    taskSpec.contention.validate();
    taskSpec.dram.validate();
    util::fatalIf(taskSpec.dram.enabled() &&
                      taskSpec.contention.enabled(),
                  "AutoPilot: configure background DRAM traffic either "
                  "as a flat contention profile or as bank-level "
                  "traffic generators, not both - the two encode the "
                  "same streams at different fidelities and would be "
                  "billed twice");
    bool optimizerKnown = false;
    for (const std::string &candidate : dse::optimizerNames())
        optimizerKnown = optimizerKnown || candidate == taskSpec.optimizer;
    util::fatalIf(!optimizerKnown, "AutoPilot: unknown optimizer '" +
                                       taskSpec.optimizer + "'");
    taskSpec.missionMix.validate();
    util::fatalIf(taskSpec.precisions.empty(),
                  "AutoPilot: precision set must not be empty");
    int previousWidth = 0;
    for (const int width : taskSpec.precisions) {
        util::fatalIf(width != 1 && width != 2 && width != 4,
                      "AutoPilot: unsupported precision width " +
                          std::to_string(width) +
                          " bytes (want 1, 2 or 4)");
        util::fatalIf(width <= previousWidth,
                      "AutoPilot: precision set must be strictly "
                      "ascending");
        previousWidth = width;
    }
    if (!taskSpec.checkpointDir.empty())
        std::filesystem::create_directories(taskSpec.checkpointDir);
    if (taskSpec.telemetry)
        util::Telemetry::instance().setEnabled(true);
}

util::ThreadPool *
AutoPilot::workerPool()
{
    if (externalPool != nullptr)
        return externalPool; // Shared across pipelines (service mode).
    if (taskSpec.threads == 1)
        return nullptr; // Serial on the calling thread.
    if (!pool) {
        pool = std::make_unique<util::ThreadPool>(
            static_cast<std::size_t>(taskSpec.threads));
    }
    return pool.get();
}

const airlearning::PolicyDatabase &
AutoPilot::phase1()
{
    if (phase1Done)
        return database;
    // Before-phase check: a task whose deadline already passed (or
    // whose service is draining) must not launch a training phase it
    // can never finish in time.
    taskSpec.cancel.check("Phase 1 start");

    const std::string checkpointPath =
        taskSpec.checkpointDir.empty()
            ? std::string()
            : taskSpec.checkpointDir + "/policies.chk";
    const std::uint64_t fingerprint = taskFingerprint(taskSpec);

    if (taskSpec.resume && !checkpointPath.empty()) {
        const io::PolicyCheckpoint checkpoint =
            io::readPolicyCheckpoint(checkpointPath);
        if (checkpoint.found && checkpoint.ok &&
            checkpoint.fingerprint == fingerprint) {
            database = checkpoint.db;
            phase1Done = true;
            return database;
        }
        if (checkpoint.found) {
            util::warn(
                "AutoPilot: ignoring policy checkpoint '" +
                checkpointPath + "' (" +
                (checkpoint.ok ? std::string("task fingerprint mismatch")
                               : "corrupt: " + checkpoint.reason) +
                "); retraining Phase 1");
        }
    }

    {
        util::TraceSpan span("phase1", "autopilot");
        airlearning::TrainerConfig trainer_config;
        trainer_config.validationEpisodes = taskSpec.validationEpisodes;
        trainer_config.seed = taskSpec.seed;
        const airlearning::Trainer trainer(trainer_config);
        trainer.trainAll(nn::PolicySpace(), taskSpec.density, database,
                         workerPool());
        phase1Done = true;
    }
    if (!checkpointPath.empty())
        io::writePolicyCheckpoint(checkpointPath, fingerprint, database);
    return database;
}

const dse::OptimizerResult &
AutoPilot::phase2()
{
    if (phase2Done)
        return dseResult;

    dse::DseEvaluator evaluator(phase1(), taskSpec.density,
                                taskSpec.backend, taskSpec.contention,
                                taskSpec.dram, taskSpec.precisions);
    taskSpec.cancel.check("Phase 2 start");
    util::TraceSpan span("phase2", "autopilot");
    evaluator.setThreadPool(workerPool());
    // Batch-boundary cancellation: the evaluator re-checks this token
    // at every evaluateBatch() entry, so an expired deadline stops the
    // optimizer within one batch instead of burning the whole Phase 2
    // budget, and the journal still holds only whole batches.
    evaluator.setCancelToken(taskSpec.cancel);
    // Journal rows record which fleet workload drove the campaign.
    evaluator.setScenarioTag(taskSpec.missionMix.tag());

    // Journaling: replay any fingerprint-matched journal prefix into
    // the memo cache (the optimizer then replays its recorded
    // trajectory with those points costing no simulation), and hook
    // the evaluator so each newly committed batch is appended and
    // flushed - a kill loses at most the in-flight batch.
    std::unique_ptr<io::EvalJournalWriter> journal;
    if (!taskSpec.checkpointDir.empty()) {
        const std::string journalPath =
            taskSpec.checkpointDir + "/journal.csv";
        const std::uint64_t fingerprint = taskFingerprint(taskSpec);
        std::vector<dse::Evaluation> replayed;
        if (taskSpec.resume) {
            io::JournalReplay replay = io::readEvalJournal(journalPath);
            if (replay.found && replay.fingerprint == fingerprint) {
                if (replay.truncated) {
                    util::warn("AutoPilot: journal '" + journalPath +
                               "' torn at line " +
                               std::to_string(replay.badLine) + " (" +
                               replay.reason + "); replaying " +
                               std::to_string(replay.entries.size()) +
                               " intact rows");
                }
                replayed = std::move(replay.entries);
            } else if (replay.found) {
                util::warn("AutoPilot: ignoring journal '" +
                           journalPath +
                           "' (task fingerprint mismatch); starting "
                           "Phase 2 fresh");
            }
        }
        evaluator.preload(replayed);
        journal = std::make_unique<io::EvalJournalWriter>(
            journalPath, fingerprint, replayed,
            taskSpec.precisions.size() > 1);
        evaluator.setJournalSink(
            [writer = journal.get()](
                std::span<const dse::Evaluation> batch) {
                writer->append(batch);
            });
    }

    const std::unique_ptr<dse::Optimizer> optimizer =
        dse::makeOptimizer(taskSpec.optimizer);
    dse::OptimizerConfig config;
    config.evaluationBudget = taskSpec.dseBudget;
    config.seed = taskSpec.seed ^ 0xB0;
    dseResult = optimizer->optimize(evaluator, config);
    phase2Done = true;
    return dseResult;
}

FullSystemDesign
AutoPilot::mapToFullSystem(const dse::Evaluation &eval,
                           const uav::UavSpec &uav)
{
    return mapToFullSystem(eval, uav, uav::MissionMix{});
}

FullSystemDesign
AutoPilot::mapToFullSystem(const dse::Evaluation &eval,
                           const uav::UavSpec &uav,
                           const uav::MissionMix &mix)
{
    FullSystemDesign design;
    design.eval = eval;
    design.tdpW = eval.npuPowerW;

    const power::MassModel mass_model;
    design.payloadGrams = mass_model.computePayloadGrams(design.tdpW);

    double weighted = 0.0;
    double total_weight = 0.0;
    for (const uav::MissionScenario &scenario :
         uav::effectiveScenarios(mix)) {
        const uav::MissionModel mission_model(uav, scenario.airframe,
                                              scenario.profile);
        // Sensor selection is per scenario: each airframe has its own
        // knee (the quadrotor default reproduces the F1Model pick).
        const uav::Airframe &airframe = mission_model.airframe();
        const double knee = airframe.kneeThroughputHz(
            airframe.totalMassGrams(design.payloadGrams));
        ScenarioOutcome outcome;
        outcome.name = scenario.name;
        outcome.airframe = scenario.airframe;
        outcome.weight = scenario.weight;
        outcome.sensorFps = mission_model.selectSensorFps(knee);
        outcome.mission = mission_model.evaluate(
            design.payloadGrams, eval.socPowerW, eval.fps,
            static_cast<double>(outcome.sensorFps));
        weighted += scenario.weight * outcome.mission.numMissions;
        total_weight += scenario.weight;
        design.scenarios.push_back(std::move(outcome));
    }
    design.sensorFps = design.scenarios.front().sensorFps;
    design.mission = design.scenarios.front().mission;
    design.weightedMissions = weighted / total_weight;
    return design;
}

std::vector<FullSystemDesign>
AutoPilot::candidatesFor(const uav::UavSpec &uav)
{
    const dse::OptimizerResult &result = phase2();
    util::fatalIf(result.archive.empty(),
                  "AutoPilot: Phase 2 produced no evaluations");
    taskSpec.cancel.check("Phase 3 start");

    double best_success = 0.0;
    for (const dse::Evaluation &eval : result.archive)
        best_success = std::max(best_success, eval.successRate);

    // Map the surviving archive entries to full-system designs in
    // parallel (the mission-model evaluation per candidate is
    // independent), then partition in archive order so the candidate
    // list is identical across thread counts.
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < result.archive.size(); ++i) {
        if (result.archive[i].successRate + taskSpec.successTolerance >=
            best_success)
            survivors.push_back(i);
    }
    std::vector<FullSystemDesign> mapped(survivors.size());
    util::parallel_for(workerPool(), survivors.size(),
                       [&](std::size_t s) {
                           mapped[s] = mapToFullSystem(
                               result.archive[survivors[s]], uav,
                               taskSpec.missionMix);
                       });

    std::vector<FullSystemDesign> candidates;
    std::vector<FullSystemDesign> latency_violators;
    for (std::size_t s = 0; s < survivors.size(); ++s) {
        const dse::Evaluation &eval = result.archive[survivors[s]];
        if (taskSpec.maxLatencyMs > 0.0 &&
            eval.latencyMs > taskSpec.maxLatencyMs) {
            latency_violators.push_back(std::move(mapped[s]));
            continue;
        }
        candidates.push_back(std::move(mapped[s]));
    }
    if (candidates.empty() && !latency_violators.empty()) {
        util::warn("AutoPilot: no candidate meets the " +
                   std::to_string(taskSpec.maxLatencyMs) +
                   " ms latency constraint; falling back to the "
                   "unconstrained set");
        return latency_violators;
    }
    return candidates;
}

FullSystemDesign
AutoPilot::selectByStrategy(
    const std::vector<FullSystemDesign> &candidates,
    DesignStrategy strategy)
{
    util::fatalIf(candidates.empty(),
                  "AutoPilot::selectByStrategy: no candidates");

    auto pick = [&](auto better) {
        const FullSystemDesign *best = &candidates.front();
        for (const FullSystemDesign &candidate : candidates) {
            if (better(candidate, *best))
                best = &candidate;
        }
        return *best;
    };

    switch (strategy) {
      case DesignStrategy::HighThroughput:
        return pick([](const FullSystemDesign &a,
                       const FullSystemDesign &b) {
            return a.eval.fps > b.eval.fps;
        });
      case DesignStrategy::LowPower:
        return pick([](const FullSystemDesign &a,
                       const FullSystemDesign &b) {
            return a.eval.socPowerW < b.eval.socPowerW;
        });
      case DesignStrategy::HighEfficiency:
        return pick([](const FullSystemDesign &a,
                       const FullSystemDesign &b) {
            return a.eval.fps / a.eval.socPowerW >
                   b.eval.fps / b.eval.socPowerW;
        });
      case DesignStrategy::AutoPilotPick:
        return pick([](const FullSystemDesign &a,
                       const FullSystemDesign &b) {
            // The fleet objective: weighted missions across the mix
            // (identical to numMissions on the default mix).
            if (a.missionScore() != b.missionScore())
                return a.missionScore() > b.missionScore();
            // Tie-break toward lower power (lighter, cooler design).
            return a.eval.socPowerW < b.eval.socPowerW;
        });
    }
    util::panic("selectByStrategy: unknown strategy");
}

AutoPilotRun
AutoPilot::designFor(const uav::UavSpec &uav)
{
    AutoPilotRun run;
    run.uav = uav;
    run.task = taskSpec;
    run.dseResult = phase2(); // Before the span: phases must not nest.
    util::TraceSpan span("phase3", "autopilot");
    run.candidates = candidatesFor(uav);
    run.selected = selectByStrategy(run.candidates,
                                    DesignStrategy::AutoPilotPick);
    return run;
}

} // namespace autopilot::core
