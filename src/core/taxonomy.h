/**
 * @file
 * The AutoPilot generalization taxonomy (Table VI): for each autonomous
 * vehicle domain and autonomy paradigm, the components that can fill
 * each of the three methodology phases. Encoded as queryable data so
 * tools can enumerate, filter and print it; the paper's own UAV/E2E row
 * (the configuration this library implements) is marked.
 */

#ifndef AUTOPILOT_CORE_TAXONOMY_H
#define AUTOPILOT_CORE_TAXONOMY_H

#include <ostream>
#include <string>
#include <vector>

namespace autopilot::core
{

/** Autonomous-vehicle domain (Table VI rows). */
enum class Domain
{
    Uav,
    SelfDrivingCar,
    ArticulatedRobot,
};

/** Autonomy algorithm paradigm. */
enum class Paradigm
{
    EndToEnd,
    SensePlanAct,
    Hybrid, ///< PPC + NN (self-driving).
};

/** Methodology phase (Fig. 1 / Table VI columns). */
enum class Phase
{
    DomainSpecificFrontEnd,
    MultiObjectiveDse,
    DomainSpecificBackEnd,
};

std::string domainName(Domain domain);
std::string paradigmName(Paradigm paradigm);
std::string phaseName(Phase phase);

/** One Table VI entry. */
struct TaxonomyEntry
{
    Domain domain = Domain::Uav;
    Paradigm paradigm = Paradigm::EndToEnd;
    Phase phase = Phase::DomainSpecificFrontEnd;
    std::vector<std::string> components;
    bool thisWork = false; ///< Highlighted (green) in the paper.
};

/** The full Table VI content. */
const std::vector<TaxonomyEntry> &taxonomyTable();

/** Entries for one (domain, paradigm, phase) cell. */
std::vector<std::string> componentsFor(Domain domain, Paradigm paradigm,
                                       Phase phase);

/** True when the library implements this (domain, paradigm) row. */
bool implementedHere(Domain domain, Paradigm paradigm);

/** Print the taxonomy as the paper's Table VI layout. */
void printTaxonomy(std::ostream &os);

} // namespace autopilot::core

#endif // AUTOPILOT_CORE_TAXONOMY_H
