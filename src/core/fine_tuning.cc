#include "core/fine_tuning.h"

#include <algorithm>

#include "power/npu_power.h"
#include "power/soc_power.h"
#include "power/technology.h"
#include "systolic/engine.h"
#include "util/logging.h"

namespace autopilot::core
{

dse::Evaluation
ArchitecturalTuner::reevaluate(const dse::DesignPoint &point,
                               double success_rate, int technology_nm)
{
    util::fatalIf(success_rate < 0.0 || success_rate > 1.0,
                  "ArchitecturalTuner: success rate outside [0, 1]");

    dse::Evaluation eval;
    eval.point = point;
    eval.successRate = success_rate;

    const nn::Model model = nn::buildE2EModel(point.policy);
    const systolic::AnalyticalEngine engine(point.accel);
    const systolic::RunResult run = engine.run(model);

    const power::TechnologyNode node =
        power::technologyNode(technology_nm);
    const power::NpuPowerModel npu(point.accel, node);
    eval.npuPowerW = npu.averagePowerW(run);
    eval.socPowerW = power::socPower(eval.npuPowerW).totalW();
    eval.latencyMs = run.runtimeSeconds(point.accel.clockGhz) * 1e3;
    eval.fps = run.framesPerSecond(point.accel.clockGhz);
    eval.objectives = {1.0 - eval.successRate, eval.socPowerW,
                       eval.latencyMs};
    return eval;
}

dse::Evaluation
ArchitecturalTuner::scaleFrequency(const dse::Evaluation &eval,
                                   double target_fps, double min_ghz,
                                   double max_ghz)
{
    util::fatalIf(target_fps <= 0.0,
                  "scaleFrequency: target fps must be positive");
    util::fatalIf(min_ghz <= 0.0 || max_ghz < min_ghz,
                  "scaleFrequency: bad clock window");
    util::fatalIf(eval.fps <= 0.0,
                  "scaleFrequency: evaluation has no throughput");

    dse::DesignPoint tuned = eval.point;
    const double ratio = target_fps / eval.fps;
    tuned.accel.clockGhz =
        std::clamp(tuned.accel.clockGhz * ratio, min_ghz, max_ghz);
    return reevaluate(tuned, eval.successRate);
}

dse::Evaluation
ArchitecturalTuner::scaleTechnology(const dse::Evaluation &eval,
                                    int technology_nm)
{
    const power::TechnologyNode node =
        power::technologyNode(technology_nm);
    dse::DesignPoint tuned = eval.point;
    tuned.accel.clockGhz *= node.frequencyScale;
    return reevaluate(tuned, eval.successRate, technology_nm);
}

} // namespace autopilot::core
