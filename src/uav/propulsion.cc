#include "uav/propulsion.h"

#include <cmath>

#include "util/logging.h"

namespace autopilot::uav
{

namespace
{

double
weightNewtons(const UavSpec &spec, double total_mass_g)
{
    util::fatalIf(total_mass_g <= 0.0,
                  "propulsion: total mass must be positive");
    util::fatalIf(total_mass_g < spec.baseMassGrams,
                  "propulsion: total mass below base mass");
    return total_mass_g * 1e-3 * gravity;
}

} // namespace

double
maxAccelerationMps2(const UavSpec &spec, double total_mass_g)
{
    const double weight = weightNewtons(spec, total_mass_g);
    const double thrust_ratio = spec.maxThrustNewtons / weight;
    if (thrust_ratio <= 1.0)
        return 0.0;
    return gravity * std::sqrt(thrust_ratio * thrust_ratio - 1.0);
}

bool
canHover(const UavSpec &spec, double total_mass_g)
{
    return spec.maxThrustNewtons > weightNewtons(spec, total_mass_g);
}

double
hoverInducedVelocityMps(const UavSpec &spec, double total_mass_g)
{
    const double weight = weightNewtons(spec, total_mass_g);
    return std::sqrt(weight / (2.0 * airDensity * spec.rotorDiskAreaM2));
}

double
inducedVelocityMps(const UavSpec &spec, double total_mass_g,
                   double velocity_mps)
{
    util::fatalIf(velocity_mps < 0.0,
                  "inducedVelocityMps: negative velocity");
    const double vh = hoverInducedVelocityMps(spec, total_mass_g);
    const double vh2 = vh * vh;
    // Fixed-point iteration on v_i = v_h^2 / sqrt(v^2 + v_i^2); converges
    // monotonically from v_h for all v >= 0.
    double vi = vh;
    for (int iter = 0; iter < 64; ++iter) {
        const double next =
            vh2 / std::sqrt(velocity_mps * velocity_mps + vi * vi);
        if (std::abs(next - vi) < 1e-9)
            return next;
        vi = 0.5 * (vi + next);
    }
    return vi;
}

double
rotorPowerW(const UavSpec &spec, double total_mass_g, double velocity_mps)
{
    const double weight = weightNewtons(spec, total_mass_g);
    const double vi =
        inducedVelocityMps(spec, total_mass_g, velocity_mps);
    const double induced = weight * vi / spec.propulsiveEfficiency;
    const double parasite = 0.5 * airDensity * spec.dragAreaM2 *
                            velocity_mps * velocity_mps * velocity_mps /
                            spec.parasiteEfficiency;
    return induced + parasite;
}

} // namespace autopilot::uav
