#include "uav/uav_spec.h"

#include "uav/propulsion.h"
#include "util/logging.h"

namespace autopilot::uav
{

std::string
uavClassName(UavClass uav_class)
{
    switch (uav_class) {
      case UavClass::Mini:  return "mini";
      case UavClass::Micro: return "micro";
      case UavClass::Nano:  return "nano";
    }
    return "?";
}

double
UavSpec::batteryEnergyJ() const
{
    // mAh * V = mWh; * 3.6 = J; derated to the usable fraction.
    return batteryMah * batteryVolts * 3.6 * usableBatteryFraction;
}

double
UavSpec::hoverEnduranceMinutes(double total_mass_g) const
{
    const double hover_w = rotorPowerW(*this, total_mass_g, 0.0) +
                           otherElectronicsW;
    return batteryEnergyJ() / hover_w / 60.0;
}

void
UavSpec::validate() const
{
    using util::fatalIf;
    fatalIf(batteryMah <= 0.0 || batteryVolts <= 0.0,
            "UavSpec: battery parameters must be positive (" + name + ")");
    fatalIf(usableBatteryFraction <= 0.0 || usableBatteryFraction > 1.0,
            "UavSpec: usable battery fraction outside (0, 1] (" + name +
            ")");
    fatalIf(baseMassGrams <= 0.0,
            "UavSpec: base mass must be positive (" + name + ")");
    fatalIf(maxThrustNewtons <= 0.0 || rotorDiskAreaM2 <= 0.0,
            "UavSpec: propulsion parameters must be positive (" + name +
            ")");
    fatalIf(propulsiveEfficiency <= 0.0 || propulsiveEfficiency > 1.0,
            "UavSpec: propulsive efficiency outside (0, 1] (" + name + ")");
    fatalIf(parasiteEfficiency <= 0.0 || parasiteEfficiency > 1.0,
            "UavSpec: parasite efficiency outside (0, 1] (" + name + ")");
    fatalIf(senseDistanceM <= 0.0 || clearancePerDecisionM <= 0.0,
            "UavSpec: perception constants must be positive (" + name +
            ")");
    fatalIf(missionDistanceM <= 0.0,
            "UavSpec: mission distance must be positive (" + name + ")");
    fatalIf(sensorFpsChoices.empty(),
            "UavSpec: no sensor rate choices (" + name + ")");
}

UavSpec
ascTecPelican()
{
    UavSpec spec;
    spec.name = "AscTec Pelican";
    spec.uavClass = UavClass::Mini;
    spec.batteryMah = 6250.0;
    spec.batteryVolts = 11.1;
    spec.baseMassGrams = 1650.0;
    spec.maxThrustNewtons = 32.4;    // Thrust-to-weight ~2.0 on the frame.
    spec.rotorDiskAreaM2 = 0.2027;   // 4 x 10-inch propellers.
    spec.dragAreaM2 = 0.010;
    spec.otherElectronicsW = 2.0;
    // A mini-UAV flies higher with wider clearances: longer sensing
    // range and more blind travel allowed per decision, so its F-1 knee
    // sits far below the nano's (Fig. 11's agility argument in reverse).
    spec.senseDistanceM = 8.0;
    spec.clearancePerDecisionM = 0.6;
    spec.missionDistanceM = 2000.0;
    spec.fixedHoverSeconds = 10.0;
    spec.validate();
    return spec;
}

UavSpec
djiSpark()
{
    UavSpec spec;
    spec.name = "DJI Spark";
    spec.uavClass = UavClass::Micro;
    spec.batteryMah = 1480.0;
    spec.batteryVolts = 11.4;
    spec.baseMassGrams = 300.0;
    spec.maxThrustNewtons = 3.87;    // Calibrated: 27 Hz F-1 knee point.
    spec.rotorDiskAreaM2 = 0.0448;   // 4 x 4.7-inch propellers.
    spec.dragAreaM2 = 0.020;
    spec.otherElectronicsW = 0.5;
    spec.missionDistanceM = 1000.0;
    spec.fixedHoverSeconds = 8.0;
    spec.validate();
    return spec;
}

UavSpec
zhangNano()
{
    UavSpec spec;
    spec.name = "Zhang et al. nano";
    spec.uavClass = UavClass::Nano;
    spec.batteryMah = 500.0;
    spec.batteryVolts = 7.4;
    spec.baseMassGrams = 50.0;
    spec.maxThrustNewtons = 1.58;    // Calibrated: 46 Hz F-1 knee point.
    spec.rotorDiskAreaM2 = 0.00665;  // 4 x 46-mm propellers.
    // Clean 50 g airframe: small enough that energy-per-meter keeps
    // falling up to the braking ceiling (Eq. 4's premise that higher
    // safe velocity means more missions).
    spec.dragAreaM2 = 0.0012;
    spec.otherElectronicsW = 0.1;
    spec.missionDistanceM = 250.0;
    spec.fixedHoverSeconds = 5.0;
    spec.validate();
    return spec;
}

std::vector<UavSpec>
allUavs()
{
    return {ascTecPelican(), djiSpark(), zhangNano()};
}

} // namespace autopilot::uav
