#include "uav/fixed_wing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "uav/propulsion.h"
#include "util/logging.h"

namespace autopilot::uav
{

void
FixedWingParams::validate() const
{
    util::fatalIf(!(wingAreaM2 > 0.0),
                  "FixedWingParams: wing area must be > 0");
    util::fatalIf(!(clMax > 0.0), "FixedWingParams: CLmax must be > 0");
    util::fatalIf(!(liftToDrag > 1.0),
                  "FixedWingParams: lift-to-drag must be > 1");
    util::fatalIf(!(maxLoadFactor > 1.0),
                  "FixedWingParams: max load factor must be > 1");
    util::fatalIf(
        !(cruiseEfficiencyEta > 0.0) || cruiseEfficiencyEta > 1.0,
        "FixedWingParams: cruise efficiency must be in (0, 1]");
    util::fatalIf(!(cruiseThrustFraction > 0.0),
                  "FixedWingParams: cruise thrust fraction must be > 0");
    util::fatalIf(!(launchPowerFactor >= 1.0),
                  "FixedWingParams: launch power factor must be >= 1");
}

FixedWingParams
defaultFixedWingParams(const UavSpec &spec)
{
    FixedWingParams params;
    // Wing sized off the rotor disk: 4x the disk area puts the stall
    // floor of a same-mass conversion at roughly 40% of the rotorcraft
    // ceiling, so both the floor and the ceiling are exercised inside
    // the vehicle's F-1 throughput range.
    params.wingAreaM2 = 4.0 * spec.rotorDiskAreaM2;
    return params;
}

FixedWingAirframe::FixedWingAirframe(const UavSpec &spec)
    : FixedWingAirframe(spec, defaultFixedWingParams(spec))
{
}

FixedWingAirframe::FixedWingAirframe(const UavSpec &spec,
                                     const FixedWingParams &params)
    : Airframe(spec), wing(params)
{
    wing.validate();
}

double
FixedWingAirframe::weightNewtons(double total_mass_g) const
{
    return total_mass_g / 1000.0 * gravity;
}

double
FixedWingAirframe::cruiseThrustN() const
{
    return uavSpec.maxThrustNewtons * wing.cruiseThrustFraction;
}

double
FixedWingAirframe::stallSpeedMps(double total_mass_g) const
{
    const double weight = weightNewtons(total_mass_g);
    return std::sqrt(2.0 * weight /
                     (airDensity * wing.wingAreaM2 * wing.clMax));
}

double
FixedWingAirframe::sustainedLoadFactor(double total_mass_g) const
{
    // A level turn at load factor n multiplies drag by n; sustaining it
    // needs thrust T >= n W / (L/D), so n_thrust = T (L/D) / W. The
    // structural limit caps it; heavier vehicles turn flatter.
    const double weight = weightNewtons(total_mass_g);
    const double n_thrust = cruiseThrustN() * wing.liftToDrag / weight;
    return std::min(n_thrust, wing.maxLoadFactor);
}

bool
FixedWingAirframe::canFly(double total_mass_g) const
{
    // Level flight needs thrust for drag at 1 g (n >= 1) and a stall
    // floor that fits under the avoidance ceiling.
    if (sustainedLoadFactor(total_mass_g) <= 1.0)
        return false;
    return stallSpeedMps(total_mass_g) <=
           velocityCeilingMps(total_mass_g);
}

double
FixedWingAirframe::velocityCeilingMps(double total_mass_g) const
{
    // Obstacle avoidance is a banked turn: lateral acceleration
    // g sqrt(n^2 - 1) must displace the vehicle within its sensing
    // range, the winged analogue of the rotorcraft braking bound.
    const double n = sustainedLoadFactor(total_mass_g);
    if (n <= 1.0)
        return 0.0;
    const double lateral = gravity * std::sqrt(n * n - 1.0);
    const double avoidance =
        std::sqrt(2.0 * lateral * uavSpec.senseDistanceM);
    return std::min(avoidance, uavSpec.structuralMaxMps);
}

double
FixedWingAirframe::minAirspeedMps(double total_mass_g) const
{
    return stallSpeedMps(total_mass_g);
}

double
FixedWingAirframe::safeVelocityMps(double throughput_hz,
                                   double total_mass_g) const
{
    util::fatalIf(throughput_hz < 0.0,
                  "FixedWingAirframe::safeVelocityMps: negative throughput");
    const double slope_bound =
        uavSpec.clearancePerDecisionM * throughput_hz;
    const double bound =
        std::min(slope_bound, velocityCeilingMps(total_mass_g));
    // Below stall the wing cannot hold altitude at all: the envelope is
    // empty rather than slow.
    if (bound < stallSpeedMps(total_mass_g))
        return 0.0;
    return bound;
}

double
FixedWingAirframe::kneeThroughputHz(double total_mass_g) const
{
    return velocityCeilingMps(total_mass_g) /
           uavSpec.clearancePerDecisionM;
}

double
FixedWingAirframe::propulsionPowerW(double total_mass_g,
                                    double velocity_mps) const
{
    util::fatalIf(velocity_mps < 0.0,
                  "FixedWingAirframe::propulsionPowerW: negative velocity");
    // Cruise power from the drag polar summarized as L/D: the wing
    // trades speed-independent J/m for the stall floor.
    const double weight = weightNewtons(total_mass_g);
    return weight * velocity_mps /
           (wing.liftToDrag * wing.cruiseEfficiencyEta);
}

double
FixedWingAirframe::overheadPowerW(double total_mass_g) const
{
    // Launch and recovery fly a climb at just above stall with a power
    // margin over cruise; replaces the rotorcraft hover overhead.
    return wing.launchPowerFactor *
           propulsionPowerW(total_mass_g, stallSpeedMps(total_mass_g));
}

double
FixedWingAirframe::turnRadiusM(double total_mass_g,
                               double velocity_mps) const
{
    const double n = sustainedLoadFactor(total_mass_g);
    if (n <= 1.0)
        return 0.0;
    const double lateral = gravity * std::sqrt(n * n - 1.0);
    return velocity_mps * velocity_mps / lateral;
}

std::string
FixedWingAirframe::infeasibleReason(double total_mass_g,
                                    double throughput_hz) const
{
    char buffer[200];
    if (sustainedLoadFactor(total_mass_g) <= 1.0) {
        const double weight = weightNewtons(total_mass_g);
        std::snprintf(buffer, sizeof(buffer),
                      "level flight at %.1f g needs %.2f N thrust but "
                      "only %.2f N is available",
                      total_mass_g, weight / wing.liftToDrag,
                      cruiseThrustN());
        return buffer;
    }
    const double stall = stallSpeedMps(total_mass_g);
    const double ceiling = velocityCeilingMps(total_mass_g);
    if (stall > ceiling) {
        std::snprintf(buffer, sizeof(buffer),
                      "stall speed %.1f m/s exceeds the %.1f m/s "
                      "avoidance ceiling at %.1f g",
                      stall, ceiling, total_mass_g);
        return buffer;
    }
    if (safeVelocityMps(throughput_hz, total_mass_g) <
        kMinSafeVelocityMps) {
        std::snprintf(buffer, sizeof(buffer),
                      "action throughput %.2f Hz bounds velocity below "
                      "the %.1f m/s stall floor",
                      throughput_hz, stall);
        return buffer;
    }
    return "";
}

} // namespace autopilot::uav
