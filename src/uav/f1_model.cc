#include "uav/f1_model.h"

#include <algorithm>
#include <cmath>

#include "uav/propulsion.h"
#include "util/logging.h"

namespace autopilot::uav
{

std::string
provisioningName(Provisioning provisioning)
{
    switch (provisioning) {
      case Provisioning::UnderProvisioned: return "under-provisioned";
      case Provisioning::Balanced:         return "balanced";
      case Provisioning::OverProvisioned:  return "over-provisioned";
    }
    return "?";
}

F1Model::F1Model(const UavSpec &spec, double compute_payload_g)
    : uavSpec(spec), payloadG(compute_payload_g)
{
    uavSpec.validate();
    util::fatalIf(compute_payload_g < 0.0,
                  "F1Model: negative compute payload");
}

double
F1Model::totalMassGrams() const
{
    return uavSpec.baseMassGrams + payloadG;
}

double
F1Model::velocityCeilingMps() const
{
    const double a_max = maxAccelerationMps2(uavSpec, totalMassGrams());
    if (a_max <= 0.0)
        return 0.0;
    const double braking =
        std::sqrt(2.0 * a_max * uavSpec.senseDistanceM);
    return std::min(braking, uavSpec.structuralMaxMps);
}

double
F1Model::safeVelocityMps(double throughput_hz) const
{
    util::fatalIf(throughput_hz < 0.0,
                  "F1Model::safeVelocityMps: negative throughput");
    const double slope_bound =
        uavSpec.clearancePerDecisionM * throughput_hz;
    return std::min(slope_bound, velocityCeilingMps());
}

double
F1Model::kneeThroughputHz() const
{
    return velocityCeilingMps() / uavSpec.clearancePerDecisionM;
}

double
F1Model::actionThroughputHz(double compute_fps, double sensor_fps) const
{
    util::fatalIf(compute_fps < 0.0 || sensor_fps < 0.0,
                  "F1Model::actionThroughputHz: negative rate");
    return std::min({compute_fps, sensor_fps, uavSpec.controlLoopHz});
}

Provisioning
F1Model::classify(double throughput_hz, double tolerance) const
{
    const double knee = kneeThroughputHz();
    if (knee <= 0.0)
        return Provisioning::OverProvisioned;
    if (throughput_hz < knee * (1.0 - tolerance))
        return Provisioning::UnderProvisioned;
    if (throughput_hz > knee * (1.0 + tolerance))
        return Provisioning::OverProvisioned;
    return Provisioning::Balanced;
}

std::vector<F1Point>
F1Model::curve(double max_hz, int samples) const
{
    util::fatalIf(max_hz <= 0.0 || samples < 2,
                  "F1Model::curve: need max_hz > 0 and samples >= 2");
    std::vector<F1Point> points;
    points.reserve(static_cast<std::size_t>(samples));
    for (int i = 0; i < samples; ++i) {
        const double hz =
            max_hz * static_cast<double>(i) / (samples - 1);
        points.push_back({hz, safeVelocityMps(hz)});
    }
    return points;
}

} // namespace autopilot::uav
