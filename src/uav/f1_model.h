/**
 * @file
 * The F-1 roofline-like visual performance model for UAVs [45], [46].
 *
 * The F-1 model plots safe velocity against action throughput (the rate of
 * the sensor-compute-control decision pipeline):
 *
 *   v_safe(theta) = min(d_clear * theta, v_ceiling(mass))
 *
 * The slope region is compute/sensor-bound: each decision allows the
 * vehicle to advance at most the obstacle-clearance distance d_clear, so
 * velocity grows linearly with decision rate. The ceiling is body-dynamics
 * bound: the vehicle must be able to brake within its sensing range, so
 * v_ceiling = sqrt(2 * a_max * d_sense) (capped by the structural limit),
 * and a_max falls as compute payload mass rises — heavier heatsinks lower
 * the roofline exactly as Fig. 4a shows. The knee point is the minimum
 * action throughput that reaches the ceiling; designs below it are
 * under-provisioned, designs far above it are over-provisioned (Fig. 4b).
 */

#ifndef AUTOPILOT_UAV_F1_MODEL_H
#define AUTOPILOT_UAV_F1_MODEL_H

#include <string>
#include <vector>

#include "uav/uav_spec.h"

namespace autopilot::uav
{

/** One sample of the F-1 curve. */
struct F1Point
{
    double throughputHz = 0.0;
    double safeVelocityMps = 0.0;
};

/** Provisioning classification of a design against the knee point. */
enum class Provisioning
{
    UnderProvisioned, ///< Below the knee: velocity is compute-bound.
    Balanced,         ///< At the knee (within tolerance).
    OverProvisioned,  ///< Beyond the knee: extra throughput buys nothing.
};

/** Human-readable provisioning label. */
std::string provisioningName(Provisioning provisioning);

/** F-1 model instance for one vehicle at one compute payload mass. */
class F1Model
{
  public:
    /**
     * @param spec              Vehicle specification.
     * @param compute_payload_g Onboard-compute mass (PCB + heatsink), g.
     */
    F1Model(const UavSpec &spec, double compute_payload_g);

    /** All-up mass in grams. */
    double totalMassGrams() const;

    /** Body-dynamics velocity ceiling, m/s (0 if the UAV cannot hover). */
    double velocityCeilingMps() const;

    /** Safe velocity at a given action throughput, m/s. */
    double safeVelocityMps(double throughput_hz) const;

    /** Knee point: minimum throughput that reaches the ceiling, Hz. */
    double kneeThroughputHz() const;

    /**
     * Action throughput of the pipeline: the slowest of sensor rate,
     * compute inference rate and control-loop rate.
     */
    double actionThroughputHz(double compute_fps, double sensor_fps) const;

    /**
     * Classify a design's throughput against the knee.
     *
     * @param throughput_hz Design's action throughput.
     * @param tolerance     Relative band around the knee considered
     *                      balanced (default 15%).
     */
    Provisioning classify(double throughput_hz,
                          double tolerance = 0.15) const;

    /** Sample the curve at @p samples evenly spaced throughputs. */
    std::vector<F1Point> curve(double max_hz, int samples) const;

    const UavSpec &spec() const { return uavSpec; }
    double computePayloadGrams() const { return payloadG; }

  private:
    UavSpec uavSpec;
    double payloadG;
};

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_F1_MODEL_H
