#include "uav/bottleneck.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::uav
{

std::string
bottleneckStageName(BottleneckStage stage)
{
    switch (stage) {
      case BottleneckStage::Sensor:       return "sensor-bound";
      case BottleneckStage::Compute:      return "compute-bound";
      case BottleneckStage::Control:      return "control-bound";
      case BottleneckStage::BodyDynamics: return "body-dynamics-bound";
    }
    return "?";
}

double
BottleneckReport::velocityLossFraction() const
{
    if (unboundedVelocityMps <= 0.0)
        return 0.0;
    return std::max(0.0,
                    1.0 - safeVelocityMps / unboundedVelocityMps);
}

BottleneckReport
analyzeBottleneck(const UavSpec &spec, double compute_payload_g,
                  double compute_fps, double sensor_fps)
{
    util::fatalIf(compute_fps <= 0.0 || sensor_fps <= 0.0,
                  "analyzeBottleneck: rates must be positive");

    const F1Model f1(spec, compute_payload_g);

    BottleneckReport report;
    report.actionThroughputHz =
        f1.actionThroughputHz(compute_fps, sensor_fps);
    report.kneeThroughputHz = f1.kneeThroughputHz();
    report.safeVelocityMps =
        f1.safeVelocityMps(report.actionThroughputHz);
    report.velocityCeilingMps = f1.velocityCeilingMps();

    const bool throughput_bound =
        report.actionThroughputHz < report.kneeThroughputHz;
    if (throughput_bound) {
        // Identify the slowest stage.
        if (sensor_fps <= compute_fps &&
            sensor_fps <= spec.controlLoopHz) {
            report.stage = BottleneckStage::Sensor;
        } else if (compute_fps <= spec.controlLoopHz) {
            report.stage = BottleneckStage::Compute;
        } else {
            report.stage = BottleneckStage::Control;
        }
        // Unbounding the slow stage lifts velocity to whatever the other
        // stages and the ceiling allow.
        double remaining = spec.controlLoopHz;
        if (report.stage != BottleneckStage::Sensor)
            remaining = std::min(remaining, sensor_fps);
        if (report.stage != BottleneckStage::Compute)
            remaining = std::min(remaining, compute_fps);
        report.unboundedVelocityMps = f1.safeVelocityMps(remaining);
    } else {
        report.stage = BottleneckStage::BodyDynamics;
        // Massless compute payload: the best ceiling this airframe can
        // reach with its current throughput.
        const F1Model unloaded(spec, 0.0);
        report.unboundedVelocityMps = std::min(
            unloaded.velocityCeilingMps(),
            unloaded.safeVelocityMps(report.actionThroughputHz));
    }
    return report;
}

} // namespace autopilot::uav
