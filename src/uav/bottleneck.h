/**
 * @file
 * F-1 bottleneck analysis (the ISPASS'22 "Roofline model for UAVs" [45]
 * companion tool): given a full system configuration, identify which
 * pipeline stage bounds the vehicle's safe velocity and quantify the
 * headroom each stage upgrade would unlock.
 */

#ifndef AUTOPILOT_UAV_BOTTLENECK_H
#define AUTOPILOT_UAV_BOTTLENECK_H

#include <string>

#include "uav/f1_model.h"
#include "uav/uav_spec.h"

namespace autopilot::uav
{

/** The stage bounding the sensor-compute-control-physics pipeline. */
enum class BottleneckStage
{
    Sensor,      ///< Sensor frame rate bounds the action throughput.
    Compute,     ///< Policy inference rate bounds the action throughput.
    Control,     ///< Flight-controller loop bounds the pipeline.
    BodyDynamics,///< Throughput suffices; thrust-to-weight caps velocity.
};

/** Human-readable stage name. */
std::string bottleneckStageName(BottleneckStage stage);

/** Full bottleneck report for one configuration. */
struct BottleneckReport
{
    BottleneckStage stage = BottleneckStage::BodyDynamics;
    double actionThroughputHz = 0.0;
    double kneeThroughputHz = 0.0;
    double safeVelocityMps = 0.0;
    double velocityCeilingMps = 0.0;
    /// Safe velocity if the bounding stage alone were made infinitely
    /// fast (for BodyDynamics: if the compute payload were massless).
    double unboundedVelocityMps = 0.0;

    /** Fraction of velocity lost to the bottleneck (0 = balanced). */
    double velocityLossFraction() const;
};

/**
 * Analyze the pipeline bottleneck of a concrete configuration.
 *
 * @param spec              Vehicle.
 * @param compute_payload_g Onboard-compute mass, grams.
 * @param compute_fps       Policy inference rate.
 * @param sensor_fps        Sensor frame rate.
 */
BottleneckReport analyzeBottleneck(const UavSpec &spec,
                                   double compute_payload_g,
                                   double compute_fps,
                                   double sensor_fps);

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_BOTTLENECK_H
