#include "uav/airframe.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "uav/fixed_wing.h"
#include "uav/propulsion.h"
#include "util/logging.h"

namespace autopilot::uav
{

std::string
airframeKindName(AirframeKind kind)
{
    switch (kind) {
      case AirframeKind::Quadrotor: return "quad";
      case AirframeKind::FixedWing: return "fixed-wing";
    }
    return "?";
}

bool
airframeKindFromName(const std::string &name, AirframeKind &out)
{
    if (name == "quad" || name == "quadrotor") {
        out = AirframeKind::Quadrotor;
        return true;
    }
    if (name == "fixed-wing" || name == "fixedwing") {
        out = AirframeKind::FixedWing;
        return true;
    }
    return false;
}

Airframe::Airframe(const UavSpec &spec) : uavSpec(spec)
{
    uavSpec.validate();
}

double
Airframe::totalMassGrams(double compute_payload_g) const
{
    util::fatalIf(compute_payload_g < 0.0,
                  "Airframe: negative compute payload");
    return uavSpec.baseMassGrams + compute_payload_g;
}

double
Airframe::actionThroughputHz(double compute_fps, double sensor_fps) const
{
    util::fatalIf(compute_fps < 0.0 || sensor_fps < 0.0,
                  "Airframe::actionThroughputHz: negative rate");
    return std::min({compute_fps, sensor_fps, uavSpec.controlLoopHz});
}

Provisioning
Airframe::classify(double throughput_hz, double total_mass_g,
                   double tolerance) const
{
    const double knee = kneeThroughputHz(total_mass_g);
    if (knee <= 0.0)
        return Provisioning::OverProvisioned;
    if (throughput_hz < knee * (1.0 - tolerance))
        return Provisioning::UnderProvisioned;
    if (throughput_hz > knee * (1.0 + tolerance))
        return Provisioning::OverProvisioned;
    return Provisioning::Balanced;
}

QuadrotorAirframe::QuadrotorAirframe(const UavSpec &spec) : Airframe(spec)
{
}

bool
QuadrotorAirframe::canFly(double total_mass_g) const
{
    return canHover(uavSpec, total_mass_g);
}

double
QuadrotorAirframe::velocityCeilingMps(double total_mass_g) const
{
    // Identical arithmetic to F1Model::velocityCeilingMps.
    const double a_max = maxAccelerationMps2(uavSpec, total_mass_g);
    if (a_max <= 0.0)
        return 0.0;
    const double braking =
        std::sqrt(2.0 * a_max * uavSpec.senseDistanceM);
    return std::min(braking, uavSpec.structuralMaxMps);
}

double
QuadrotorAirframe::minAirspeedMps(double) const
{
    return 0.0;
}

double
QuadrotorAirframe::safeVelocityMps(double throughput_hz,
                                   double total_mass_g) const
{
    util::fatalIf(throughput_hz < 0.0,
                  "QuadrotorAirframe::safeVelocityMps: negative throughput");
    const double slope_bound =
        uavSpec.clearancePerDecisionM * throughput_hz;
    return std::min(slope_bound, velocityCeilingMps(total_mass_g));
}

double
QuadrotorAirframe::kneeThroughputHz(double total_mass_g) const
{
    return velocityCeilingMps(total_mass_g) / uavSpec.clearancePerDecisionM;
}

double
QuadrotorAirframe::propulsionPowerW(double total_mass_g,
                                    double velocity_mps) const
{
    return rotorPowerW(uavSpec, total_mass_g, velocity_mps);
}

double
QuadrotorAirframe::overheadPowerW(double total_mass_g) const
{
    return rotorPowerW(uavSpec, total_mass_g, 0.0);
}

double
QuadrotorAirframe::turnRadiusM(double, double) const
{
    return 0.0;
}

std::string
QuadrotorAirframe::infeasibleReason(double total_mass_g,
                                    double throughput_hz) const
{
    char buffer[160];
    if (!canHover(uavSpec, total_mass_g)) {
        const double max_hover_g =
            uavSpec.maxThrustNewtons / gravity * 1000.0;
        std::snprintf(buffer, sizeof(buffer),
                      "all-up mass %.1f g exceeds the hover thrust budget "
                      "(max %.1f g at %.2f N)",
                      total_mass_g, max_hover_g, uavSpec.maxThrustNewtons);
        return buffer;
    }
    if (safeVelocityMps(throughput_hz, total_mass_g) <
        kMinSafeVelocityMps) {
        std::snprintf(buffer, sizeof(buffer),
                      "action throughput %.2f Hz yields no forward "
                      "progress (safe velocity ~0 m/s)",
                      throughput_hz);
        return buffer;
    }
    return "";
}

std::unique_ptr<Airframe>
makeAirframe(AirframeKind kind, const UavSpec &spec)
{
    switch (kind) {
      case AirframeKind::Quadrotor:
        return std::make_unique<QuadrotorAirframe>(spec);
      case AirframeKind::FixedWing:
        return std::make_unique<FixedWingAirframe>(spec);
    }
    util::fatal("makeAirframe: unknown airframe kind");
    return nullptr;
}

} // namespace autopilot::uav
