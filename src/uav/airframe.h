/**
 * @file
 * Pluggable airframe layer: the flight-envelope queries the mission model
 * needs, abstracted over vehicle dynamics.
 *
 * The F-1 abstraction (safe velocity vs action throughput) generalizes
 * across airframes with very different ceilings and energetics: a
 * rotorcraft's ceiling is braking-limited and its power is momentum-theory
 * induced power, while a fixed wing has a stall-speed floor, a
 * turn-radius-limited path and a far better lift-to-drag J/m. Everything
 * the mission evaluator asks about the vehicle goes through this
 * interface; QuadrotorAirframe reproduces the original F1Model/propulsion
 * arithmetic bit for bit, so existing quadrotor results are unchanged.
 */

#ifndef AUTOPILOT_UAV_AIRFRAME_H
#define AUTOPILOT_UAV_AIRFRAME_H

#include <memory>
#include <string>

#include "uav/f1_model.h"
#include "uav/uav_spec.h"

namespace autopilot::uav
{

/** Airframe family; selects an Airframe implementation. */
enum class AirframeKind
{
    Quadrotor, ///< Rotorcraft: hovers, turns in place, induced-power cruise.
    FixedWing, ///< Fixed wing: stall floor, banked turns, L/D cruise.
};

/**
 * Safe velocities below this are treated as "cannot move": the mission
 * would otherwise report astronomically long finite (or non-finite)
 * times and energies instead of a diagnosed infeasibility.
 */
constexpr double kMinSafeVelocityMps = 1e-6;

/** Stable lower-case name ("quad", "fixed-wing") for CLI/JSON/CSV. */
std::string airframeKindName(AirframeKind kind);

/** Parse an airframe name; returns false on unknown names. */
bool airframeKindFromName(const std::string &name, AirframeKind &out);

/**
 * Flight-envelope and energetics queries for one vehicle. All masses are
 * all-up grams; implementations must be pure functions of (spec, mass,
 * velocity) so evaluations stay deterministic and cacheable.
 */
class Airframe
{
  public:
    virtual ~Airframe() = default;

    virtual AirframeKind kind() const = 0;

    /** All-up mass at a given compute payload, grams. */
    double totalMassGrams(double compute_payload_g) const;

    /** True when the vehicle can sustain flight at this mass at all. */
    virtual bool canFly(double total_mass_g) const = 0;

    /**
     * Body-dynamics velocity ceiling at this mass, m/s (0 when the
     * vehicle cannot fly). Falls as mass rises: the mass -> ceiling
     * coupling that makes heavy compute payloads expensive.
     */
    virtual double velocityCeilingMps(double total_mass_g) const = 0;

    /**
     * Minimum sustainable airspeed, m/s: 0 for rotorcraft, the stall
     * floor for fixed wings. Safe velocities below this are infeasible,
     * not merely slow.
     */
    virtual double minAirspeedMps(double total_mass_g) const = 0;

    /**
     * F-1 safe velocity at a given action throughput, m/s. Returns 0
     * when the envelope admits no speed (e.g. the throughput-bound
     * velocity sits below the stall floor).
     */
    virtual double safeVelocityMps(double throughput_hz,
                                   double total_mass_g) const = 0;

    /** Knee point: minimum throughput that reaches the ceiling, Hz. */
    virtual double kneeThroughputHz(double total_mass_g) const = 0;

    /** Propulsion electrical power in steady flight at @p velocity_mps. */
    virtual double propulsionPowerW(double total_mass_g,
                                    double velocity_mps) const = 0;

    /**
     * Propulsion power during the fixed takeoff/landing overhead window:
     * hover power for rotorcraft, launch/recovery climb power for fixed
     * wings.
     */
    virtual double overheadPowerW(double total_mass_g) const = 0;

    /**
     * Minimum turning radius at speed, meters. 0 for rotorcraft (turn in
     * place); fixed wings pay v^2 / (g * sqrt(n^2 - 1)) per banked turn,
     * which stretches multi-turn mission paths.
     */
    virtual double turnRadiusM(double total_mass_g,
                               double velocity_mps) const = 0;

    /**
     * Human-readable diagnosis of why flight at (@p total_mass_g,
     * @p throughput_hz) is infeasible; empty string when it is feasible.
     */
    virtual std::string infeasibleReason(double total_mass_g,
                                         double throughput_hz) const = 0;

    /** Pipeline action throughput: slowest of sensor/compute/control. */
    double actionThroughputHz(double compute_fps, double sensor_fps) const;

    /** Provisioning of a throughput against this airframe's knee. */
    Provisioning classify(double throughput_hz, double total_mass_g,
                          double tolerance = 0.15) const;

    const UavSpec &spec() const { return uavSpec; }

  protected:
    explicit Airframe(const UavSpec &spec);

    UavSpec uavSpec;
};

/**
 * The original rotorcraft model behind a virtual interface. Every method
 * performs the identical arithmetic of F1Model/propulsion, so quadrotor
 * missions through Airframe are byte-identical to the concrete path.
 */
class QuadrotorAirframe final : public Airframe
{
  public:
    explicit QuadrotorAirframe(const UavSpec &spec);

    AirframeKind kind() const override { return AirframeKind::Quadrotor; }
    bool canFly(double total_mass_g) const override;
    double velocityCeilingMps(double total_mass_g) const override;
    double minAirspeedMps(double total_mass_g) const override;
    double safeVelocityMps(double throughput_hz,
                           double total_mass_g) const override;
    double kneeThroughputHz(double total_mass_g) const override;
    double propulsionPowerW(double total_mass_g,
                            double velocity_mps) const override;
    double overheadPowerW(double total_mass_g) const override;
    double turnRadiusM(double total_mass_g,
                       double velocity_mps) const override;
    std::string infeasibleReason(double total_mass_g,
                                 double throughput_hz) const override;
};

/** Construct the airframe of @p kind over @p spec. */
std::unique_ptr<Airframe> makeAirframe(AirframeKind kind,
                                       const UavSpec &spec);

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_AIRFRAME_H
