/**
 * @file
 * Fixed-wing airframe: the F-1 abstraction over winged flight.
 *
 * Three things distinguish a fixed wing from the rotorcraft model:
 *
 *  - A stall-speed floor: v_stall = sqrt(2 W / (rho S CLmax)). The wing
 *    cannot generate enough lift below it, so a throughput-bound safe
 *    velocity under the floor is infeasible, not merely slow.
 *  - Turn-radius-limited paths: obstacle avoidance is a banked turn, not
 *    a brake. Lateral acceleration g * sqrt(n^2 - 1) at the sustainable
 *    load factor n bounds the avoidance ceiling, and every course
 *    reversal in a mission costs a half-circumference pi * r of extra
 *    path at radius r = v^2 / (g * sqrt(n^2 - 1)).
 *  - Lift-to-drag cruise power: P = W v / ((L/D) eta). Energy per meter
 *    W / ((L/D) eta) is independent of speed and roughly an order of
 *    magnitude below rotorcraft induced power, the classic fixed-wing
 *    range advantage.
 *
 * The sustainable load factor is thrust-limited: a level turn at n
 * multiplies drag by n, so n_thrust = T (L/D) / W, capped by the
 * structural limit. Heavier compute payloads lower n and with it the
 * avoidance ceiling: the same mass -> ceiling coupling the rotorcraft
 * model has, through different physics.
 */

#ifndef AUTOPILOT_UAV_FIXED_WING_H
#define AUTOPILOT_UAV_FIXED_WING_H

#include "uav/airframe.h"
#include "uav/uav_spec.h"

namespace autopilot::uav
{

/** Wing and propulsion constants of a fixed-wing conversion. */
struct FixedWingParams
{
    double wingAreaM2 = 0.0;     ///< Lift surface (> 0).
    double clMax = 1.2;          ///< Max lift coefficient (sets stall).
    double liftToDrag = 10.0;    ///< Cruise L/D ratio.
    double maxLoadFactor = 2.5;  ///< Structural banked-turn g-limit.
    double cruiseEfficiencyEta = 0.6; ///< Prop + motor cruise efficiency.
    /// Cruise thrust budget as a fraction of the spec's (hover-sized)
    /// thrust: fixed-wing props are sized for cruise, not hover.
    double cruiseThrustFraction = 0.25;
    /// Launch/recovery climb power as a multiple of cruise power at the
    /// minimum airspeed; replaces the rotorcraft hover overhead.
    double launchPowerFactor = 2.0;

    /** Abort via fatal() when a field is out of range. */
    void validate() const;
};

/**
 * Default fixed-wing conversion of a base vehicle: wing sized from the
 * rotor disk area so the stall floor lands inside the vehicle's F-1
 * operating range (a nano conversion stalls near 6 m/s against a
 * ~14 m/s quadrotor ceiling).
 */
FixedWingParams defaultFixedWingParams(const UavSpec &spec);

/** Fixed-wing implementation of the airframe interface. */
class FixedWingAirframe final : public Airframe
{
  public:
    /** Conversion of @p spec with defaultFixedWingParams. */
    explicit FixedWingAirframe(const UavSpec &spec);

    FixedWingAirframe(const UavSpec &spec, const FixedWingParams &params);

    AirframeKind kind() const override { return AirframeKind::FixedWing; }
    bool canFly(double total_mass_g) const override;
    double velocityCeilingMps(double total_mass_g) const override;
    double minAirspeedMps(double total_mass_g) const override;
    double safeVelocityMps(double throughput_hz,
                           double total_mass_g) const override;
    double kneeThroughputHz(double total_mass_g) const override;
    double propulsionPowerW(double total_mass_g,
                            double velocity_mps) const override;
    double overheadPowerW(double total_mass_g) const override;
    double turnRadiusM(double total_mass_g,
                       double velocity_mps) const override;
    std::string infeasibleReason(double total_mass_g,
                                 double throughput_hz) const override;

    const FixedWingParams &params() const { return wing; }

    /** Stall speed at this mass, m/s. */
    double stallSpeedMps(double total_mass_g) const;

    /** Thrust- and structure-limited sustained-turn load factor. */
    double sustainedLoadFactor(double total_mass_g) const;

  private:
    double weightNewtons(double total_mass_g) const;
    double cruiseThrustN() const;

    FixedWingParams wing;
};

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_FIXED_WING_H
