/**
 * @file
 * Base-UAV system specifications (Table IV).
 *
 * The base UAV (frame, battery, rotors, flight controller) is fixed;
 * AutoPilot designs only the autonomy components (sensor rate, algorithm,
 * onboard compute). Physical constants beyond Table IV (thrust, rotor disk
 * area, drag area) are calibrated once per vehicle so that the F-1 knee
 * points land where the paper reports them (46 Hz nano, 27 Hz DJI Spark)
 * and are documented in EXPERIMENTS.md.
 */

#ifndef AUTOPILOT_UAV_UAV_SPEC_H
#define AUTOPILOT_UAV_UAV_SPEC_H

#include <string>
#include <vector>

namespace autopilot::uav
{

/** Size class of the vehicle. */
enum class UavClass
{
    Mini,  ///< AscTec Pelican class (~1.6 kg).
    Micro, ///< DJI Spark class (~300 g).
    Nano,  ///< Zhang et al. class (~50 g).
};

/** Human-readable class name. */
std::string uavClassName(UavClass uav_class);

/** Complete base-UAV specification. */
struct UavSpec
{
    std::string name;
    UavClass uavClass = UavClass::Nano;

    // Table IV columns.
    double batteryMah = 500.0;
    double batteryVolts = 7.4;
    /// Fraction of rated capacity usable per charge (depth-of-discharge
    /// limit plus converter losses).
    double usableBatteryFraction = 0.85;
    double baseMassGrams = 50.0;
    double controlLoopHz = 100e3; ///< PID flight controller rate.
    std::vector<int> sensorFpsChoices = {30, 60};

    // Calibrated physical constants.
    double maxThrustNewtons = 1.58;  ///< Total thrust of all rotors.
    double rotorDiskAreaM2 = 0.00665;///< Combined actuator disk area.
    double dragAreaM2 = 0.005;       ///< Parasite drag area (Cd * A).
    double propulsiveEfficiency = 0.50; ///< Motor+ESC+figure-of-merit.
    double parasiteEfficiency = 0.70;   ///< Efficiency against drag.
    double otherElectronicsW = 0.1;  ///< ESCs, radio, LEDs.

    // Perception / safety constants.
    double senseDistanceM = 5.0;  ///< Obstacle detection range.
    double clearancePerDecisionM = 0.30; ///< Safe blind travel/decision.
    double structuralMaxMps = 25.0;      ///< Hard airframe speed limit.

    // Mission profile.
    double missionDistanceM = 250.0;
    double fixedHoverSeconds = 5.0; ///< Takeoff/landing hover overhead.

    /** Usable battery energy in joules. */
    double batteryEnergyJ() const;

    /**
     * Hover endurance in minutes at a given all-up mass: a physics
     * sanity check against published flight times.
     */
    double hoverEnduranceMinutes(double total_mass_g) const;

    /** Abort via fatal() when a field is out of range. */
    void validate() const;
};

/** AscTec Pelican, the mini-UAV of Table IV. */
UavSpec ascTecPelican();

/** DJI Spark, the micro-UAV of Table IV. */
UavSpec djiSpark();

/** The Zhang et al. nano quadrotor of Table IV. */
UavSpec zhangNano();

/** All three vehicles, in {mini, micro, nano} order. */
std::vector<UavSpec> allUavs();

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_UAV_SPEC_H
