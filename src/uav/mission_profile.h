/**
 * @file
 * Mission classes and the mission mix.
 *
 * A MissionProfile generalizes the hard-wired point-to-point nav run into
 * mission classes: point-to-point transit, a lawnmower search pattern
 * (lane length from area / spacing, with a course reversal per lane that
 * fixed wings pay turn radius for), and payload delivery (extra mass
 * carried outbound and dropped at the midpoint).
 *
 * A MissionMix is a weighted set of (airframe, mission) scenarios. The
 * weighted missions-per-charge across the mix becomes the Phase 2/3
 * selection objective, so one campaign answers "which SoC for this whole
 * fleet" instead of "which SoC for this one vehicle". An empty mix means
 * the legacy single quadrotor point-to-point scenario and keeps every
 * existing result byte-identical.
 */

#ifndef AUTOPILOT_UAV_MISSION_PROFILE_H
#define AUTOPILOT_UAV_MISSION_PROFILE_H

#include <string>
#include <vector>

#include "uav/airframe.h"

namespace autopilot::uav
{

/** What the vehicle does with its flight. */
enum class MissionClass
{
    PointToPoint,    ///< Transit a fixed distance (the legacy mission).
    SearchPattern,   ///< Lawnmower sweep over an area, then transit.
    PayloadDelivery, ///< Carry extra mass outbound, drop at midpoint.
};

/** Stable lower-case name ("nav", "search", "delivery") for CLI/JSON. */
std::string missionClassName(MissionClass mission_class);

/** Parse a mission-class name; returns false on unknown names. */
bool missionClassFromName(const std::string &name, MissionClass &out);

/** Parameters of one mission class instance. */
struct MissionProfile
{
    MissionClass missionClass = MissionClass::PointToPoint;
    /// Transit distance, meters; 0 uses the vehicle spec's
    /// missionDistanceM (which keeps the legacy default intact).
    double distanceM = 0.0;
    /// Search pattern: area swept and lane spacing (both > 0 for
    /// SearchPattern, unused otherwise). Lane length is area / spacing;
    /// each lane change is one course reversal.
    double searchAreaM2 = 0.0;
    double laneSpacingM = 0.0;
    /// Payload delivery: extra mass carried on the outbound leg and
    /// dropped at the midpoint, grams (> 0 for PayloadDelivery).
    double deliveryPayloadG = 0.0;

    /// True for the parameterless point-to-point profile whose
    /// evaluation is bit-identical to the legacy mission model.
    bool isDefaultPointToPoint() const;

    /** Non-fatal validation; false with a diagnostic on bad fields. */
    bool check(std::string &error) const;

    /** Abort via fatal() when check() fails. */
    void validate() const;
};

/** One weighted fleet scenario: an airframe flying a mission class. */
struct MissionScenario
{
    std::string name = "nav"; ///< CSV/report tag; [a-z0-9_-], unique.
    AirframeKind airframe = AirframeKind::Quadrotor;
    MissionProfile profile;
    double weight = 1.0; ///< Relative share in the fleet objective.
};

/** The legacy scenario: quadrotor point-to-point at weight 1. */
MissionScenario defaultMissionScenario();

/** A weighted scenario set; empty means the legacy default scenario. */
struct MissionMix
{
    std::vector<MissionScenario> scenarios;

    /// True when the mix is the implicit legacy single-quadrotor
    /// point-to-point workload (and fingerprints must not change).
    bool isDefault() const { return scenarios.empty(); }

    double totalWeight() const;

    /**
     * Short CSV-safe label for journal rows and reports: "-" for the
     * default mix, else scenario names joined with '+'.
     */
    std::string tag() const;

    /** Non-fatal validation; false with a diagnostic on bad fields. */
    bool check(std::string &error) const;

    /** Abort via fatal() when check() fails. */
    void validate() const;
};

/**
 * The scenarios a mix actually evaluates: the mix's own list, or the
 * single default scenario when the mix is empty.
 */
std::vector<MissionScenario> effectiveScenarios(const MissionMix &mix);

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_MISSION_PROFILE_H
