/**
 * @file
 * Stochastic mission simulator: a Monte-Carlo cross-check of the
 * closed-form Eq. 1-4 mission count.
 *
 * The analytic model assumes every mission is identical. Real sorties
 * vary: headwinds change the effective airspeed budget, routes differ in
 * length, and the vehicle must keep a landing reserve. This simulator
 * flies missions sequentially against a battery state with per-mission
 * randomness and reports the achieved count distribution; property tests
 * assert the analytic N_missions sits on the simulated mean when the
 * variation is switched off, and within the distribution when it is on.
 */

#ifndef AUTOPILOT_UAV_MISSION_SIM_H
#define AUTOPILOT_UAV_MISSION_SIM_H

#include <cstdint>

#include "uav/mission.h"
#include "util/rng.h"

namespace autopilot::uav
{

/** Per-mission variation knobs (all disabled by default). */
struct MissionVariation
{
    /// 1-sigma relative variation of mission distance.
    double distanceSigma = 0.0;
    /// 1-sigma headwind speed, m/s (reduces ground speed, costs time).
    double headwindSigma = 0.0;
    /// Battery fraction that must remain for a safe landing.
    double reserveFraction = 0.05;
};

/** Result of one simulated battery charge. */
struct MissionSimResult
{
    int completedMissions = 0;
    double energyUsedJ = 0.0;
    double totalFlightTimeS = 0.0;
    /// True when the last mission was aborted mid-route for the reserve.
    bool endedOnReserve = false;
};

/** Aggregate over many simulated charges. */
struct MissionSimStats
{
    int charges = 0;
    double meanMissions = 0.0;
    double minMissions = 0.0;
    double maxMissions = 0.0;
};

/** Monte-Carlo mission simulator for one vehicle. */
class MissionSimulator
{
  public:
    /**
     * @param spec      Vehicle specification.
     * @param variation Per-mission randomness.
     */
    MissionSimulator(const UavSpec &spec,
                     const MissionVariation &variation);

    /**
     * Fly missions until the battery hits the reserve.
     *
     * @param compute_payload_g Compute mass, grams.
     * @param soc_power_w       SoC power, watts.
     * @param compute_fps       Inference rate.
     * @param sensor_fps        Sensor rate.
     * @param rng               Charge random stream.
     */
    MissionSimResult simulateCharge(double compute_payload_g,
                                    double soc_power_w,
                                    double compute_fps,
                                    double sensor_fps,
                                    util::Rng &rng) const;

    /** Run many charges and aggregate. */
    MissionSimStats simulateMany(double compute_payload_g,
                                 double soc_power_w, double compute_fps,
                                 double sensor_fps, int charges,
                                 std::uint64_t seed) const;

  private:
    UavSpec uavSpec;
    MissionVariation var;
};

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_MISSION_SIM_H
