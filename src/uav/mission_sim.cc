#include "uav/mission_sim.h"

#include <algorithm>

#include "uav/propulsion.h"
#include "util/logging.h"

namespace autopilot::uav
{

MissionSimulator::MissionSimulator(const UavSpec &spec,
                                   const MissionVariation &variation)
    : uavSpec(spec), var(variation)
{
    uavSpec.validate();
    util::fatalIf(var.distanceSigma < 0.0 || var.headwindSigma < 0.0,
                  "MissionSimulator: negative variation sigma");
    util::fatalIf(var.reserveFraction < 0.0 ||
                      var.reserveFraction >= 1.0,
                  "MissionSimulator: reserve fraction outside [0, 1)");
}

MissionSimResult
MissionSimulator::simulateCharge(double compute_payload_g,
                                 double soc_power_w, double compute_fps,
                                 double sensor_fps, util::Rng &rng) const
{
    const MissionModel model(uavSpec);
    const MissionResult nominal = model.evaluate(
        compute_payload_g, soc_power_w, compute_fps, sensor_fps);

    MissionSimResult result;
    if (!nominal.feasible)
        return result;

    const double battery = uavSpec.batteryEnergyJ();
    const double reserve = battery * var.reserveFraction;
    double remaining = battery;
    const double total_mass =
        uavSpec.baseMassGrams + compute_payload_g;
    const double hover_power = rotorPowerW(uavSpec, total_mass, 0.0);

    while (true) {
        // Per-mission conditions.
        const double distance =
            uavSpec.missionDistanceM *
            std::max(0.2, 1.0 + rng.normal(0.0, var.distanceSigma));
        const double headwind =
            std::abs(rng.normal(0.0, var.headwindSigma));
        // The vehicle flies at its safe airspeed; a headwind reduces
        // ground speed, so the mission takes longer at the same power.
        const double airspeed = nominal.safeVelocityMps;
        const double ground_speed = airspeed - headwind;
        if (ground_speed <= 0.5)
            break; // Unflyable conditions: wait out the weather.

        const double cruise_time = distance / ground_speed;
        const double air_power =
            rotorPowerW(uavSpec, total_mass, airspeed) + soc_power_w +
            uavSpec.otherElectronicsW;
        const double hover_energy =
            (hover_power + soc_power_w + uavSpec.otherElectronicsW) *
            uavSpec.fixedHoverSeconds;
        const double mission_energy =
            air_power * cruise_time + hover_energy;

        if (remaining - mission_energy < reserve) {
            result.endedOnReserve = true;
            break;
        }
        remaining -= mission_energy;
        result.energyUsedJ += mission_energy;
        result.totalFlightTimeS +=
            cruise_time + uavSpec.fixedHoverSeconds;
        ++result.completedMissions;

        if (result.completedMissions > 100000) {
            util::panic("MissionSimulator: runaway charge loop");
        }
    }
    return result;
}

MissionSimStats
MissionSimulator::simulateMany(double compute_payload_g,
                               double soc_power_w, double compute_fps,
                               double sensor_fps, int charges,
                               std::uint64_t seed) const
{
    util::fatalIf(charges <= 0,
                  "MissionSimulator: charges must be positive");
    util::Rng master(seed);

    MissionSimStats stats;
    stats.charges = charges;
    double sum = 0.0;
    double lo = 1e18, hi = -1e18;
    for (int charge = 0; charge < charges; ++charge) {
        util::Rng rng = master.fork(charge);
        const MissionSimResult result = simulateCharge(
            compute_payload_g, soc_power_w, compute_fps, sensor_fps,
            rng);
        sum += result.completedMissions;
        lo = std::min(lo, double(result.completedMissions));
        hi = std::max(hi, double(result.completedMissions));
    }
    stats.meanMissions = sum / charges;
    stats.minMissions = lo;
    stats.maxMissions = hi;
    return stats;
}

} // namespace autopilot::uav
