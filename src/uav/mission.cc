#include "uav/mission.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace autopilot::uav
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** One constant-mass cruise segment of a mission. */
struct MissionLeg
{
    double pathM = 0.0;  ///< Nominal path before turn stretch.
    double massG = 0.0;  ///< All-up mass flown on this leg.
    int turns = 0;       ///< Course reversals paid at turn radius.
};

} // namespace

MissionModel::MissionModel(const UavSpec &spec)
    : MissionModel(spec, AirframeKind::Quadrotor, MissionProfile{})
{
}

MissionModel::MissionModel(const UavSpec &spec, AirframeKind airframe,
                           const MissionProfile &profile)
    : uavSpec(spec), frame(makeAirframe(airframe, spec)),
      missionProfile(profile)
{
    uavSpec.validate();
    missionProfile.validate();
}

MissionResult
MissionModel::evaluate(double compute_payload_g, double soc_power_w,
                       double compute_fps, double sensor_fps) const
{
    util::fatalIf(compute_payload_g < 0.0 || soc_power_w < 0.0,
                  "MissionModel::evaluate: negative design parameters");

    MissionResult result;
    result.totalMassG = frame->totalMassGrams(compute_payload_g);
    result.computePowerW = soc_power_w;
    result.actionThroughputHz =
        frame->actionThroughputHz(compute_fps, sensor_fps);
    result.kneeThroughputHz = frame->kneeThroughputHz(result.totalMassG);
    result.safeVelocityMps =
        frame->safeVelocityMps(result.actionThroughputHz,
                               result.totalMassG);
    result.provisioning =
        frame->classify(result.actionThroughputHz, result.totalMassG);

    const double transit = missionProfile.distanceM > 0.0
                               ? missionProfile.distanceM
                               : uavSpec.missionDistanceM;
    std::vector<MissionLeg> legs;
    switch (missionProfile.missionClass) {
      case MissionClass::PointToPoint:
        legs.push_back({transit, result.totalMassG, 0});
        break;
      case MissionClass::SearchPattern: {
        // Lawnmower sweep of a square area: lanes of one side length,
        // one course reversal per lane change, plus the transit out.
        const double side = std::sqrt(missionProfile.searchAreaM2);
        const int lanes = std::max(
            1, static_cast<int>(
                   std::ceil(side / missionProfile.laneSpacingM)));
        legs.push_back({transit + lanes * side, result.totalMassG,
                        lanes - 1});
        break;
      }
      case MissionClass::PayloadDelivery: {
        // Carry the delivery mass out, drop it at the midpoint, return
        // light. The loaded leg flies the heavier-envelope velocity.
        const double loaded =
            result.totalMassG + missionProfile.deliveryPayloadG;
        legs.push_back({transit / 2.0, loaded, 0});
        legs.push_back({transit / 2.0, result.totalMassG, 0});
        break;
      }
    }

    // Every leg must fit the airframe's envelope; report the first
    // failure with the airframe's diagnosis instead of a zeroed result
    // or a non-finite mission time from a near-zero safe velocity.
    for (const MissionLeg &leg : legs) {
        const double leg_velocity = frame->safeVelocityMps(
            result.actionThroughputHz, leg.massG);
        if (frame->canFly(leg.massG) &&
            leg_velocity >= kMinSafeVelocityMps)
            continue;
        result.feasible = false;
        result.numMissions = 0.0;
        result.infeasibleReason = frame->infeasibleReason(
            leg.massG, result.actionThroughputHz);
        if (result.infeasibleReason.empty())
            result.infeasibleReason = "flight envelope infeasible";
        if (leg.massG != result.totalMassG)
            result.infeasibleReason =
                "with delivery payload: " + result.infeasibleReason;
        return result;
    }
    result.feasible = true;

    result.rotorPowerW = frame->propulsionPowerW(result.totalMassG,
                                                 result.safeVelocityMps);
    result.totalPowerW = result.rotorPowerW + result.computePowerW +
                         uavSpec.otherElectronicsW;

    double cruise_time = 0.0;
    double cruise_energy = 0.0;
    for (const MissionLeg &leg : legs) {
        const double leg_velocity = frame->safeVelocityMps(
            result.actionThroughputHz, leg.massG);
        const double radius = frame->turnRadiusM(leg.massG, leg_velocity);
        const double path =
            leg.pathM + static_cast<double>(leg.turns) * (kPi * radius);
        const double leg_time = path / leg_velocity;
        const double leg_power =
            frame->propulsionPowerW(leg.massG, leg_velocity) +
            result.computePowerW + uavSpec.otherElectronicsW;
        cruise_time += leg_time;
        cruise_energy += leg_power * leg_time;
    }

    const double overhead_power =
        frame->overheadPowerW(result.totalMassG);
    const double overhead_energy =
        (overhead_power + result.computePowerW +
         uavSpec.otherElectronicsW) *
        uavSpec.fixedHoverSeconds;

    result.missionTimeS = cruise_time + uavSpec.fixedHoverSeconds;
    result.missionEnergyJ = cruise_energy + overhead_energy;
    result.numMissions = uavSpec.batteryEnergyJ() / result.missionEnergyJ;
    return result;
}

int
MissionModel::selectSensorFps(double required_hz) const
{
    std::vector<int> choices = uavSpec.sensorFpsChoices;
    std::sort(choices.begin(), choices.end());
    for (int fps : choices) {
        if (static_cast<double>(fps) >= required_hz)
            return fps;
    }
    return choices.back();
}

} // namespace autopilot::uav
