#include "uav/mission.h"

#include <algorithm>

#include "uav/propulsion.h"
#include "util/logging.h"

namespace autopilot::uav
{

MissionModel::MissionModel(const UavSpec &spec) : uavSpec(spec)
{
    uavSpec.validate();
}

MissionResult
MissionModel::evaluate(double compute_payload_g, double soc_power_w,
                       double compute_fps, double sensor_fps) const
{
    util::fatalIf(compute_payload_g < 0.0 || soc_power_w < 0.0,
                  "MissionModel::evaluate: negative design parameters");

    const F1Model f1(uavSpec, compute_payload_g);

    MissionResult result;
    result.totalMassG = f1.totalMassGrams();
    result.computePowerW = soc_power_w;
    result.actionThroughputHz =
        f1.actionThroughputHz(compute_fps, sensor_fps);
    result.kneeThroughputHz = f1.kneeThroughputHz();
    result.safeVelocityMps =
        f1.safeVelocityMps(result.actionThroughputHz);
    result.provisioning = f1.classify(result.actionThroughputHz);

    if (!canHover(uavSpec, result.totalMassG) ||
        result.safeVelocityMps <= 0.0) {
        result.feasible = false;
        result.numMissions = 0.0;
        return result;
    }
    result.feasible = true;

    result.rotorPowerW = rotorPowerW(uavSpec, result.totalMassG,
                                     result.safeVelocityMps);
    result.totalPowerW = result.rotorPowerW + result.computePowerW +
                         uavSpec.otherElectronicsW;

    const double cruise_time =
        uavSpec.missionDistanceM / result.safeVelocityMps;
    const double hover_power =
        rotorPowerW(uavSpec, result.totalMassG, 0.0);
    const double hover_energy =
        (hover_power + result.computePowerW + uavSpec.otherElectronicsW) *
        uavSpec.fixedHoverSeconds;

    result.missionTimeS = cruise_time + uavSpec.fixedHoverSeconds;
    result.missionEnergyJ =
        result.totalPowerW * cruise_time + hover_energy;
    result.numMissions = uavSpec.batteryEnergyJ() / result.missionEnergyJ;
    return result;
}

int
MissionModel::selectSensorFps(double required_hz) const
{
    std::vector<int> choices = uavSpec.sensorFpsChoices;
    std::sort(choices.begin(), choices.end());
    for (int fps : choices) {
        if (static_cast<double>(fps) >= required_hz)
            return fps;
    }
    return choices.back();
}

} // namespace autopilot::uav
