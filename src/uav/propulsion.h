/**
 * @file
 * Rotor propulsion physics: thrust-derived acceleration and momentum-theory
 * flight power.
 *
 * These are the physical relationships behind the F-1 model's ceilings and
 * Eq. 2's P_rotors term:
 *
 *  - Maximum horizontal acceleration from the thrust-to-weight ratio [57]:
 *    a_max = g * sqrt((T / (m g))^2 - 1) (the vertical component must still
 *    hold the vehicle up).
 *  - Forward-flight power from actuator-disk momentum theory: induced power
 *    P_i = m g * v_i / eta with the classic implicit induced-velocity
 *    relation v_i = v_h^2 / sqrt(v^2 + v_i^2), plus parasite drag power
 *    0.5 * rho * CdA * v^3 / eta_p. Induced power falls with forward speed,
 *    which is why flying faster reduces mission energy (MAVBench's "95% of
 *    power is rotors" observation).
 */

#ifndef AUTOPILOT_UAV_PROPULSION_H
#define AUTOPILOT_UAV_PROPULSION_H

#include "uav/uav_spec.h"

namespace autopilot::uav
{

/** Standard gravity, m/s^2. */
constexpr double gravity = 9.80665;

/** Sea-level air density, kg/m^3. */
constexpr double airDensity = 1.225;

/**
 * Maximum horizontal acceleration at a given all-up mass.
 *
 * Returns 0 when the vehicle cannot even hover (thrust <= weight).
 *
 * @param spec         Vehicle specification.
 * @param total_mass_g All-up mass including compute payload, grams.
 */
double maxAccelerationMps2(const UavSpec &spec, double total_mass_g);

/** True when the vehicle can hover at the given all-up mass. */
bool canHover(const UavSpec &spec, double total_mass_g);

/**
 * Hover induced velocity v_h = sqrt(W / (2 rho A)), m/s.
 *
 * @param spec         Vehicle specification.
 * @param total_mass_g All-up mass, grams.
 */
double hoverInducedVelocityMps(const UavSpec &spec, double total_mass_g);

/**
 * Induced velocity in forward flight (fixed-point solution of the
 * momentum-theory relation), m/s.
 *
 * @param spec           Vehicle specification.
 * @param total_mass_g   All-up mass, grams.
 * @param velocity_mps   Forward speed, m/s (>= 0).
 */
double inducedVelocityMps(const UavSpec &spec, double total_mass_g,
                          double velocity_mps);

/**
 * Total rotor electrical power in forward flight, watts.
 *
 * @param spec           Vehicle specification.
 * @param total_mass_g   All-up mass, grams.
 * @param velocity_mps   Forward speed, m/s (0 gives hover power).
 */
double rotorPowerW(const UavSpec &spec, double total_mass_g,
                   double velocity_mps);

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_PROPULSION_H
