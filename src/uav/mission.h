/**
 * @file
 * Mission-level performance model (Section IV, Eq. 1-4).
 *
 * The domain metric is the number of missions per battery charge:
 *
 *   N = E_battery / E_mission
 *   E_mission = (P_rotors(v_safe) + P_compute + P_others) * D / v_safe
 *               + fixed hover overhead (takeoff / landing)
 *
 * where v_safe comes from the F-1 model for the vehicle at the candidate
 * design's compute payload mass and action throughput.
 */

#ifndef AUTOPILOT_UAV_MISSION_H
#define AUTOPILOT_UAV_MISSION_H

#include "uav/f1_model.h"
#include "uav/uav_spec.h"

namespace autopilot::uav
{

/** Full evaluation of one compute design on one vehicle. */
struct MissionResult
{
    bool feasible = false;        ///< Vehicle can hover and move.
    double totalMassG = 0.0;      ///< All-up mass.
    double actionThroughputHz = 0.0;
    double kneeThroughputHz = 0.0;
    double safeVelocityMps = 0.0;
    double rotorPowerW = 0.0;     ///< At the safe velocity.
    double computePowerW = 0.0;   ///< Full SoC power.
    double totalPowerW = 0.0;
    double missionTimeS = 0.0;
    double missionEnergyJ = 0.0;
    double numMissions = 0.0;
    Provisioning provisioning = Provisioning::UnderProvisioned;
};

/** Mission evaluator for one vehicle. */
class MissionModel
{
  public:
    /** @param spec Vehicle specification (validated). */
    explicit MissionModel(const UavSpec &spec);

    /**
     * Evaluate a compute design.
     *
     * @param compute_payload_g Onboard-compute mass (PCB + heatsink), g.
     * @param soc_power_w       Full-SoC average power, watts.
     * @param compute_fps       Policy inference rate, frames/s.
     * @param sensor_fps        Selected sensor rate, frames/s.
     */
    MissionResult evaluate(double compute_payload_g, double soc_power_w,
                           double compute_fps, double sensor_fps) const;

    /**
     * Pick the slowest sensor from the spec's choices that does not bound
     * the pipeline below @p required_hz; returns the fastest choice when
     * none suffices (Section V-C: "60 FPS sensors to avoid being
     * sensor-bound").
     */
    int selectSensorFps(double required_hz) const;

    const UavSpec &spec() const { return uavSpec; }

  private:
    UavSpec uavSpec;
};

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_MISSION_H
