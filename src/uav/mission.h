/**
 * @file
 * Mission-level performance model (Section IV, Eq. 1-4).
 *
 * The domain metric is the number of missions per battery charge:
 *
 *   N = E_battery / E_mission
 *   E_mission = (P_prop(v_safe) + P_compute + P_others) * D_eff / v_safe
 *               + fixed takeoff/landing overhead
 *
 * where v_safe comes from the airframe's F-1 envelope at the candidate
 * design's compute payload mass and action throughput, and D_eff is the
 * mission profile's effective path (search lanes, delivery legs, and the
 * turn-radius stretch fixed wings pay per course reversal).
 *
 * The default construction (one UavSpec) is the legacy quadrotor
 * point-to-point model and is evaluated with bit-identical arithmetic.
 */

#ifndef AUTOPILOT_UAV_MISSION_H
#define AUTOPILOT_UAV_MISSION_H

#include <memory>
#include <string>

#include "uav/airframe.h"
#include "uav/f1_model.h"
#include "uav/mission_profile.h"
#include "uav/uav_spec.h"

namespace autopilot::uav
{

/** Full evaluation of one compute design on one vehicle. */
struct MissionResult
{
    bool feasible = false;        ///< Vehicle can fly the profile.
    double totalMassG = 0.0;      ///< All-up mass (without drop payload).
    double actionThroughputHz = 0.0;
    double kneeThroughputHz = 0.0;
    double safeVelocityMps = 0.0;
    double rotorPowerW = 0.0;     ///< Propulsion power at safe velocity.
    double computePowerW = 0.0;   ///< Full SoC power.
    double totalPowerW = 0.0;
    double missionTimeS = 0.0;
    double missionEnergyJ = 0.0;
    double numMissions = 0.0;
    Provisioning provisioning = Provisioning::UnderProvisioned;
    /// Human-readable diagnosis when infeasible; empty when feasible.
    std::string infeasibleReason;
};

/** Mission evaluator for one vehicle flying one profile. */
class MissionModel
{
  public:
    /**
     * Legacy model: quadrotor point-to-point on @p spec, bit-identical
     * to the original concrete implementation.
     *
     * @param spec Vehicle specification (validated).
     */
    explicit MissionModel(const UavSpec &spec);

    /** Any airframe flying any mission profile over @p spec. */
    MissionModel(const UavSpec &spec, AirframeKind airframe,
                 const MissionProfile &profile);

    /**
     * Evaluate a compute design.
     *
     * @param compute_payload_g Onboard-compute mass (PCB + heatsink), g.
     * @param soc_power_w       Full-SoC average power, watts.
     * @param compute_fps       Policy inference rate, frames/s.
     * @param sensor_fps        Selected sensor rate, frames/s.
     */
    MissionResult evaluate(double compute_payload_g, double soc_power_w,
                           double compute_fps, double sensor_fps) const;

    /**
     * Pick the slowest sensor from the spec's choices that does not bound
     * the pipeline below @p required_hz; returns the fastest choice when
     * none suffices (Section V-C: "60 FPS sensors to avoid being
     * sensor-bound").
     */
    int selectSensorFps(double required_hz) const;

    const UavSpec &spec() const { return uavSpec; }
    const Airframe &airframe() const { return *frame; }
    const MissionProfile &profile() const { return missionProfile; }

  private:
    UavSpec uavSpec;
    std::shared_ptr<const Airframe> frame;
    MissionProfile missionProfile;
};

} // namespace autopilot::uav

#endif // AUTOPILOT_UAV_MISSION_H
