#include "uav/mission_profile.h"

#include <cmath>
#include <set>

#include "util/logging.h"

namespace autopilot::uav
{

namespace
{

bool
finiteNonNegative(double value)
{
    return std::isfinite(value) && value >= 0.0;
}

bool
safeScenarioName(const std::string &name)
{
    if (name.empty() || name.size() > 32)
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

std::string
missionClassName(MissionClass mission_class)
{
    switch (mission_class) {
      case MissionClass::PointToPoint:    return "nav";
      case MissionClass::SearchPattern:   return "search";
      case MissionClass::PayloadDelivery: return "delivery";
    }
    return "?";
}

bool
missionClassFromName(const std::string &name, MissionClass &out)
{
    if (name == "nav" || name == "point-to-point") {
        out = MissionClass::PointToPoint;
        return true;
    }
    if (name == "search") {
        out = MissionClass::SearchPattern;
        return true;
    }
    if (name == "delivery") {
        out = MissionClass::PayloadDelivery;
        return true;
    }
    return false;
}

bool
MissionProfile::isDefaultPointToPoint() const
{
    return missionClass == MissionClass::PointToPoint && distanceM == 0.0;
}

bool
MissionProfile::check(std::string &error) const
{
    if (!finiteNonNegative(distanceM)) {
        error = "mission distance must be finite and >= 0";
        return false;
    }
    switch (missionClass) {
      case MissionClass::PointToPoint:
        break;
      case MissionClass::SearchPattern:
        if (!std::isfinite(searchAreaM2) || searchAreaM2 <= 0.0) {
            error = "search pattern needs area_m2 > 0";
            return false;
        }
        if (!std::isfinite(laneSpacingM) || laneSpacingM <= 0.0) {
            error = "search pattern needs spacing_m > 0";
            return false;
        }
        break;
      case MissionClass::PayloadDelivery:
        if (!std::isfinite(deliveryPayloadG) || deliveryPayloadG <= 0.0) {
            error = "payload delivery needs payload_g > 0";
            return false;
        }
        break;
    }
    return true;
}

void
MissionProfile::validate() const
{
    std::string error;
    util::fatalIf(!check(error), "MissionProfile: " + error);
}

MissionScenario
defaultMissionScenario()
{
    return MissionScenario{};
}

double
MissionMix::totalWeight() const
{
    double total = 0.0;
    for (const MissionScenario &scenario : scenarios)
        total += scenario.weight;
    return total;
}

std::string
MissionMix::tag() const
{
    if (isDefault())
        return "-";
    std::string tag;
    for (const MissionScenario &scenario : scenarios) {
        if (!tag.empty())
            tag += '+';
        tag += scenario.name;
    }
    return tag;
}

bool
MissionMix::check(std::string &error) const
{
    std::set<std::string> names;
    for (const MissionScenario &scenario : scenarios) {
        if (!safeScenarioName(scenario.name)) {
            error = "scenario name '" + scenario.name +
                    "' must be 1-32 chars of [a-z0-9_-]";
            return false;
        }
        if (!names.insert(scenario.name).second) {
            error = "duplicate scenario name '" + scenario.name + "'";
            return false;
        }
        if (!std::isfinite(scenario.weight) || scenario.weight <= 0.0) {
            error = "scenario '" + scenario.name +
                    "' weight must be finite and > 0";
            return false;
        }
        std::string profile_error;
        if (!scenario.profile.check(profile_error)) {
            error = "scenario '" + scenario.name + "': " + profile_error;
            return false;
        }
    }
    return true;
}

void
MissionMix::validate() const
{
    std::string error;
    util::fatalIf(!check(error), "MissionMix: " + error);
}

std::vector<MissionScenario>
effectiveScenarios(const MissionMix &mix)
{
    if (mix.isDefault())
        return {defaultMissionScenario()};
    return mix.scenarios;
}

} // namespace autopilot::uav
