/**
 * @file
 * Grid A* motion planner: the SPA pipeline's "plan" stage (the role RRT*
 * [40] / motion-planning accelerators [70] play in the paper's taxonomy).
 *
 * 8-connected A* with an octile-distance heuristic over the occupancy
 * grid; occupied cells are inflated by the vehicle radius. Unknown cells
 * are traversable (optimistic planning with replanning on discovery).
 */

#ifndef AUTOPILOT_SPA_PLANNER_H
#define AUTOPILOT_SPA_PLANNER_H

#include <vector>

#include "spa/occupancy_grid.h"

namespace autopilot::spa
{

/** Result of one planning query. */
struct PlanResult
{
    bool found = false;
    std::vector<Cell> path;      ///< Start to goal, inclusive.
    std::int64_t expandedNodes = 0; ///< A* expansions (compute cost).

    /** Path length in cells (diagonal steps count sqrt(2)). */
    double pathLengthCells() const;
};

/** A* planner over an occupancy grid. */
class AStarPlanner
{
  public:
    /**
     * @param inflate_m Obstacle inflation radius (vehicle radius plus
     *                  margin), meters.
     */
    explicit AStarPlanner(double inflate_m = 0.5);

    /**
     * Plan a path from @p start to @p goal on @p grid.
     *
     * @return found = false when the goal is unreachable through
     *         known-free and unknown space.
     */
    PlanResult plan(const OccupancyGrid &grid, const Cell &start,
                    const Cell &goal) const;

    double inflationM() const { return inflate; }

  private:
    double inflate;
};

/**
 * True when every cell of @p path is currently unblocked on @p grid -
 * the replan trigger after new sensor updates.
 */
bool pathStillValid(const OccupancyGrid &grid,
                    const std::vector<Cell> &path, double inflate_m);

} // namespace autopilot::spa

#endif // AUTOPILOT_SPA_PLANNER_H
