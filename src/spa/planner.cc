#include "spa/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/logging.h"

namespace autopilot::spa
{

namespace
{

constexpr double diagCost = 1.4142135623730951;

double
octileHeuristic(const Cell &a, const Cell &b)
{
    const double dx = std::abs(a.x - b.x);
    const double dy = std::abs(a.y - b.y);
    return std::max(dx, dy) + (diagCost - 1.0) * std::min(dx, dy);
}

} // namespace

double
PlanResult::pathLengthCells() const
{
    double length = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
        const bool diagonal = path[i].x != path[i - 1].x &&
                              path[i].y != path[i - 1].y;
        length += diagonal ? diagCost : 1.0;
    }
    return length;
}

AStarPlanner::AStarPlanner(double inflate_m) : inflate(inflate_m)
{
    util::fatalIf(inflate_m < 0.0,
                  "AStarPlanner: negative inflation radius");
}

PlanResult
AStarPlanner::plan(const OccupancyGrid &grid, const Cell &start,
                   const Cell &goal) const
{
    PlanResult result;
    util::fatalIf(!grid.inBounds(start) || !grid.inBounds(goal),
                  "AStarPlanner::plan: endpoints outside the grid");
    if (grid.blocked(goal, inflate) || grid.blocked(start, inflate))
        return result;

    const int width = grid.widthCells();
    const std::size_t cell_count =
        static_cast<std::size_t>(width) * width;
    std::vector<double> g_score(cell_count,
                                std::numeric_limits<double>::infinity());
    std::vector<int> came_from(cell_count, -1);
    std::vector<bool> closed(cell_count, false);

    auto to_index = [width](const Cell &cell) {
        return static_cast<std::size_t>(cell.y) * width + cell.x;
    };

    struct QueueEntry
    {
        double f = 0.0;
        std::size_t index = 0;
    };
    auto cmp = [](const QueueEntry &a, const QueueEntry &b) {
        return a.f > b.f;
    };
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        decltype(cmp)>
        open(cmp);

    const std::size_t start_index = to_index(start);
    const std::size_t goal_index = to_index(goal);
    g_score[start_index] = 0.0;
    open.push({octileHeuristic(start, goal), start_index});

    while (!open.empty()) {
        const QueueEntry entry = open.top();
        open.pop();
        if (closed[entry.index])
            continue;
        closed[entry.index] = true;
        ++result.expandedNodes;

        if (entry.index == goal_index)
            break;

        const Cell current{static_cast<int>(entry.index) % width,
                           static_cast<int>(entry.index) / width};
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0)
                    continue;
                const Cell next{current.x + dx, current.y + dy};
                if (!grid.inBounds(next))
                    continue;
                const std::size_t next_index = to_index(next);
                if (closed[next_index] || grid.blocked(next, inflate))
                    continue;
                const double step =
                    (dx != 0 && dy != 0) ? diagCost : 1.0;
                const double tentative =
                    g_score[entry.index] + step;
                if (tentative < g_score[next_index]) {
                    g_score[next_index] = tentative;
                    came_from[next_index] =
                        static_cast<int>(entry.index);
                    open.push({tentative + octileHeuristic(next, goal),
                               next_index});
                }
            }
        }
    }

    if (!closed[goal_index])
        return result;

    // Reconstruct.
    result.found = true;
    std::size_t cursor = goal_index;
    while (true) {
        result.path.push_back({static_cast<int>(cursor) % width,
                               static_cast<int>(cursor) / width});
        if (cursor == start_index)
            break;
        cursor = static_cast<std::size_t>(came_from[cursor]);
    }
    std::reverse(result.path.begin(), result.path.end());
    return result;
}

bool
pathStillValid(const OccupancyGrid &grid, const std::vector<Cell> &path,
               double inflate_m)
{
    for (const Cell &cell : path) {
        if (grid.blocked(cell, inflate_m))
            return false;
    }
    return true;
}

} // namespace autopilot::spa
