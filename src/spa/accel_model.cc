#include "spa/accel_model.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::spa
{

using util::fatalIf;

std::string
SpaAcceleratorConfig::name() const
{
    return "spa_v" + std::to_string(vioLanes) + "_m" +
           std::to_string(mappingBanks) + "_p" +
           std::to_string(planningCores);
}

void
SpaAcceleratorConfig::validate() const
{
    fatalIf(vioLanes <= 0 || mappingBanks <= 0 || planningCores <= 0,
            "SpaAcceleratorConfig: unit counts must be positive");
    fatalIf(clockGhz <= 0.0,
            "SpaAcceleratorConfig: clock must be positive");
}

std::vector<SpaAcceleratorConfig>
SpaHardwareSpace::enumerate() const
{
    std::vector<SpaAcceleratorConfig> all;
    all.reserve(laneChoices.size() * bankChoices.size() *
                coreChoices.size());
    for (int lanes : laneChoices) {
        for (int banks : bankChoices) {
            for (int cores : coreChoices) {
                SpaAcceleratorConfig config;
                config.vioLanes = lanes;
                config.mappingBanks = banks;
                config.planningCores = cores;
                all.push_back(config);
            }
        }
    }
    return all;
}

SpaComputeModel::SpaComputeModel(const SpaWorkload &workload)
    : work(workload)
{
    fatalIf(work.vioGop <= 0.0 || work.mappingGop <= 0.0 ||
                work.planningGop <= 0.0,
            "SpaComputeModel: stage work must be positive");
}

SpaComputeEstimate
SpaComputeModel::estimate(const SpaAcceleratorConfig &config) const
{
    config.validate();
    const double cycles_per_second = config.clockGhz * 1e9;

    auto latency_ms = [&](double gop, int units,
                          double ops_per_unit_cycle) {
        const double ops_per_second =
            cycles_per_second * units * ops_per_unit_cycle;
        return gop * 1e9 / ops_per_second * 1e3;
    };

    SpaComputeEstimate estimate;
    estimate.vioLatencyMs =
        latency_ms(work.vioGop, config.vioLanes, opsPerLaneCycle);
    estimate.mappingLatencyMs = latency_ms(
        work.mappingGop, config.mappingBanks, opsPerBankCycle);
    estimate.planningLatencyMs = latency_ms(
        work.planningGop, config.planningCores, opsPerCoreCycle);

    const double clock_scale = config.clockGhz / 0.2;
    estimate.powerW =
        baseWatts + clock_scale * (laneWatts * config.vioLanes +
                                   bankWatts * config.mappingBanks +
                                   coreWatts * config.planningCores);
    return estimate;
}

} // namespace autopilot::spa
