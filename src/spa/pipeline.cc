#include "spa/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace autopilot::spa
{

using airlearning::EpisodeOutcome;
using airlearning::EpisodeResult;

EpisodeResult
runSpaEpisode(const airlearning::Environment &env, const SpaConfig &config,
              util::Rng &rng, SpaEpisodeStats *stats,
              std::vector<TrajectoryPoint> *trajectory)
{
    util::fatalIf(config.decisionRateHz <= 0.0 || config.speedMps <= 0.0,
                  "runSpaEpisode: rates must be positive");

    OccupancyGrid grid(env.arenaSize, config.gridResolutionM);
    const AStarPlanner planner(config.inflationM);

    double x = env.start.x;
    double y = env.start.y;
    double heading = std::atan2(env.goal.y - y, env.goal.x - x);
    std::vector<bool> detected(env.obstacles.size(), false);
    std::vector<Cell> path;
    std::size_t waypoint = 0;

    // Decision cadence in physics steps (at least every step).
    const int steps_per_decision = std::max(
        1, static_cast<int>(std::round(
               1.0 / (config.decisionRateHz * config.dtSeconds))));

    EpisodeResult result;
    result.minClearanceM = std::numeric_limits<double>::max();
    SpaEpisodeStats local_stats;

    for (int step = 0; step < config.maxSteps; ++step) {
        result.steps = step + 1;

        if (step % steps_per_decision == 0) {
            ++local_stats.decisions;

            // --- Sense + map ---
            bool map_changed = false;
            grid.markFreeDisk(x, y, config.sensorRangeM);
            ++local_stats.mapUpdates;
            for (std::size_t i = 0; i < env.obstacles.size(); ++i) {
                const airlearning::Obstacle &obstacle =
                    env.obstacles[i];
                const double surface =
                    std::hypot(x - obstacle.x, y - obstacle.y) -
                    obstacle.radius;
                const double effective_range =
                    obstacle.camouflaged
                        ? std::min(config.camoRangeM,
                                   config.sensorRangeM)
                        : config.sensorRangeM;
                if (!detected[i] && surface <= effective_range &&
                    rng.bernoulli(config.detectionProb)) {
                    detected[i] = true;
                    grid.markOccupiedDisk(obstacle.x, obstacle.y,
                                          obstacle.radius);
                    ++local_stats.mapUpdates;
                    map_changed = true;
                }
            }

            // --- Plan (replan when invalidated or finished) ---
            const Cell here = grid.worldToCell(x, y);
            const Cell goal_cell =
                grid.worldToCell(env.goal.x, env.goal.y);
            const bool need_replan =
                path.empty() || waypoint >= path.size() ||
                (map_changed &&
                 !pathStillValid(grid, path, config.inflationM));
            if (need_replan) {
                const PlanResult plan =
                    planner.plan(grid, here, goal_cell);
                ++local_stats.replans;
                local_stats.expandedNodes += plan.expandedNodes;
                if (plan.found) {
                    path = plan.path;
                    waypoint = std::min<std::size_t>(1, path.size() - 1);
                } else {
                    path.clear();
                    waypoint = 0;
                }
            }
        }

        // --- Act: steer toward the current waypoint (or the goal) ---
        double tx = env.goal.x;
        double ty = env.goal.y;
        if (!path.empty() && waypoint < path.size()) {
            grid.cellToWorld(path[waypoint], tx, ty);
            if (std::hypot(tx - x, ty - y) < config.gridResolutionM &&
                waypoint + 1 < path.size()) {
                ++waypoint;
                grid.cellToWorld(path[waypoint], tx, ty);
            }
        }
        const double desired = std::atan2(ty - y, tx - x);
        double delta = desired - heading;
        while (delta > M_PI)
            delta -= 2.0 * M_PI;
        while (delta < -M_PI)
            delta += 2.0 * M_PI;
        delta = std::clamp(delta, -config.maxTurnRadPerStep,
                           config.maxTurnRadPerStep);
        heading += delta;

        const double step_len = config.speedMps * config.dtSeconds;
        x += step_len * std::cos(heading);
        y += step_len * std::sin(heading);
        x = std::clamp(x, 0.0, env.arenaSize);
        y = std::clamp(y, 0.0, env.arenaSize);
        result.pathLengthM += step_len;
        if (trajectory)
            trajectory->push_back({x, y});

        // --- Terminate ---
        const double clearance = env.obstacles.empty()
                                     ? env.arenaSize
                                     : env.clearance(x, y);
        result.minClearanceM = std::min(result.minClearanceM, clearance);
        if (clearance < config.robotRadiusM) {
            result.outcome = EpisodeOutcome::Collision;
            break;
        }
        if (std::hypot(x - env.goal.x, y - env.goal.y) <=
            config.goalToleranceM) {
            result.outcome = EpisodeOutcome::Success;
            break;
        }
        if (step + 1 == config.maxSteps)
            result.outcome = EpisodeOutcome::Timeout;
    }

    if (stats) {
        stats->decisions += local_stats.decisions;
        stats->replans += local_stats.replans;
        stats->expandedNodes += local_stats.expandedNodes;
        stats->mapUpdates += local_stats.mapUpdates;
    }
    return result;
}

airlearning::EvaluationResult
evaluateSpa(const airlearning::EnvironmentConfig &env_config,
            const SpaConfig &config, int episodes, std::uint64_t seed,
            SpaEpisodeStats *total_stats)
{
    util::fatalIf(episodes <= 0, "evaluateSpa: episodes must be > 0");

    const airlearning::EnvironmentGenerator generator(env_config);
    util::Rng master(seed);

    airlearning::EvaluationResult aggregate;
    aggregate.episodes = episodes;
    double path_sum = 0.0;
    for (int episode = 0; episode < episodes; ++episode) {
        util::Rng env_rng =
            master.fork(static_cast<std::uint64_t>(episode) * 2);
        util::Rng episode_rng =
            master.fork(static_cast<std::uint64_t>(episode) * 2 + 1);
        const airlearning::Environment env =
            generator.generate(env_rng);
        const EpisodeResult result =
            runSpaEpisode(env, config, episode_rng, total_stats);
        switch (result.outcome) {
          case EpisodeOutcome::Success:
            ++aggregate.successes;
            break;
          case EpisodeOutcome::Collision:
            ++aggregate.collisions;
            break;
          case EpisodeOutcome::Timeout:
            ++aggregate.timeouts;
            break;
        }
        path_sum += result.pathLengthM;
    }
    aggregate.meanPathLengthM = path_sum / episodes;
    return aggregate;
}

} // namespace autopilot::spa
