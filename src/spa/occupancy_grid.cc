#include "spa/occupancy_grid.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace autopilot::spa
{

using util::fatalIf;
using util::panicIf;

OccupancyGrid::OccupancyGrid(double world_size, double resolution)
    : cellSize(resolution)
{
    fatalIf(world_size <= 0.0 || resolution <= 0.0,
            "OccupancyGrid: size and resolution must be positive");
    cells = static_cast<int>(std::ceil(world_size / resolution));
    fatalIf(cells <= 0 || cells > 4096,
            "OccupancyGrid: unreasonable grid dimension");
    data.assign(static_cast<std::size_t>(cells) * cells,
                CellState::Unknown);
}

std::size_t
OccupancyGrid::index(const Cell &cell) const
{
    panicIf(!inBounds(cell), "OccupancyGrid: cell out of bounds");
    return static_cast<std::size_t>(cell.y) * cells + cell.x;
}

Cell
OccupancyGrid::worldToCell(double x, double y) const
{
    Cell cell;
    cell.x = std::clamp(static_cast<int>(x / cellSize), 0, cells - 1);
    cell.y = std::clamp(static_cast<int>(y / cellSize), 0, cells - 1);
    return cell;
}

void
OccupancyGrid::cellToWorld(const Cell &cell, double &x, double &y) const
{
    x = (cell.x + 0.5) * cellSize;
    y = (cell.y + 0.5) * cellSize;
}

bool
OccupancyGrid::inBounds(const Cell &cell) const
{
    return cell.x >= 0 && cell.x < cells && cell.y >= 0 &&
           cell.y < cells;
}

CellState
OccupancyGrid::at(const Cell &cell) const
{
    return data[index(cell)];
}

void
OccupancyGrid::set(const Cell &cell, CellState state)
{
    data[index(cell)] = state;
}

void
OccupancyGrid::markOccupiedDisk(double x, double y, double radius)
{
    const int span = static_cast<int>(std::ceil(radius / cellSize)) + 1;
    const Cell center = worldToCell(x, y);
    for (int dy = -span; dy <= span; ++dy) {
        for (int dx = -span; dx <= span; ++dx) {
            const Cell cell{center.x + dx, center.y + dy};
            if (!inBounds(cell))
                continue;
            double cx = 0.0, cy = 0.0;
            cellToWorld(cell, cx, cy);
            const double dist = std::hypot(cx - x, cy - y);
            if (dist <= radius)
                set(cell, CellState::Occupied);
        }
    }
}

void
OccupancyGrid::markFreeDisk(double x, double y, double radius)
{
    const int span = static_cast<int>(std::ceil(radius / cellSize)) + 1;
    const Cell center = worldToCell(x, y);
    for (int dy = -span; dy <= span; ++dy) {
        for (int dx = -span; dx <= span; ++dx) {
            const Cell cell{center.x + dx, center.y + dy};
            if (!inBounds(cell))
                continue;
            double cx = 0.0, cy = 0.0;
            cellToWorld(cell, cx, cy);
            if (std::hypot(cx - x, cy - y) <= radius &&
                at(cell) != CellState::Occupied) {
                set(cell, CellState::Free);
            }
        }
    }
}

bool
OccupancyGrid::blocked(const Cell &cell, double inflate_m) const
{
    const int span =
        static_cast<int>(std::ceil(inflate_m / cellSize));
    for (int dy = -span; dy <= span; ++dy) {
        for (int dx = -span; dx <= span; ++dx) {
            const Cell probe{cell.x + dx, cell.y + dy};
            if (!inBounds(probe))
                continue;
            if (std::hypot(double(dx), double(dy)) * cellSize >
                inflate_m)
                continue;
            if (at(probe) == CellState::Occupied)
                return true;
        }
    }
    return false;
}

std::int64_t
OccupancyGrid::countState(CellState state) const
{
    return std::count(data.begin(), data.end(), state);
}

} // namespace autopilot::spa
