/**
 * @file
 * The Sense-Plan-Act navigation pipeline, runnable inside the same
 * domain-randomized episodes as the E2E policies.
 *
 * Per decision tick: sense (range-limited, probabilistic detection),
 * update the occupancy map, replan with A* when the current path is
 * invalidated, and steer toward the next waypoint. Between decision
 * ticks the vehicle flies blind on its last heading - which is exactly
 * how compute latency converts into collision risk, and what couples the
 * SPA accelerator design (decision rate) to task success.
 */

#ifndef AUTOPILOT_SPA_PIPELINE_H
#define AUTOPILOT_SPA_PIPELINE_H

#include <cstdint>

#include "airlearning/environment.h"
#include "airlearning/rollout.h"
#include "spa/occupancy_grid.h"
#include "spa/planner.h"
#include "util/rng.h"

namespace autopilot::spa
{

/** SPA pipeline parameters (perception + mapping + planning). */
struct SpaConfig
{
    double sensorRangeM = 2.6;    ///< Depth-sensor range.
    double detectionProb = 0.85;  ///< Per-tick detection reliability.
    double camoRangeM = 0.6;      ///< Range for camouflaged obstacles.
    double gridResolutionM = 0.5; ///< Occupancy-grid cell size.
    double inflationM = 0.6;      ///< Planner obstacle inflation.
    double decisionRateHz = 10.0; ///< Sense-plan-act rate (from compute).
    double speedMps = 3.0;        ///< Commanded speed.
    double dtSeconds = 0.1;       ///< Physics step.
    int maxSteps = 900;           ///< Timeout budget.
    double robotRadiusM = 0.3;
    double goalToleranceM = 1.0;
    double maxTurnRadPerStep = 0.35;
};

/** Compute-cost telemetry of one SPA episode. */
struct SpaEpisodeStats
{
    int decisions = 0;       ///< Sense-plan-act ticks executed.
    int replans = 0;         ///< A* invocations.
    std::int64_t expandedNodes = 0; ///< Total A* expansions.
    std::int64_t mapUpdates = 0;    ///< Occupied/free disk updates.
};

/** World-space position sample of a flown trajectory. */
struct TrajectoryPoint
{
    double x = 0.0;
    double y = 0.0;
};

/**
 * Run one SPA episode in a generated environment.
 *
 * @param env        Episode environment.
 * @param config     Pipeline parameters.
 * @param rng        Episode random stream.
 * @param stats      Optional compute-cost telemetry (may be null).
 * @param trajectory Optional per-step position log (may be null).
 */
airlearning::EpisodeResult runSpaEpisode(
    const airlearning::Environment &env, const SpaConfig &config,
    util::Rng &rng, SpaEpisodeStats *stats = nullptr,
    std::vector<TrajectoryPoint> *trajectory = nullptr);

/**
 * Evaluate the SPA pipeline over many randomized episodes (the SPA
 * counterpart of airlearning::evaluatePolicy).
 */
airlearning::EvaluationResult evaluateSpa(
    const airlearning::EnvironmentConfig &env_config,
    const SpaConfig &config, int episodes, std::uint64_t seed,
    SpaEpisodeStats *total_stats = nullptr);

} // namespace autopilot::spa

#endif // AUTOPILOT_SPA_PIPELINE_H
