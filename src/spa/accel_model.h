/**
 * @file
 * Parameterizable hardware templates for the SPA pipeline stages
 * (Section VII / VIII: AutoPilot "can be adapted to the SPA paradigm -
 * the only requirement is that the algorithm and hardware templates be
 * parameterizable").
 *
 * Three stage accelerators, modelled at the same spec level as the
 * paper's taxonomy entries:
 *  - a Navion-style [80] visual-odometry / perception front end
 *    (parallel feature lanes),
 *  - an OMU-style [37] occupancy-map update engine (parallel banks),
 *  - a RoboX-style [70] planning engine (parallel expansion cores).
 *
 * The SPA decision rate is the reciprocal of the summed stage latencies
 * (the stages run back to back per frame, MAVBench-style), and the NPU
 * power is the sum of stage powers - which plugs straight into the same
 * Phase 3 machinery (heatsink mass, F-1, missions) as the E2E designs.
 */

#ifndef AUTOPILOT_SPA_ACCEL_MODEL_H
#define AUTOPILOT_SPA_ACCEL_MODEL_H

#include <string>
#include <vector>

namespace autopilot::spa
{

/**
 * Per-frame work of the three stages, giga-operations.
 *
 * SPA is markedly heavier per decision than an E2E forward pass (the
 * paper's Section II: E2E methods "are computationally faster compared
 * to the SPA paradigm"): a visual-inertial front end plus map update
 * plus (re)planning totals several GOP per frame vs. the E2E policies'
 * ~1-2 GMAC.
 */
struct SpaWorkload
{
    double vioGop = 2.5;      ///< Feature extraction + tracking + BA.
    double mappingGop = 0.8;  ///< Occupancy-map ray/disk updates.
    double planningGop = 1.2; ///< Amortized A*/RRT expansions.
};

/** Hardware knobs of the SPA accelerator template. */
struct SpaAcceleratorConfig
{
    int vioLanes = 4;      ///< In {1, 2, 4, 8, 16, 32}.
    int mappingBanks = 2;  ///< In {1, 2, 4, 8, 16}.
    int planningCores = 2; ///< In {1, 2, 4, 8, 16}.
    double clockGhz = 0.2;

    /** Short identifier, e.g. "spa_v4_m2_p2". */
    std::string name() const;

    /** Abort via fatal() on out-of-range knobs. */
    void validate() const;
};

/** Legal knob values for the SPA design space. */
struct SpaHardwareSpace
{
    std::vector<int> laneChoices = {1, 2, 4, 8, 16, 32};
    std::vector<int> bankChoices = {1, 2, 4, 8, 16};
    std::vector<int> coreChoices = {1, 2, 4, 8, 16};

    /** All configurations (lanes x banks x cores). */
    std::vector<SpaAcceleratorConfig> enumerate() const;
};

/** Performance/power estimate of one SPA accelerator configuration. */
struct SpaComputeEstimate
{
    double vioLatencyMs = 0.0;
    double mappingLatencyMs = 0.0;
    double planningLatencyMs = 0.0;
    double powerW = 0.0; ///< Accelerator subsystem power.

    /** End-to-end stage latency per decision, milliseconds. */
    double totalLatencyMs() const
    {
        return vioLatencyMs + mappingLatencyMs + planningLatencyMs;
    }

    /** Decision (action) rate, Hz. */
    double decisionRateHz() const
    {
        return 1000.0 / totalLatencyMs();
    }
};

/** Analytic performance/power model of the SPA stage accelerators. */
class SpaComputeModel
{
  public:
    /** @param workload Per-frame stage work (defaults from telemetry). */
    explicit SpaComputeModel(const SpaWorkload &workload = SpaWorkload());

    /** Estimate latency and power for a configuration. */
    SpaComputeEstimate estimate(const SpaAcceleratorConfig &config) const;

    const SpaWorkload &workload() const { return work; }

  private:
    SpaWorkload work;

    // Per-unit throughput and power at 28 nm, 0.2 GHz reference (wide
    // SIMD datapaths per lane/bank/core).
    static constexpr double opsPerLaneCycle = 64.0;
    static constexpr double opsPerBankCycle = 32.0;
    static constexpr double opsPerCoreCycle = 32.0;
    static constexpr double laneWatts = 0.030;
    static constexpr double bankWatts = 0.020;
    static constexpr double coreWatts = 0.040;
    static constexpr double baseWatts = 0.060; ///< Sequencer + NoC.
};

} // namespace autopilot::spa

#endif // AUTOPILOT_SPA_ACCEL_MODEL_H
