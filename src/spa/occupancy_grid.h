/**
 * @file
 * 2-D occupancy grid for the Sense-Plan-Act autonomy pipeline
 * (Section VII: the SPA "mapping" stage, OctoMap-style [37] but in 2-D).
 *
 * Cells are unknown until observed; sensing marks free space around the
 * vehicle and occupied disks at detected obstacles. The planner treats
 * unknown space as traversable (optimistic exploration, the standard
 * choice for goal-directed navigation) and occupied space, inflated by
 * the vehicle radius, as blocked.
 */

#ifndef AUTOPILOT_SPA_OCCUPANCY_GRID_H
#define AUTOPILOT_SPA_OCCUPANCY_GRID_H

#include <cstdint>
#include <vector>

namespace autopilot::spa
{

/** Occupancy state of one cell. */
enum class CellState : std::uint8_t
{
    Unknown,
    Free,
    Occupied,
};

/** Integer cell coordinate. */
struct Cell
{
    int x = 0;
    int y = 0;

    bool operator==(const Cell &other) const = default;
};

/** Square 2-D occupancy grid over a [0, size] x [0, size] world. */
class OccupancyGrid
{
  public:
    /**
     * @param world_size  World side length in meters.
     * @param resolution  Cell side length in meters (> 0).
     */
    OccupancyGrid(double world_size, double resolution);

    int widthCells() const { return cells; }
    double resolution() const { return cellSize; }

    /** Convert a world position to a (clamped) cell coordinate. */
    Cell worldToCell(double x, double y) const;

    /** World-space center of a cell. */
    void cellToWorld(const Cell &cell, double &x, double &y) const;

    /** True when the cell lies inside the grid. */
    bool inBounds(const Cell &cell) const;

    /** State of a cell (panic when out of bounds). */
    CellState at(const Cell &cell) const;

    /** Set a cell's state (panic when out of bounds). */
    void set(const Cell &cell, CellState state);

    /**
     * Mark the disk around (x, y) of radius @p radius as occupied.
     * Occupied never reverts to free (conservative mapping).
     */
    void markOccupiedDisk(double x, double y, double radius);

    /**
     * Mark the disk around (x, y) as free, without overwriting occupied
     * cells.
     */
    void markFreeDisk(double x, double y, double radius);

    /**
     * True when the cell (or any cell within @p inflate_m of it) is
     * occupied - the planner's collision predicate.
     */
    bool blocked(const Cell &cell, double inflate_m) const;

    /** Number of cells in the given state (diagnostics / tests). */
    std::int64_t countState(CellState state) const;

  private:
    int cells = 0;
    double cellSize = 0.0;
    std::vector<CellState> data;

    std::size_t index(const Cell &cell) const;
};

} // namespace autopilot::spa

#endif // AUTOPILOT_SPA_OCCUPANCY_GRID_H
