#include "power/sram_model.h"

#include <cmath>

#include "util/logging.h"

namespace autopilot::power
{

SramModel::SramModel(int capacity_kb, const TechnologyNode &node)
    : kb(capacity_kb), tech(node)
{
    util::fatalIf(capacity_kb <= 0,
                  "SramModel: capacity must be positive");
}

double
SramModel::readEnergyPj() const
{
    return baseReadPj * std::sqrt(static_cast<double>(kb) /
                                  baseCapacityKb) *
           tech.dynamicScale;
}

double
SramModel::writeEnergyPj() const
{
    return readEnergyPj() * writeFactor;
}

double
SramModel::leakageMw() const
{
    return leakMwPerKb * static_cast<double>(kb) * tech.leakageScale;
}

} // namespace autopilot::power
