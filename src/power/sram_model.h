/**
 * @file
 * CACTI-style analytic SRAM energy and leakage model.
 *
 * The paper models scratchpad power with CACTI-P [49]; we reproduce the
 * scaling behaviour CACTI exhibits for single-banked scratchpads at 28 nm:
 * per-access energy grows roughly with the square root of capacity (longer
 * bit/word lines), leakage grows linearly with capacity.
 */

#ifndef AUTOPILOT_POWER_SRAM_MODEL_H
#define AUTOPILOT_POWER_SRAM_MODEL_H

#include <cstdint>

#include "power/technology.h"

namespace autopilot::power
{

/** Analytic SRAM macro model, parameterized by capacity and node. */
class SramModel
{
  public:
    /**
     * @param capacity_kb Macro capacity in KiB (> 0, fatal otherwise).
     * @param node        Process node; defaults to the 28 nm reference.
     */
    explicit SramModel(int capacity_kb,
                       const TechnologyNode &node = referenceNode());

    /** Energy of one 8-bit read, picojoules. */
    double readEnergyPj() const;

    /** Energy of one 8-bit write, picojoules (~1.1x read). */
    double writeEnergyPj() const;

    /** Standby leakage power, milliwatts. */
    double leakageMw() const;

    int capacityKb() const { return kb; }

  private:
    int kb;
    TechnologyNode tech;

    // 28 nm reference constants, calibrated so a 32 KiB macro costs
    // ~0.8 pJ per byte-read and leaks ~0.05 mW per KiB.
    static constexpr double baseReadPj = 0.8;
    static constexpr double baseCapacityKb = 32.0;
    static constexpr double writeFactor = 1.1;
    static constexpr double leakMwPerKb = 0.05;
};

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_SRAM_MODEL_H
