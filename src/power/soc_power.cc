#include "power/soc_power.h"

#include "util/logging.h"

namespace autopilot::power
{

SocPowerBreakdown
socPower(double npu_w, const FixedSocComponents &fixed)
{
    util::fatalIf(npu_w < 0.0, "socPower: negative NPU power");
    SocPowerBreakdown breakdown;
    breakdown.npuW = npu_w;
    breakdown.mcuW = fixed.mcuCores * fixed.mcuCoreW;
    breakdown.sensorW = fixed.sensorW;
    breakdown.mipiW = fixed.mipiW;
    return breakdown;
}

} // namespace autopilot::power
