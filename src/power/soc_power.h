/**
 * @file
 * Full-SoC power: the fixed components of Table III plus the variable NPU.
 *
 * The DSSoC template (Fig. 3a) fixes an ultra-low-power MCU pair running
 * the PID flight-controller stack, an OV9755-class RGB sensor and a MIPI
 * camera interface; only the NPU varies during the DSE.
 */

#ifndef AUTOPILOT_POWER_SOC_POWER_H
#define AUTOPILOT_POWER_SOC_POWER_H

namespace autopilot::power
{

/** Fixed SoC components per Table III. */
struct FixedSocComponents
{
    int mcuCores = 2;           ///< ARMv8-M cores for the flight stack.
    double mcuCoreW = 0.00038;  ///< 0.38 mW per core at 100 MHz, 28 nm.
    double sensorW = 0.100;     ///< OV9755 RGB sensor.
    double mipiW = 0.022;       ///< MIPI CSI receiver.

    /** Total fixed power in watts. */
    double totalW() const
    {
        return mcuCores * mcuCoreW + sensorW + mipiW;
    }
};

/** Breakdown of SoC power in watts. */
struct SocPowerBreakdown
{
    double npuW = 0.0;
    double mcuW = 0.0;
    double sensorW = 0.0;
    double mipiW = 0.0;

    double totalW() const { return npuW + mcuW + sensorW + mipiW; }
};

/**
 * Combine the variable NPU power with the fixed components.
 *
 * @param npu_w  Average NPU power in watts.
 * @param fixed  Fixed component spec (defaults to Table III).
 */
SocPowerBreakdown socPower(double npu_w,
                           const FixedSocComponents &fixed =
                               FixedSocComponents());

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_SOC_POWER_H
