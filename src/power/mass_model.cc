#include "power/mass_model.h"

#include "util/logging.h"

namespace autopilot::power
{

MassModel::MassModel(const MassModelParams &params) : p(params)
{
    util::fatalIf(p.deltaTKelvin <= 0.0 || p.volumetricWPerCm3K <= 0.0,
                  "MassModel: thermal parameters must be positive");
    util::fatalIf(p.finFillFactor <= 0.0 || p.finFillFactor > 1.0,
                  "MassModel: fill factor must be in (0, 1]");
}

double
MassModel::heatsinkGrams(double tdp_w) const
{
    util::fatalIf(tdp_w < 0.0, "MassModel::heatsinkGrams: negative TDP");
    if (tdp_w <= p.heatsinkFreeW)
        return 0.0;
    // Volume (cm^3) needed to dissipate tdp_w at the allowed rise.
    const double volume_cm3 =
        tdp_w / (p.volumetricWPerCm3K * p.deltaTKelvin);
    return volume_cm3 * p.aluminumGPerCm3 * p.finFillFactor;
}

double
MassModel::computePayloadGrams(double tdp_w) const
{
    return p.motherboardGrams + heatsinkGrams(tdp_w);
}

} // namespace autopilot::power
