/**
 * @file
 * Process-technology scaling factors.
 *
 * All energy/leakage constants in the power models are referenced to a
 * 28 nm planar process (the node of the Cortex-M33 numbers in Table III).
 * Technology-node scaling is one of the two "architectural fine-tuning"
 * knobs of Phase 3 (Section III-C), so the factors are exposed as data.
 */

#ifndef AUTOPILOT_POWER_TECHNOLOGY_H
#define AUTOPILOT_POWER_TECHNOLOGY_H

namespace autopilot::power
{

/** Scaling factors of a process node relative to the 28 nm reference. */
struct TechnologyNode
{
    int nm = 28;                 ///< Feature size label.
    double dynamicScale = 1.0;   ///< Dynamic energy per op vs. 28 nm.
    double leakageScale = 1.0;   ///< Static power per device vs. 28 nm.
    double frequencyScale = 1.0; ///< Achievable clock vs. 28 nm.
};

/** The 28 nm reference node. */
TechnologyNode referenceNode();

/**
 * Look up a supported node (40, 28, 16, 7 nm).
 *
 * Factors follow published full-node scaling trends (roughly 0.5x dynamic
 * energy and 1.3x frequency per full node).
 *
 * Fatal on unsupported nodes.
 */
TechnologyNode technologyNode(int nm);

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_TECHNOLOGY_H
