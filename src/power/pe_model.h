/**
 * @file
 * Processing-element energy model.
 *
 * Per-MAC dynamic energy and per-PE leakage follow the on-chip-memory /
 * datapath numbers of Li et al., DAC 2019 [48] for an INT8 MAC with its
 * operand registers and forwarding links at 28 nm.
 */

#ifndef AUTOPILOT_POWER_PE_MODEL_H
#define AUTOPILOT_POWER_PE_MODEL_H

#include <cstdint>

#include "power/technology.h"

namespace autopilot::power
{

/** Energy/leakage model for the systolic PE array. */
class PeModel
{
  public:
    /** @param node Process node; defaults to the 28 nm reference. */
    explicit PeModel(const TechnologyNode &node = referenceNode());

    /**
     * Dynamic energy of one MAC (with operand movement), pJ, for the
     * given operand width. The INT8 reference (1 byte) is the Li et al.
     * constant; wider operands scale quadratically with width - MAC
     * array area/switching grows as the square of operand bits (fp16 4x,
     * fp32 16x), the standard multiplier energy model. The default
     * reproduces the legacy INT8 number bit for bit (scale factor is
     * exactly 1.0).
     */
    double macEnergyPj(int bytesPerElement = 1) const;

    /** Energy scale factor of an operand width relative to INT8. */
    static double precisionEnergyScale(int bytesPerElement);

    /** Leakage of one PE (MAC + registers + control), milliwatts. */
    double leakagePerPeMw() const;

    /** Total array leakage for @p pe_count PEs, milliwatts. */
    double arrayLeakageMw(std::int64_t pe_count) const;

  private:
    TechnologyNode tech;

    // 28 nm reference constants.
    static constexpr double baseMacPj = 2.0;
    static constexpr double baseLeakMwPerPe = 0.30;
};

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_PE_MODEL_H
