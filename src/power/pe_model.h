/**
 * @file
 * Processing-element energy model.
 *
 * Per-MAC dynamic energy and per-PE leakage follow the on-chip-memory /
 * datapath numbers of Li et al., DAC 2019 [48] for an INT8 MAC with its
 * operand registers and forwarding links at 28 nm.
 */

#ifndef AUTOPILOT_POWER_PE_MODEL_H
#define AUTOPILOT_POWER_PE_MODEL_H

#include <cstdint>

#include "power/technology.h"

namespace autopilot::power
{

/** Energy/leakage model for the systolic PE array. */
class PeModel
{
  public:
    /** @param node Process node; defaults to the 28 nm reference. */
    explicit PeModel(const TechnologyNode &node = referenceNode());

    /** Dynamic energy of one INT8 MAC (with operand movement), pJ. */
    double macEnergyPj() const;

    /** Leakage of one PE (MAC + registers + control), milliwatts. */
    double leakagePerPeMw() const;

    /** Total array leakage for @p pe_count PEs, milliwatts. */
    double arrayLeakageMw(std::int64_t pe_count) const;

  private:
    TechnologyNode tech;

    // 28 nm reference constants.
    static constexpr double baseMacPj = 2.0;
    static constexpr double baseLeakMwPerPe = 0.30;
};

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_PE_MODEL_H
