#include "power/npu_power.h"

#include <cmath>
#include <string>

#include "util/logging.h"

namespace autopilot::power
{

NpuPowerModel::NpuPowerModel(const systolic::AcceleratorConfig &config,
                             const TechnologyNode &node)
    : cfg(config), tech(node), peModel(node),
      ifmapSram(config.ifmapSramKb, node),
      filterSram(config.filterSramKb, node),
      ofmapSram(config.ofmapSramKb, node)
{
    cfg.validate();
}

NpuPowerBreakdown
NpuPowerModel::estimate(const systolic::RunResult &run,
                        double backgroundBytesPerSec) const
{
    util::fatalIf(run.totalCycles <= 0,
                  "NpuPowerModel::estimate: empty run result");
    util::fatalIf(!(backgroundBytesPerSec >= 0.0) ||
                      !std::isfinite(backgroundBytesPerSec),
                  "NpuPowerModel::estimate: background DRAM traffic "
                  "must be finite and >= 0");

    const double seconds = run.runtimeSeconds(cfg.clockGhz);
    const double pj_to_w = 1e-12 / seconds;
    // A huge clock against a tiny cycle count makes `seconds` denormal
    // (or, through upstream arithmetic bugs, zero/NaN) and `pj_to_w`
    // inf - which would NaN every objective downstream without a
    // diagnostic. Refuse the degenerate conversion instead.
    util::fatalIf(!std::isfinite(seconds) || !std::isfinite(pj_to_w),
                  "NpuPowerModel::estimate: degenerate run duration (" +
                      std::to_string(seconds) +
                      " s) - clock/cycle counts produce a non-finite "
                      "pJ-to-W conversion");

    NpuPowerBreakdown breakdown;

    breakdown.peDynamicW = static_cast<double>(run.totalMacs) *
                           peModel.macEnergyPj() * pj_to_w;
    breakdown.peLeakageW = peModel.arrayLeakageMw(cfg.peCount()) * 1e-3;

    const systolic::LayerTraffic &traffic = run.traffic;
    double sram_pj = 0.0;
    sram_pj += static_cast<double>(traffic.ifmapSramReads) *
               ifmapSram.readEnergyPj();
    sram_pj += static_cast<double>(traffic.filterSramReads) *
               filterSram.readEnergyPj();
    sram_pj += static_cast<double>(traffic.ofmapSramWrites) *
               ofmapSram.writeEnergyPj();
    sram_pj += static_cast<double>(traffic.psumSramReads) *
               ofmapSram.readEnergyPj();
    sram_pj += static_cast<double>(traffic.psumSramWrites) *
               ofmapSram.writeEnergyPj();
    breakdown.sramDynamicW = sram_pj * pj_to_w;

    breakdown.sramLeakageW =
        (ifmapSram.leakageMw() + filterSram.leakageMw() +
         ofmapSram.leakageMw()) *
        1e-3;

    const double bytes_per_second =
        static_cast<double>(traffic.totalDramBytes()) / seconds +
        backgroundBytesPerSec;
    breakdown.dramW = dramModel.averagePowerMw(bytes_per_second) * 1e-3;

    breakdown.controllerW = controllerBaseW * tech.leakageScale;

    // Apply the glue margin to the dynamic components.
    breakdown.peDynamicW *= glueMargin;
    breakdown.sramDynamicW *= glueMargin;

    return breakdown;
}

double
NpuPowerModel::averagePowerW(const systolic::RunResult &run,
                             double backgroundBytesPerSec) const
{
    return estimate(run, backgroundBytesPerSec).totalW();
}

} // namespace autopilot::power
