#include "power/npu_power.h"

#include <cmath>
#include <string>

#include "power/soc_power.h"
#include "util/logging.h"

namespace autopilot::power
{

NpuPowerModel::NpuPowerModel(const systolic::AcceleratorConfig &config,
                             const TechnologyNode &node)
    : cfg(config), tech(node), peModel(node),
      ifmapSram(config.ifmapSramKb, node),
      filterSram(config.filterSramKb, node),
      ofmapSram(config.ofmapSramKb, node)
{
    cfg.validate();
}

NpuPowerBreakdown
NpuPowerModel::estimate(const systolic::RunResult &run,
                        double backgroundBytesPerSec) const
{
    return estimateCounts(run.totalMacs, run.totalCycles, run.traffic,
                          backgroundBytesPerSec);
}

NpuPowerBreakdown
NpuPowerModel::estimateCounts(std::int64_t total_macs,
                              std::int64_t total_cycles,
                              const systolic::LayerTraffic &traffic,
                              double backgroundBytesPerSec) const
{
    util::fatalIf(total_cycles <= 0,
                  "NpuPowerModel::estimate: empty run result");
    util::fatalIf(!(backgroundBytesPerSec >= 0.0) ||
                      !std::isfinite(backgroundBytesPerSec),
                  "NpuPowerModel::estimate: background DRAM traffic "
                  "must be finite and >= 0");

    // Same expression as RunResult::runtimeSeconds at this clock.
    const double seconds =
        static_cast<double>(total_cycles) / (cfg.clockGhz * 1e9);
    const double pj_to_w = 1e-12 / seconds;
    // A huge clock against a tiny cycle count makes `seconds` denormal
    // (or, through upstream arithmetic bugs, zero/NaN) and `pj_to_w`
    // inf - which would NaN every objective downstream without a
    // diagnostic. Refuse the degenerate conversion instead.
    util::fatalIf(!std::isfinite(seconds) || !std::isfinite(pj_to_w),
                  "NpuPowerModel::estimate: degenerate run duration (" +
                      std::to_string(seconds) +
                      " s) - clock/cycle counts produce a non-finite "
                      "pJ-to-W conversion");

    NpuPowerBreakdown breakdown;

    // MAC energy scales with the configured operand width - before this
    // the traffic side already charged bytesPerElement while every MAC
    // was billed at the INT8 constant, silently under-charging any
    // non-int8 configuration.
    breakdown.peDynamicW = static_cast<double>(total_macs) *
                           peModel.macEnergyPj(cfg.bytesPerElement) *
                           pj_to_w;
    breakdown.peLeakageW = peModel.arrayLeakageMw(cfg.peCount()) * 1e-3;

    // SRAM access counts are element counts; the per-access energies are
    // for one 8-bit word, so wider operands cost proportionally more
    // (x1 at the int8 default keeps legacy numbers bit-identical).
    const double sram_width =
        static_cast<double>(cfg.bytesPerElement);
    double sram_pj = 0.0;
    sram_pj += static_cast<double>(traffic.ifmapSramReads) *
               ifmapSram.readEnergyPj();
    sram_pj += static_cast<double>(traffic.filterSramReads) *
               filterSram.readEnergyPj();
    sram_pj += static_cast<double>(traffic.ofmapSramWrites) *
               ofmapSram.writeEnergyPj();
    sram_pj += static_cast<double>(traffic.psumSramReads) *
               ofmapSram.readEnergyPj();
    sram_pj += static_cast<double>(traffic.psumSramWrites) *
               ofmapSram.writeEnergyPj();
    breakdown.sramDynamicW = sram_pj * sram_width * pj_to_w;

    breakdown.sramLeakageW =
        (ifmapSram.leakageMw() + filterSram.leakageMw() +
         ofmapSram.leakageMw()) *
        1e-3;

    const double bytes_per_second =
        static_cast<double>(traffic.totalDramBytes()) / seconds +
        backgroundBytesPerSec;
    breakdown.dramW = dramModel.averagePowerMw(bytes_per_second) * 1e-3;

    breakdown.controllerW = controllerBaseW * tech.leakageScale;

    // Apply the glue margin to the dynamic components.
    breakdown.peDynamicW *= glueMargin;
    breakdown.sramDynamicW *= glueMargin;

    return breakdown;
}

double
NpuPowerModel::averagePowerW(const systolic::RunResult &run,
                             double backgroundBytesPerSec) const
{
    return estimate(run, backgroundBytesPerSec).totalW();
}

void
batchNpuSocPowerW(std::span<const systolic::AcceleratorConfig> configs,
                  std::span<const std::int64_t> total_macs,
                  std::span<const std::int64_t> total_cycles,
                  std::span<const systolic::LayerTraffic> traffic,
                  std::span<double> npu_w, std::span<double> soc_w,
                  double backgroundBytesPerSec, const TechnologyNode &node)
{
    util::panicIf(total_macs.size() != configs.size() ||
                      total_cycles.size() != configs.size() ||
                      traffic.size() != configs.size() ||
                      npu_w.size() != configs.size() ||
                      soc_w.size() != configs.size(),
                  "batchNpuSocPowerW: span size mismatch");
    for (std::size_t i = 0; i < configs.size(); ++i) {
        // Constructing the model per design mirrors the scalar path
        // (evaluateWithEngine builds a fresh NpuPowerModel per point);
        // the sub-model setup is cheap arithmetic, no heap.
        const NpuPowerModel model(configs[i], node);
        npu_w[i] = model
                       .estimateCounts(total_macs[i], total_cycles[i],
                                       traffic[i], backgroundBytesPerSec)
                       .totalW();
        soc_w[i] = socPower(npu_w[i]).totalW();
    }
}

} // namespace autopilot::power
