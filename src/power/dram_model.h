/**
 * @file
 * Micron-style DRAM power model.
 *
 * The paper feeds SCALE-Sim DRAM traces into the Micron DDR4 power
 * calculator [9]; we reproduce its two dominant terms for an LPDDR-class
 * part: energy proportional to bytes moved (activate + read/write + I/O)
 * and a background/standby power floor.
 */

#ifndef AUTOPILOT_POWER_DRAM_MODEL_H
#define AUTOPILOT_POWER_DRAM_MODEL_H

#include <cstdint>

namespace autopilot::power
{

/**
 * Actual DRAM command activity of a simulated interval, as counted by
 * the bank-level channel model (dram::ChannelStats). The flat
 * averagePowerMw() path folds row energy into its per-byte coefficient;
 * this record lets commandPowerMw() charge it from what the banks
 * really did instead.
 */
struct DramCommandCounts
{
    std::int64_t activates = 0;  ///< Row activations (misses+conflicts).
    std::int64_t precharges = 0; ///< Explicit precharges (conflicts).
    std::int64_t refreshes = 0;  ///< All-bank refresh commands.
    std::int64_t bytes = 0;      ///< Data moved over the channel.
};

/** LPDDR-class external-memory power model. */
class DramModel
{
  public:
    DramModel() = default;

    /**
     * @param energy_pj_per_byte Transfer energy including I/O.
     * @param background_mw      Standby + refresh power floor.
     */
    DramModel(double energy_pj_per_byte, double background_mw);

    /** Energy to move @p bytes, picojoules. */
    double transferEnergyPj(std::int64_t bytes) const;

    /** Average power for a sustained traffic rate, milliwatts. */
    double averagePowerMw(double bytes_per_second) const;

    /**
     * Average power from actual command counts over @p seconds,
     * milliwatts: the standby floor plus activate/precharge/refresh
     * energy plus per-byte I/O energy. The per-byte coefficient here is
     * ioPjPerByte(), LOWER than energyPjPerByte(): the flat model's
     * 120 pJ/B amortizes row activation into every byte, while this
     * path bills activation explicitly per command - so a high-locality
     * stream (few activates per byte) is cheaper than the flat model
     * and a conflict-heavy one dearer. Used by the dram backend, which
     * simulates background streams explicitly and must not also pay
     * the flat background-bytes/s surcharge (the double-charging fix).
     *
     * Fatal when @p seconds is not positive-finite - the pJ-to-mW
     * conversion would otherwise NaN/inf every power objective.
     */
    double commandPowerMw(const DramCommandCounts &counts,
                          double seconds) const;

    double energyPjPerByte() const { return pjPerByte; }
    double backgroundMw() const { return backgroundPowerMw; }
    /// Pure I/O + column-access energy per byte (row energy excluded).
    double ioPjPerByte() const { return ioPj; }
    double activateEnergyPj() const { return activatePj; }
    double refreshEnergyPj() const { return refreshPj; }

  private:
    // LPDDR4-class defaults at 28 nm-era controllers.
    double pjPerByte = 120.0;
    double backgroundPowerMw = 40.0;
    // Command-level split of the same budget: ~2 nJ per row
    // activate+precharge pair, ~30 nJ per all-bank refresh, and the
    // per-byte remainder once row energy is billed separately.
    double ioPj = 80.0;
    double activatePj = 2000.0;
    double refreshPj = 30000.0;
};

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_DRAM_MODEL_H
