/**
 * @file
 * Micron-style DRAM power model.
 *
 * The paper feeds SCALE-Sim DRAM traces into the Micron DDR4 power
 * calculator [9]; we reproduce its two dominant terms for an LPDDR-class
 * part: energy proportional to bytes moved (activate + read/write + I/O)
 * and a background/standby power floor.
 */

#ifndef AUTOPILOT_POWER_DRAM_MODEL_H
#define AUTOPILOT_POWER_DRAM_MODEL_H

#include <cstdint>

namespace autopilot::power
{

/** LPDDR-class external-memory power model. */
class DramModel
{
  public:
    DramModel() = default;

    /**
     * @param energy_pj_per_byte Transfer energy including I/O.
     * @param background_mw      Standby + refresh power floor.
     */
    DramModel(double energy_pj_per_byte, double background_mw);

    /** Energy to move @p bytes, picojoules. */
    double transferEnergyPj(std::int64_t bytes) const;

    /** Average power for a sustained traffic rate, milliwatts. */
    double averagePowerMw(double bytes_per_second) const;

    double energyPjPerByte() const { return pjPerByte; }
    double backgroundMw() const { return backgroundPowerMw; }

  private:
    // LPDDR4-class defaults at 28 nm-era controllers.
    double pjPerByte = 120.0;
    double backgroundPowerMw = 40.0;
};

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_DRAM_MODEL_H
