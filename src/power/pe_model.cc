#include "power/pe_model.h"

#include "util/logging.h"

namespace autopilot::power
{

PeModel::PeModel(const TechnologyNode &node) : tech(node)
{
}

double
PeModel::precisionEnergyScale(int bytesPerElement)
{
    util::fatalIf(bytesPerElement <= 0,
                  "PeModel: operand width must be positive");
    // Multiplier energy grows with the square of operand bits: int8 1x,
    // fp16 4x, fp32 16x.
    const double widths = static_cast<double>(bytesPerElement);
    return widths * widths;
}

double
PeModel::macEnergyPj(int bytesPerElement) const
{
    // bytesPerElement == 1 multiplies by exactly 1.0, reproducing the
    // pre-precision INT8 energy bit for bit.
    return baseMacPj * tech.dynamicScale *
           precisionEnergyScale(bytesPerElement);
}

double
PeModel::leakagePerPeMw() const
{
    return baseLeakMwPerPe * tech.leakageScale;
}

double
PeModel::arrayLeakageMw(std::int64_t pe_count) const
{
    util::panicIf(pe_count < 0, "PeModel::arrayLeakageMw: negative count");
    return leakagePerPeMw() * static_cast<double>(pe_count);
}

} // namespace autopilot::power
