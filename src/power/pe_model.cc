#include "power/pe_model.h"

#include "util/logging.h"

namespace autopilot::power
{

PeModel::PeModel(const TechnologyNode &node) : tech(node)
{
}

double
PeModel::macEnergyPj() const
{
    return baseMacPj * tech.dynamicScale;
}

double
PeModel::leakagePerPeMw() const
{
    return baseLeakMwPerPe * tech.leakageScale;
}

double
PeModel::arrayLeakageMw(std::int64_t pe_count) const
{
    util::panicIf(pe_count < 0, "PeModel::arrayLeakageMw: negative count");
    return leakagePerPeMw() * static_cast<double>(pe_count);
}

} // namespace autopilot::power
