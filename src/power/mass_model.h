/**
 * @file
 * Compute payload weight model (Section III-C, "Compute Weight Modelling").
 *
 * The onboard computer's mass has two parts: a motherboard/PCB carrying
 * the SoC (a fixed ~20 g for Raspberry-Pi / Coral-class boards) and a
 * passive aluminum heatsink sized from the SoC's TDP. Heatsink sizing
 * follows the natural-convection volume calculators the paper cites [7]:
 * required volume scales linearly with dissipated power at a fixed
 * allowable temperature rise, and mass follows from aluminum density and
 * a fin fill factor. Very low-power SoCs (PULP-class) need no heatsink.
 */

#ifndef AUTOPILOT_POWER_MASS_MODEL_H
#define AUTOPILOT_POWER_MASS_MODEL_H

namespace autopilot::power
{

/** Parameters of the heatsink/motherboard mass model. */
struct MassModelParams
{
    double motherboardGrams = 20.0; ///< PCB + connectors + regulators.
    double deltaTKelvin = 40.0;     ///< Allowed rise over ambient.
    /// Natural-convection volumetric dissipation, W per cm^3 per K.
    /// 0.0031 W/(cm^3 K) reproduces the celsiainc.com calculator's
    /// mid-range "natural convection" sizing.
    double volumetricWPerCm3K = 0.0031;
    double aluminumGPerCm3 = 2.70;  ///< Heatsink material density.
    double finFillFactor = 0.25;    ///< Metal fraction of the envelope.
    double heatsinkFreeW = 0.25;    ///< TDP below which no heatsink fits.
};

/** Compute payload mass estimator. */
class MassModel
{
  public:
    explicit MassModel(const MassModelParams &params = MassModelParams());

    /** Heatsink mass in grams for a given TDP in watts. */
    double heatsinkGrams(double tdp_w) const;

    /** Total compute payload (motherboard + heatsink), grams. */
    double computePayloadGrams(double tdp_w) const;

    const MassModelParams &params() const { return p; }

  private:
    MassModelParams p;
};

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_MASS_MODEL_H
