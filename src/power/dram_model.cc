#include "power/dram_model.h"

#include <cmath>

#include "util/logging.h"

namespace autopilot::power
{

DramModel::DramModel(double energy_pj_per_byte, double background_mw)
    : pjPerByte(energy_pj_per_byte), backgroundPowerMw(background_mw)
{
    // !(x >= 0) instead of x < 0 so NaN parameters are rejected too
    // (a NaN pj/byte would silently NaN every power objective).
    util::fatalIf(!(energy_pj_per_byte >= 0.0) ||
                      !std::isfinite(energy_pj_per_byte) ||
                      !(background_mw >= 0.0) ||
                      !std::isfinite(background_mw),
                  "DramModel: parameters must be finite and >= 0");
}

double
DramModel::transferEnergyPj(std::int64_t bytes) const
{
    return pjPerByte * static_cast<double>(bytes);
}

double
DramModel::averagePowerMw(double bytes_per_second) const
{
    // pJ/B * B/s = pW; convert to mW.
    return backgroundPowerMw + pjPerByte * bytes_per_second * 1e-9;
}

double
DramModel::commandPowerMw(const DramCommandCounts &counts,
                          double seconds) const
{
    util::fatalIf(!(seconds > 0.0) || !std::isfinite(seconds),
                  "DramModel::commandPowerMw: interval must be a "
                  "positive finite number of seconds");
    util::fatalIf(counts.activates < 0 || counts.precharges < 0 ||
                      counts.refreshes < 0 || counts.bytes < 0,
                  "DramModel::commandPowerMw: command counts must be "
                  ">= 0");
    const double energyPj =
        activatePj * static_cast<double>(counts.activates) +
        refreshPj * static_cast<double>(counts.refreshes) +
        ioPj * static_cast<double>(counts.bytes);
    // pJ / s = pW; convert to mW.
    return backgroundPowerMw + energyPj * 1e-9 / seconds;
}

} // namespace autopilot::power
