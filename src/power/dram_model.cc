#include "power/dram_model.h"

#include <cmath>

#include "util/logging.h"

namespace autopilot::power
{

DramModel::DramModel(double energy_pj_per_byte, double background_mw)
    : pjPerByte(energy_pj_per_byte), backgroundPowerMw(background_mw)
{
    // !(x >= 0) instead of x < 0 so NaN parameters are rejected too
    // (a NaN pj/byte would silently NaN every power objective).
    util::fatalIf(!(energy_pj_per_byte >= 0.0) ||
                      !std::isfinite(energy_pj_per_byte) ||
                      !(background_mw >= 0.0) ||
                      !std::isfinite(background_mw),
                  "DramModel: parameters must be finite and >= 0");
}

double
DramModel::transferEnergyPj(std::int64_t bytes) const
{
    return pjPerByte * static_cast<double>(bytes);
}

double
DramModel::averagePowerMw(double bytes_per_second) const
{
    // pJ/B * B/s = pW; convert to mW.
    return backgroundPowerMw + pjPerByte * bytes_per_second * 1e-9;
}

} // namespace autopilot::power
