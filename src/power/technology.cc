#include "power/technology.h"

#include <string>

#include "util/logging.h"

namespace autopilot::power
{

TechnologyNode
referenceNode()
{
    return TechnologyNode{28, 1.0, 1.0, 1.0};
}

TechnologyNode
technologyNode(int nm)
{
    switch (nm) {
      case 40: return TechnologyNode{40, 1.60, 1.40, 0.80};
      case 28: return referenceNode();
      case 16: return TechnologyNode{16, 0.55, 0.70, 1.30};
      case 7:  return TechnologyNode{7, 0.25, 0.45, 1.80};
      default:
        util::fatal("technologyNode: unsupported node " +
                    std::to_string(nm) + " nm (use 40/28/16/7)");
    }
}

} // namespace autopilot::power
