/**
 * @file
 * NPU (accelerator sub-system) power estimation.
 *
 * Combines the PE, SRAM and DRAM models over a systolic RunResult exactly
 * as Section III-B describes: the cycle simulator produces SRAM/DRAM access
 * counts, CACTI-style and Micron-style models convert them to energy, and
 * the PE array contributes dynamic MAC energy plus leakage.
 */

#ifndef AUTOPILOT_POWER_NPU_POWER_H
#define AUTOPILOT_POWER_NPU_POWER_H

#include <cstdint>
#include <span>

#include "power/dram_model.h"
#include "power/pe_model.h"
#include "power/sram_model.h"
#include "power/technology.h"
#include "systolic/config.h"
#include "systolic/engine.h"

namespace autopilot::power
{

/** Breakdown of NPU average power in watts. */
struct NpuPowerBreakdown
{
    double peDynamicW = 0.0;
    double peLeakageW = 0.0;
    double sramDynamicW = 0.0;
    double sramLeakageW = 0.0;
    double dramW = 0.0;
    double controllerW = 0.0; ///< Fixed sequencer/NoC/clock-tree floor.

    /** Sum of all components. */
    double totalW() const
    {
        return peDynamicW + peLeakageW + sramDynamicW + sramLeakageW +
               dramW + controllerW;
    }
};

/** Estimator for a given accelerator configuration. */
class NpuPowerModel
{
  public:
    /**
     * @param config Accelerator configuration.
     * @param node   Process node for all sub-models.
     */
    explicit NpuPowerModel(const systolic::AcceleratorConfig &config,
                           const TechnologyNode &node = referenceNode());

    /**
     * Average power while continuously running the given workload.
     *
     * @param run Result of simulating the policy on this configuration.
     * @param backgroundBytesPerSec Non-NPU traffic sharing the DRAM
     *        channel (camera/host streams, see
     *        systolic::ContentionProfile); charged to the DRAM
     *        component on top of the run's own traffic. Must be finite
     *        and >= 0.
     *
     * Fatal when the run's duration at this configuration's clock is
     * zero, denormal or non-finite - the pJ-to-W conversion would
     * otherwise overflow to inf and NaN every derived objective
     * silently.
     */
    NpuPowerBreakdown estimate(const systolic::RunResult &run,
                               double backgroundBytesPerSec = 0.0) const;

    /**
     * estimate() on bare run aggregates instead of a RunResult struct -
     * the entry point the SoA batch pipeline uses (its kernel never
     * materializes RunResults). estimate() delegates here, so the two
     * paths share one arithmetic sequence and stay bit-identical by
     * construction.
     *
     * @param total_macs   Useful MACs of the run.
     * @param total_cycles End-to-end cycles of the run (> 0).
     * @param traffic      Whole-run accumulated memory activity.
     * @param backgroundBytesPerSec As for estimate().
     */
    NpuPowerBreakdown
    estimateCounts(std::int64_t total_macs, std::int64_t total_cycles,
                   const systolic::LayerTraffic &traffic,
                   double backgroundBytesPerSec = 0.0) const;

    /** Average total power in watts (convenience). */
    double averagePowerW(const systolic::RunResult &run,
                         double backgroundBytesPerSec = 0.0) const;

    const systolic::AcceleratorConfig &config() const { return cfg; }

  private:
    systolic::AcceleratorConfig cfg;
    TechnologyNode tech;
    PeModel peModel;
    DramModel dramModel;
    SramModel ifmapSram;
    SramModel filterSram;
    SramModel ofmapSram;

    // Fixed controller / NoC / clock-tree power at 28 nm, watts, plus a
    // multiplicative margin for glue logic.
    static constexpr double controllerBaseW = 0.10;
    static constexpr double glueMargin = 1.15;
};

/**
 * Batched NPU + SoC power over SoA run aggregates: for each design i,
 * npu_w[i] receives the NPU average power and soc_w[i] the full-SoC
 * total (power::socPower over the NPU number, fixed components
 * default). Consumes the batch kernel's arrays directly - no
 * intermediate RunResult or breakdown structs - and performs, per
 * design, exactly the scalar NpuPowerModel(config).estimateCounts()
 * sequence, so results are bit-identical to the one-at-a-time path.
 *
 * All spans must have equal length; total_cycles entries must be > 0.
 */
void batchNpuSocPowerW(std::span<const systolic::AcceleratorConfig> configs,
                       std::span<const std::int64_t> total_macs,
                       std::span<const std::int64_t> total_cycles,
                       std::span<const systolic::LayerTraffic> traffic,
                       std::span<double> npu_w, std::span<double> soc_w,
                       double backgroundBytesPerSec = 0.0,
                       const TechnologyNode &node = referenceNode());

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_NPU_POWER_H
