/**
 * @file
 * NPU (accelerator sub-system) power estimation.
 *
 * Combines the PE, SRAM and DRAM models over a systolic RunResult exactly
 * as Section III-B describes: the cycle simulator produces SRAM/DRAM access
 * counts, CACTI-style and Micron-style models convert them to energy, and
 * the PE array contributes dynamic MAC energy plus leakage.
 */

#ifndef AUTOPILOT_POWER_NPU_POWER_H
#define AUTOPILOT_POWER_NPU_POWER_H

#include "power/dram_model.h"
#include "power/pe_model.h"
#include "power/sram_model.h"
#include "power/technology.h"
#include "systolic/config.h"
#include "systolic/engine.h"

namespace autopilot::power
{

/** Breakdown of NPU average power in watts. */
struct NpuPowerBreakdown
{
    double peDynamicW = 0.0;
    double peLeakageW = 0.0;
    double sramDynamicW = 0.0;
    double sramLeakageW = 0.0;
    double dramW = 0.0;
    double controllerW = 0.0; ///< Fixed sequencer/NoC/clock-tree floor.

    /** Sum of all components. */
    double totalW() const
    {
        return peDynamicW + peLeakageW + sramDynamicW + sramLeakageW +
               dramW + controllerW;
    }
};

/** Estimator for a given accelerator configuration. */
class NpuPowerModel
{
  public:
    /**
     * @param config Accelerator configuration.
     * @param node   Process node for all sub-models.
     */
    explicit NpuPowerModel(const systolic::AcceleratorConfig &config,
                           const TechnologyNode &node = referenceNode());

    /**
     * Average power while continuously running the given workload.
     *
     * @param run Result of simulating the policy on this configuration.
     * @param backgroundBytesPerSec Non-NPU traffic sharing the DRAM
     *        channel (camera/host streams, see
     *        systolic::ContentionProfile); charged to the DRAM
     *        component on top of the run's own traffic. Must be finite
     *        and >= 0.
     *
     * Fatal when the run's duration at this configuration's clock is
     * zero, denormal or non-finite - the pJ-to-W conversion would
     * otherwise overflow to inf and NaN every derived objective
     * silently.
     */
    NpuPowerBreakdown estimate(const systolic::RunResult &run,
                               double backgroundBytesPerSec = 0.0) const;

    /** Average total power in watts (convenience). */
    double averagePowerW(const systolic::RunResult &run,
                         double backgroundBytesPerSec = 0.0) const;

    const systolic::AcceleratorConfig &config() const { return cfg; }

  private:
    systolic::AcceleratorConfig cfg;
    TechnologyNode tech;
    PeModel peModel;
    DramModel dramModel;
    SramModel ifmapSram;
    SramModel filterSram;
    SramModel ofmapSram;

    // Fixed controller / NoC / clock-tree power at 28 nm, watts, plus a
    // multiplicative margin for glue logic.
    static constexpr double controllerBaseW = 0.10;
    static constexpr double glueMargin = 1.15;
};

} // namespace autopilot::power

#endif // AUTOPILOT_POWER_NPU_POWER_H
