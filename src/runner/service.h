/**
 * @file
 * Campaign service: a file-drop daemon running many campaigns for many
 * tenants over one shared work-stealing pool.
 *
 * Layout under ServiceConfig::rootDir (created on demand):
 *
 *   inbox/<id>.json    submissions dropped by clients (write elsewhere,
 *                      rename into place - the scan assumes whole files)
 *   active/<id>.json   admitted-or-queued submissions; scanned at
 *                      startup so a SIGKILLed service resumes exactly
 *                      the campaigns it had accepted
 *   work/<id>/         per-campaign checkpoint root (Phase 1 policy
 *                      checkpoints + Phase 2 evaluation journals)
 *   status/<id>.status one small CSV per campaign, atomically rewritten
 *                      at every state transition with a monotonically
 *                      increasing sequence number
 *   results/<id>.result the deterministic campaign report, written once
 *                      when the campaign reaches a terminal state
 *   done/<id>.json     terminal submissions (completed, failed or
 *                      rejected), moved out of inbox/active
 *
 * Admission is per-tenant round-robin fair-share: submissions queue
 * FIFO within their tenant, and free campaign slots rotate across
 * tenants, so one tenant's burst of 50 campaigns cannot starve another
 * tenant's single run. All admitted campaigns execute their pipeline
 * stages on ONE shared util::ThreadPool (work-stealing), so a huge
 * campaign's tasks interleave with everyone else's.
 *
 * Crash safety: the on-disk truth is the submission file's location
 * (inbox -> active -> done) plus the per-campaign journals in work/.
 * Every move is a rename and every status/result write is
 * fsync+rename-atomic (io::writeFileAtomic), so a SIGKILL at any
 * instant loses at most one in-flight evaluation batch per campaign; a
 * restarted service re-admits everything in active/, resumes from the
 * journals, and produces byte-identical result files.
 *
 * A malformed or invalid submission is rejected (status file explains
 * why, the file moves to done/<id>.rejected) - it never takes the
 * daemon down. Draining: cancel the ServiceConfig::stop source; running
 * campaigns stop at the next batch boundary, stay in active/, and
 * resume on the next start.
 */

#ifndef AUTOPILOT_RUNNER_SERVICE_H
#define AUTOPILOT_RUNNER_SERVICE_H

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runner/campaign.h"
#include "uav/mission_profile.h"
#include "util/cancel.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace autopilot::runner
{

/** One validated inbox submission (see parseSubmission for the JSON). */
struct CampaignSubmission
{
    std::string id;     ///< Inbox filename stem; names work/<id>/.
    std::string tenant; ///< Fair-share scheduling key.
    CampaignTask task;  ///< The pipeline run to execute.
};

/**
 * Parse and validate one submission document. @p id (the inbox file
 * stem) becomes the campaign id and task name. Returns false with a
 * diagnostic in @p error on any problem - malformed JSON, unknown keys,
 * bad types, out-of-range values, unknown backend/optimizer/uav/density
 * names - without ever calling fatal(): the service must reject one
 * file, not die.
 *
 * Recognized keys (all optional):
 *   tenant (string, default "default"), density (low|medium|high),
 *   episodes, budget, seed, threads (numbers), optimizer, backend
 *   (registry names), uav (nano|spark|pelican), deadline_s,
 *   camera_mbps, host_mbps, npu_floor (numbers), airframe
 *   (quad|fixed-wing: single-scenario shorthand), mission_mix (array
 *   of scenario objects, see parseMissionMix; mutually exclusive with
 *   airframe). A submission naming neither flies the legacy quadrotor
 *   point-to-point mission, byte-identical to pre-airframe results.
 */
bool parseSubmission(const std::string &id, const std::string &text,
                     CampaignSubmission &out, std::string &error);

/**
 * Parse a mission-mix JSON document: an array of scenario objects with
 * keys name (string, [a-z0-9_-]{1,32}, unique), airframe
 * (quad|fixed-wing), mission (nav|search|delivery), weight and the
 * per-class numbers distance_m, area_m2 and spacing_m (search),
 * payload_g (delivery). Unknown keys are rejected and the assembled
 * mix is validated with uav::MissionMix::check. The same grammar is
 * accepted inline under a submission's "mission_mix" key and as the
 * standalone file behind campaign_runner's --mission-mix flag. Returns
 * false with a diagnostic in @p error; never calls fatal().
 */
bool parseMissionMix(const std::string &text, uav::MissionMix &out,
                     std::string &error);

/** Service-level knobs. */
struct ServiceConfig
{
    /// Service root; the inbox/active/work/status/results/done tree
    /// lives underneath. Required (fatal when empty).
    std::string rootDir;
    /// Campaigns running concurrently; queued submissions wait their
    /// tenant's round-robin turn. Must be >= 1.
    int maxActiveCampaigns = 2;
    /// Worker threads in the shared work-stealing pool all campaigns
    /// execute on; 0 uses the hardware concurrency.
    int poolThreads = 0;
    /// Inbox scan / reap interval.
    double pollSeconds = 0.2;
    /// Retry policy applied to every campaign's tasks.
    util::RetryPolicy retry;
    /// Drain signal: cancel it and serve() stops admitting, cancels
    /// running campaigns at their next batch boundary (they remain
    /// resumable in active/) and returns. Inert by default.
    util::CancelToken stop;
    /// When > 0, serve() also returns once this many campaigns reached
    /// a terminal state (completed or failed; rejections do not count)
    /// and none are running - a bounded batch mode for tests and smoke
    /// runs. Batch mode also returns when the service goes fully idle
    /// (nothing running, queued, or newly scanned), so a restart over
    /// an already-finished root exits instead of waiting forever; drop
    /// submissions into the inbox BEFORE serving in this mode.
    int maxCampaigns = 0;
};

/** What one serve() call did. */
struct ServiceReport
{
    std::size_t admitted = 0;    ///< Campaigns started (incl. resumed).
    std::size_t completed = 0;   ///< All tasks succeeded.
    std::size_t failed = 0;      ///< Terminal failure (retries/deadline).
    std::size_t rejected = 0;    ///< Invalid submissions turned away.
    std::size_t interrupted = 0; ///< Cancelled by drain; resumable.
};

/**
 * The daemon. Construct (validates config, creates the directory tree,
 * starts the shared pool), then serve() until drained.
 */
class CampaignService
{
  public:
    explicit CampaignService(const ServiceConfig &config);
    ~CampaignService();

    CampaignService(const CampaignService &) = delete;
    CampaignService &operator=(const CampaignService &) = delete;

    /**
     * Run the service loop: recover active/ submissions, then scan the
     * inbox, admit fair-share, reap finished campaigns, until the stop
     * token fires or the maxCampaigns bound is met. Blocks. Safe to
     * call once per instance.
     */
    ServiceReport serve();

    const ServiceConfig &config() const { return cfg; }

    /** The shared pool (for tests asserting scheduling behavior). */
    util::ThreadPool &pool() { return *sharedPool; }

  private:
    struct Pending;
    struct Active;

    std::string dir(const std::string &sub) const;
    void writeStatus(Pending &pending, const std::string &state,
                     const std::string &detail);
    void scanInbox(ServiceReport &report);
    void recoverActive(ServiceReport &report);
    void enqueue(std::unique_ptr<Pending> pending);
    void admitFairShare(ServiceReport &report);
    bool reapFinished(ServiceReport &report);
    void finalize(Active &campaign, ServiceReport &report);

    ServiceConfig cfg;
    std::unique_ptr<util::ThreadPool> sharedPool;
    /// FIFO queue per tenant; admission rotates across tenants.
    std::map<std::string, std::deque<std::unique_ptr<Pending>>> queues;
    std::string rrCursor; ///< Last tenant admitted (round-robin state).
    std::vector<std::unique_ptr<Active>> active;
    int admissionCounter = 0; ///< Global admission order stamp.
    std::size_t queuedCount = 0;
    bool served = false;
};

} // namespace autopilot::runner

#endif // AUTOPILOT_RUNNER_SERVICE_H
