/**
 * @file
 * Fault-tolerant multi-task campaign orchestration.
 *
 * A campaign is a list of named AutoPilot tasks (one full three-phase
 * pipeline each - e.g. one per obstacle density, or a backend/optimizer
 * sweep) executed across a shared util::ThreadPool. Each task gets:
 *
 *  - a checkpoint subdirectory `<rootDir>/<name>/` holding its Phase 1
 *    policy checkpoint and Phase 2 evaluation journal, so a killed
 *    campaign resumes with --resume losing at most one in-flight batch
 *    per task;
 *  - retry-with-backoff on transient failures (anything thrown out of
 *    the pipeline except a deadline expiry), where every retry after
 *    the first warm-starts from the journal the failed attempt left
 *    behind - progress is never re-simulated;
 *  - an optional wall-clock deadline, checked between phases; expiry
 *    is terminal (never retried);
 *  - graceful degradation: a task that exhausts its retries (or its
 *    deadline) is recorded as a diagnosed skip and the rest of the
 *    campaign continues.
 *
 * Failure scope: the runner catches C++ exceptions (injected backend
 * faults, deadline expiry, I/O errors surfaced as exceptions). It does
 * not - cannot - recover from util::fatal()/panic(), which terminate
 * the process by design (bad specs are caught up front instead).
 *
 * Determinism: task outcomes are committed in task order, and each
 * task's results are byte-identical across thread counts and across
 * kill/resume (see TaskSpec::resume), so a campaign report diffs
 * cleanly against a golden uninterrupted run.
 */

#ifndef AUTOPILOT_RUNNER_CAMPAIGN_H
#define AUTOPILOT_RUNNER_CAMPAIGN_H

#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "core/autopilot.h"
#include "uav/uav_spec.h"
#include "util/cancel.h"
#include "util/retry.h"

namespace autopilot::runner
{

/** One campaign entry: a full pipeline run for one task/vehicle pair. */
struct CampaignTask
{
    /// Unique within the campaign; names the checkpoint subdirectory,
    /// so it must be a valid path component.
    std::string name;
    core::TaskSpec spec;
    uav::UavSpec uav; ///< Phase 3 target vehicle.
    /// Wall-clock bound for one attempt, checked between phases;
    /// 0 disables. Expiry is terminal: a task that ran out of time
    /// once is assumed to run out of time again.
    double deadlineSeconds = 0.0;
};

/** Terminal state of one campaign task. */
enum class TaskStatus
{
    Succeeded,       ///< Pipeline completed; outcome.run is valid.
    Failed,          ///< Retries exhausted on a transient/injected fault.
    DeadlineExpired, ///< The per-task deadline fired (never retried).
    /// The campaign's stop token fired (service drain). Unlike a
    /// deadline this is not terminal for the task itself: its journal
    /// is intact and a restarted service resumes it byte-identically.
    Cancelled
};

/** Short status label ("ok", "failed", "deadline", "cancelled"). */
std::string taskStatusName(TaskStatus status);

/** What happened to one task. */
struct TaskOutcome
{
    std::string name;
    TaskStatus status = TaskStatus::Failed;
    int attempts = 0;      ///< Pipeline attempts consumed (>= 1).
    std::string diagnosis; ///< Failure detail; empty when Succeeded.
    core::AutoPilotRun run; ///< Valid only when Succeeded.
};

/** Campaign-level orchestration knobs. */
struct CampaignConfig
{
    /// Campaign root directory; each task checkpoints under
    /// `<rootDir>/<task.name>/`. Empty disables checkpointing (tasks
    /// run in-memory only and cannot resume).
    std::string rootDir;
    /// Warm-start every task from its checkpoint subdirectory (see
    /// TaskSpec::resume). Tasks without matching files start fresh.
    bool resume = false;
    /// Tasks executed concurrently; 1 runs them serially on the
    /// calling thread, 0 uses the hardware concurrency. Task-internal
    /// parallelism is separate (TaskSpec::threads).
    int concurrency = 1;
    /// Retry policy for transient failures. The default retries
    /// everything except util::DeadlineExceeded and
    /// util::CancelledError, 3 attempts with exponential backoff.
    util::RetryPolicy retry;
    /// Campaign-wide stop token (e.g. the service's drain signal),
    /// chained into every task's per-attempt cancel source: tasks
    /// notice it before each phase and at every Phase 2 batch
    /// boundary, end as TaskStatus::Cancelled, and resume from their
    /// journals on the next run. Inert by default.
    util::CancelToken stop;
    /// Run every task's pipeline on this caller-owned pool instead of
    /// a per-task private one (see AutoPilot's shared-pool ctor). Null
    /// keeps the classic per-task pools. Non-owning; must outlive
    /// run().
    util::ThreadPool *sharedPool = nullptr;
};

/** Everything a finished campaign produced, in task order. */
struct CampaignReport
{
    std::vector<TaskOutcome> outcomes;

    std::size_t succeededCount() const;
    /// Failed + DeadlineExpired + Cancelled.
    std::size_t failedCount() const;
    std::size_t cancelledCount() const;
};

/**
 * Render the campaign summary table (one row per task: status,
 * attempts, key selected-design metrics or the failure diagnosis).
 * Deterministic - no timing, no paths - so reports from a resumed
 * campaign diff cleanly against an uninterrupted golden run.
 */
void printCampaignReport(const CampaignReport &report, std::ostream &os);

/** Orchestrates one campaign. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(const CampaignConfig &config = {});

    /**
     * Run every task (names must be unique and non-empty; fatal
     * otherwise). Blocks until all tasks reach a terminal state;
     * outcomes are returned in task order regardless of concurrency.
     */
    CampaignReport run(std::span<const CampaignTask> tasks);

    const CampaignConfig &config() const { return cfg; }

  private:
    TaskOutcome runOne(const CampaignTask &task) const;

    CampaignConfig cfg;
};

} // namespace autopilot::runner

#endif // AUTOPILOT_RUNNER_CAMPAIGN_H
