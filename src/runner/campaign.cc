#include "runner/campaign.h"

#include <memory>
#include <set>
#include <utility>

#include "util/logging.h"
#include "util/table.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace autopilot::runner
{

std::string
taskStatusName(TaskStatus status)
{
    switch (status) {
      case TaskStatus::Succeeded:       return "ok";
      case TaskStatus::Failed:          return "failed";
      case TaskStatus::DeadlineExpired: return "deadline";
      case TaskStatus::Cancelled:       return "cancelled";
    }
    return "?";
}

std::size_t
CampaignReport::succeededCount() const
{
    std::size_t count = 0;
    for (const TaskOutcome &outcome : outcomes)
        count += outcome.status == TaskStatus::Succeeded ? 1 : 0;
    return count;
}

std::size_t
CampaignReport::failedCount() const
{
    return outcomes.size() - succeededCount();
}

std::size_t
CampaignReport::cancelledCount() const
{
    std::size_t count = 0;
    for (const TaskOutcome &outcome : outcomes)
        count += outcome.status == TaskStatus::Cancelled ? 1 : 0;
    return count;
}

void
printCampaignReport(const CampaignReport &report, std::ostream &os)
{
    util::Table table({"task", "status", "attempts", "success",
                       "soc W", "lat ms", "missions", "detail"});
    for (const TaskOutcome &outcome : report.outcomes) {
        if (outcome.status == TaskStatus::Succeeded) {
            const core::FullSystemDesign &design = outcome.run.selected;
            table.addRow(
                {outcome.name, taskStatusName(outcome.status),
                 std::to_string(outcome.attempts),
                 util::formatDouble(design.eval.successRate, 3),
                 util::formatDouble(design.eval.socPowerW, 3),
                 util::formatDouble(design.eval.latencyMs, 3),
                 std::to_string(design.missionScore()), "-"});
        } else {
            table.addRow({outcome.name, taskStatusName(outcome.status),
                          std::to_string(outcome.attempts), "-", "-",
                          "-", "-", outcome.diagnosis});
        }
    }
    os << "Campaign: " << report.succeededCount() << "/"
       << report.outcomes.size() << " tasks succeeded\n";
    table.print(os);

    // Per-scenario breakdown for tasks that ran a non-default mission
    // mix: the weighted objective alone hides which fleet member the
    // selected SoC serves well or poorly. Default-mix campaigns print
    // nothing extra, keeping legacy reports byte-identical.
    for (const TaskOutcome &outcome : report.outcomes) {
        if (outcome.status != TaskStatus::Succeeded ||
            outcome.run.task.missionMix.isDefault())
            continue;
        os << "Task " << outcome.name << " mission mix '"
           << outcome.run.task.missionMix.tag() << "' (weighted "
           << util::formatDouble(outcome.run.selected.weightedMissions,
                                 3)
           << " missions/charge):\n";
        for (const core::ScenarioOutcome &scenario :
             outcome.run.selected.scenarios) {
            os << "  " << scenario.name << " ("
               << uav::airframeKindName(scenario.airframe)
               << ", weight "
               << util::formatDouble(scenario.weight, 1) << "): ";
            if (scenario.mission.feasible) {
                os << util::formatDouble(scenario.mission.numMissions,
                                         3)
                   << " missions at "
                   << util::formatDouble(
                          scenario.mission.safeVelocityMps, 1)
                   << " m/s";
            } else {
                os << "infeasible ("
                   << scenario.mission.infeasibleReason << ")";
            }
            os << "\n";
        }
    }
}

CampaignRunner::CampaignRunner(const CampaignConfig &config)
    : cfg(config)
{
    util::fatalIf(cfg.concurrency < 0,
                  "CampaignRunner: concurrency must be >= 0");
    util::validateRetryPolicy(cfg.retry);
}

TaskOutcome
CampaignRunner::runOne(const CampaignTask &task) const
{
    TaskOutcome outcome;
    outcome.name = task.name;
    try {
        outcome.run = util::retryWithBackoff(
            cfg.retry,
            [&](int attempt) {
                outcome.attempts = attempt;
                const util::Deadline deadline =
                    util::Deadline::after(task.deadlineSeconds);
                // Per-attempt cancel source: the attempt's deadline
                // plus the campaign-wide stop token. AutoPilot checks
                // it before every phase and the evaluator at every
                // batch boundary, so expiry or a drain stops the
                // attempt within one batch - never mid-journal-record.
                const util::CancelSource cancel(deadline, cfg.stop);
                core::TaskSpec spec = task.spec;
                spec.cancel = cancel.token();
                if (!cfg.rootDir.empty()) {
                    spec.checkpointDir = cfg.rootDir + "/" + task.name;
                    // A retry always warm-starts from the journal the
                    // failed attempt flushed: committed batches are
                    // never re-simulated.
                    spec.resume = cfg.resume || attempt > 1;
                }
                core::AutoPilot pilot(spec, cfg.sharedPool);
                pilot.phase1();
                deadline.check("task '" + task.name + "' after Phase 1");
                pilot.phase2();
                deadline.check("task '" + task.name + "' after Phase 2");
                return pilot.designFor(task.uav);
            },
            [&](int attempt, const std::exception &error) {
                util::warn("CampaignRunner: task '" + task.name +
                           "' attempt " + std::to_string(attempt) +
                           " failed (" + error.what() + "); retrying");
            });
        outcome.status = TaskStatus::Succeeded;
    } catch (const util::DeadlineExceeded &error) {
        outcome.status = TaskStatus::DeadlineExpired;
        outcome.diagnosis = error.what();
    } catch (const util::CancelledError &error) {
        outcome.status = TaskStatus::Cancelled;
        outcome.diagnosis = error.what();
    } catch (const std::exception &error) {
        outcome.status = TaskStatus::Failed;
        outcome.diagnosis = error.what();
    }
    if (outcome.status != TaskStatus::Succeeded) {
        util::warn("CampaignRunner: skipping task '" + task.name +
                   "' after " + std::to_string(outcome.attempts) +
                   " attempt(s): " + outcome.diagnosis);
    }
    return outcome;
}

CampaignReport
CampaignRunner::run(std::span<const CampaignTask> tasks)
{
    std::set<std::string> names;
    for (const CampaignTask &task : tasks) {
        util::fatalIf(task.name.empty(),
                      "CampaignRunner: every task needs a name");
        util::fatalIf(!names.insert(task.name).second,
                      "CampaignRunner: duplicate task name '" +
                          task.name + "'");
        util::fatalIf(task.deadlineSeconds < 0.0,
                      "CampaignRunner: negative deadline on task '" +
                          task.name + "'");
    }

    util::TraceSpan span("campaign", "runner");
    CampaignReport report;
    report.outcomes.resize(tasks.size());

    // Tasks fan out over a campaign-level pool; outcomes land in
    // task-index slots so the report order never depends on scheduling.
    // Each AutoPilot still owns its task-internal pool (spec.threads).
    std::unique_ptr<util::ThreadPool> pool;
    if (cfg.concurrency != 1 && tasks.size() > 1) {
        pool = std::make_unique<util::ThreadPool>(
            static_cast<std::size_t>(cfg.concurrency));
    }
    util::parallel_for(pool.get(), tasks.size(), [&](std::size_t i) {
        report.outcomes[i] = runOne(tasks[i]);
    });

    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled()) {
        telemetry.metrics()
            .counter("runner.tasks.succeeded")
            .add(report.succeededCount());
        telemetry.metrics()
            .counter("runner.tasks.failed")
            .add(report.failedCount());
    }
    return report;
}

} // namespace autopilot::runner
