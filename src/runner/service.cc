#include "runner/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include "airlearning/environment.h"
#include "dram/config.h"
#include "dse/eval_backend.h"
#include "io/json.h"
#include "io/persistence.h"
#include "systolic/config.h"
#include "uav/uav_spec.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::runner
{

namespace fs = std::filesystem;

namespace
{

/// Path components and tenant names end up in directory names and
/// status CSVs; keep them boring.
bool
safeName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

bool
densityFromName(const std::string &name,
                airlearning::ObstacleDensity &out)
{
    for (const airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        if (airlearning::densityName(density) == name) {
            out = density;
            return true;
        }
    }
    return false;
}

bool
uavFromName(const std::string &name, uav::UavSpec &out)
{
    if (name == "nano")
        out = uav::zhangNano();
    else if (name == "spark")
        out = uav::djiSpark();
    else if (name == "pelican")
        out = uav::ascTecPelican();
    else
        return false;
    return true;
}

/// Non-negative integer from a JSON number (rejects 1.5, -1, 1e20).
bool
intField(const io::JsonValue &value, int &out)
{
    if (!value.isNumber())
        return false;
    const double number = value.asNumber();
    if (!(number >= 0.0) || number > 1e9 ||
        number != std::floor(number))
        return false;
    out = static_cast<int>(number);
    return true;
}

bool
numberField(const io::JsonValue &value, double &out)
{
    if (!value.isNumber() || !std::isfinite(value.asNumber()))
        return false;
    out = value.asNumber();
    return true;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// rename() that warns instead of throwing: a daemon shrugging off one
/// bad file beats a daemon dying on it.
bool
tryRename(const std::string &from, const std::string &to)
{
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
        util::warn("CampaignService: cannot move '" + from + "' to '" +
                   to + "': " + ec.message());
        return false;
    }
    return true;
}

/// One mission-mix scenario object; defaults come from the legacy
/// scenario so a bare {} is the quadrotor point-to-point run.
bool
scenarioFromJson(const io::JsonValue &value, std::size_t index,
                 uav::MissionScenario &out, std::string &error)
{
    if (!value.isObject()) {
        error = "mission-mix scenario " + std::to_string(index) +
                " must be a JSON object";
        return false;
    }
    uav::MissionScenario scenario = uav::defaultMissionScenario();
    for (const auto &[key, field] : value.asObject()) {
        bool ok = true;
        if (key == "name") {
            ok = field.isString();
            if (ok)
                scenario.name = field.asString();
        } else if (key == "airframe") {
            ok = field.isString() &&
                 uav::airframeKindFromName(field.asString(),
                                           scenario.airframe);
        } else if (key == "mission") {
            ok = field.isString() &&
                 uav::missionClassFromName(
                     field.asString(), scenario.profile.missionClass);
        } else if (key == "weight") {
            ok = numberField(field, scenario.weight);
        } else if (key == "distance_m") {
            ok = numberField(field, scenario.profile.distanceM);
        } else if (key == "area_m2") {
            ok = numberField(field, scenario.profile.searchAreaM2);
        } else if (key == "spacing_m") {
            ok = numberField(field, scenario.profile.laneSpacingM);
        } else if (key == "payload_g") {
            ok = numberField(field,
                             scenario.profile.deliveryPayloadG);
        } else {
            error = "unknown mission-mix key '" + key + "'";
            return false;
        }
        if (!ok) {
            error = "bad mission-mix value for '" + key + "'";
            return false;
        }
    }
    out = scenario;
    return true;
}

/// The shared mission-mix grammar: a JSON array of scenario objects,
/// validated as a whole (unique names, per-class parameters, weights).
bool
missionMixFromJson(const io::JsonValue &value, uav::MissionMix &out,
                   std::string &error)
{
    if (!value.isArray()) {
        error = "mission mix must be a JSON array of scenario objects";
        return false;
    }
    uav::MissionMix mix;
    const std::vector<io::JsonValue> &items = value.asArray();
    for (std::size_t i = 0; i < items.size(); ++i) {
        uav::MissionScenario scenario;
        if (!scenarioFromJson(items[i], i, scenario, error))
            return false;
        mix.scenarios.push_back(scenario);
    }
    if (!mix.check(error))
        return false;
    out = std::move(mix);
    return true;
}

void
bumpServiceCounter(const std::string &name, std::size_t amount = 1)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled() && amount > 0) {
        telemetry.metrics()
            .counter("service.campaigns." + name)
            .add(static_cast<std::uint64_t>(amount));
    }
}

} // namespace

bool
parseSubmission(const std::string &id, const std::string &text,
                CampaignSubmission &out, std::string &error)
{
    if (!safeName(id)) {
        error = "bad campaign id '" + id +
                "' (want [A-Za-z0-9_-]{1,64})";
        return false;
    }

    io::JsonValue doc;
    if (!io::tryParseJson(text, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "submission must be a JSON object";
        return false;
    }

    CampaignSubmission sub;
    sub.id = id;
    sub.tenant = "default";
    sub.task.name = id;
    // Service-friendly defaults: small enough that a smoke submission
    // completes quickly, overridable per field.
    sub.task.spec.validationEpisodes = 40;
    sub.task.spec.dseBudget = 30;
    sub.task.uav = uav::zhangNano();

    double cameraMbps = 0.0;
    double hostMbps = 0.0;
    uav::AirframeKind airframeKind = uav::AirframeKind::Quadrotor;
    bool hasAirframe = false;
    bool hasMix = false;
    dram::DramTiming dramTiming;
    bool hasDramKey = false;

    for (const auto &[key, value] : doc.asObject()) {
        bool ok = true;
        if (key == "tenant") {
            ok = value.isString() && safeName(value.asString());
            if (ok)
                sub.tenant = value.asString();
        } else if (key == "density") {
            ok = value.isString() &&
                 densityFromName(value.asString(), sub.task.spec.density);
        } else if (key == "episodes") {
            ok = intField(value, sub.task.spec.validationEpisodes) &&
                 sub.task.spec.validationEpisodes >= 1;
        } else if (key == "budget") {
            ok = intField(value, sub.task.spec.dseBudget) &&
                 sub.task.spec.dseBudget >= 1;
        } else if (key == "threads") {
            ok = intField(value, sub.task.spec.threads);
        } else if (key == "seed") {
            int seed = 0;
            ok = intField(value, seed);
            if (ok)
                sub.task.spec.seed = static_cast<std::uint64_t>(seed);
        } else if (key == "optimizer") {
            ok = value.isString() &&
                 (value.asString() == "bo" || value.asString() == "nsga2" ||
                  value.asString() == "sa" || value.asString() == "random");
            if (ok)
                sub.task.spec.optimizer = value.asString();
        } else if (key == "backend") {
            ok = value.isString() &&
                 dse::BackendRegistry::instance().knows(value.asString());
            if (ok)
                sub.task.spec.backend = value.asString();
        } else if (key == "uav") {
            ok = value.isString() &&
                 uavFromName(value.asString(), sub.task.uav);
        } else if (key == "deadline_s") {
            ok = numberField(value, sub.task.deadlineSeconds) &&
                 sub.task.deadlineSeconds >= 0.0;
        } else if (key == "camera_mbps") {
            ok = numberField(value, cameraMbps) && cameraMbps >= 0.0;
        } else if (key == "host_mbps") {
            ok = numberField(value, hostMbps) && hostMbps >= 0.0;
        } else if (key == "npu_floor") {
            ok = numberField(value,
                             sub.task.spec.contention.npuFloorFraction) &&
                 sub.task.spec.contention.npuFloorFraction >= 0.0 &&
                 sub.task.spec.contention.npuFloorFraction < 1.0;
        } else if (key == "dram_banks") {
            ok = intField(value, dramTiming.banks) &&
                 dramTiming.banks >= 1;
            hasDramKey = hasDramKey || ok;
        } else if (key == "row_policy") {
            ok = value.isString() &&
                 dram::rowPolicyFromName(value.asString(),
                                         dramTiming.rowPolicy);
            hasDramKey = hasDramKey || ok;
        } else if (key == "dram_timing") {
            std::string timingError;
            ok = value.isString() &&
                 dram::parseDramTiming(value.asString(), dramTiming,
                                       timingError);
            hasDramKey = hasDramKey || ok;
        } else if (key == "airframe") {
            ok = value.isString() &&
                 uav::airframeKindFromName(value.asString(),
                                           airframeKind);
            hasAirframe = ok;
        } else if (key == "mission_mix") {
            hasMix = true;
            if (!missionMixFromJson(value, sub.task.spec.missionMix,
                                    error))
                return false;
        } else if (key == "precision") {
            // Comma-separated operand-width list ("int8,fp16,fp32");
            // more than one width makes precision a searched Phase 2
            // dimension for this campaign.
            std::string precisionError;
            ok = value.isString() &&
                 systolic::parsePrecisionList(value.asString(),
                                              sub.task.spec.precisions,
                                              precisionError);
            if (value.isString() && !ok) {
                error = "bad value for 'precision': " + precisionError;
                return false;
            }
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            error = "bad value for '" + key + "'";
            return false;
        }
    }

    if (hasAirframe && hasMix) {
        error = "'airframe' and 'mission_mix' are mutually exclusive";
        return false;
    }
    // "airframe" is single-scenario shorthand; quad is the default and
    // keeps the implicit mix empty (fingerprint-identical to legacy).
    if (hasAirframe && airframeKind != uav::AirframeKind::Quadrotor) {
        uav::MissionScenario scenario = uav::defaultMissionScenario();
        scenario.airframe = airframeKind;
        sub.task.spec.missionMix.scenarios = {scenario};
    }

    // Bank-level simulation is active for the "dram" backend (or for
    // "tiered" when a dram_* key opts the verify tier in). The same
    // camera/host rates then shape traffic generators instead of the
    // flat contention surcharge, which stays zero so the channel is
    // never charged twice for the same bytes.
    const bool wantsDram =
        sub.task.spec.backend == "dram" ||
        (hasDramKey && sub.task.spec.backend == "tiered");
    if (hasDramKey && !wantsDram) {
        error = "dram_* keys require backend 'dram' or 'tiered'";
        return false;
    }
    if (wantsDram) {
        sub.task.spec.dram =
            dram::uavDramSpec(dramTiming, cameraMbps * 1e6,
                              hostMbps * 1e6);
        std::string dramError = sub.task.spec.dram.infeasibleReason();
        if (!dramError.empty()) {
            error = "infeasible dram channel: " + dramError;
            return false;
        }
    } else {
        sub.task.spec.contention.cameraBytesPerSec = cameraMbps * 1e6;
        sub.task.spec.contention.hostBytesPerSec = hostMbps * 1e6;
    }
    out = std::move(sub);
    return true;
}

bool
parseMissionMix(const std::string &text, uav::MissionMix &out,
                std::string &error)
{
    io::JsonValue doc;
    if (!io::tryParseJson(text, doc, error))
        return false;
    return missionMixFromJson(doc, out, error);
}

/** A submission accepted into a tenant queue. */
struct CampaignService::Pending
{
    CampaignSubmission sub;
    int seq = 0;       ///< Status-file sequence (per process run).
    int admitted = -1; ///< Global admission order; -1 while queued.
};

/** A running campaign: its thread plus the report it will produce. */
struct CampaignService::Active
{
    std::unique_ptr<Pending> pending;
    std::thread thread;
    std::atomic<bool> done{false};
    CampaignReport report;
};

CampaignService::CampaignService(const ServiceConfig &config)
    : cfg(config)
{
    util::fatalIf(cfg.rootDir.empty(),
                  "CampaignService: rootDir is required");
    util::fatalIf(cfg.maxActiveCampaigns < 1,
                  "CampaignService: maxActiveCampaigns must be >= 1");
    util::fatalIf(cfg.poolThreads < 0,
                  "CampaignService: poolThreads must be >= 0");
    util::fatalIf(cfg.pollSeconds < 0.0,
                  "CampaignService: pollSeconds must be >= 0");
    util::fatalIf(cfg.maxCampaigns < 0,
                  "CampaignService: maxCampaigns must be >= 0");
    util::validateRetryPolicy(cfg.retry);
    for (const char *sub :
         {"inbox", "active", "work", "status", "results", "done"}) {
        std::error_code ec;
        fs::create_directories(dir(sub), ec);
        util::fatalIf(static_cast<bool>(ec),
                      "CampaignService: cannot create '" + dir(sub) +
                          "': " + ec.message());
    }
    sharedPool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(cfg.poolThreads));
}

CampaignService::~CampaignService()
{
    // serve() joins its campaigns before returning; this only covers a
    // serve() that never ran or threw through fatal-free paths.
    for (const std::unique_ptr<Active> &campaign : active) {
        if (campaign->thread.joinable())
            campaign->thread.join();
    }
}

std::string
CampaignService::dir(const std::string &sub) const
{
    return cfg.rootDir + "/" + sub;
}

void
CampaignService::writeStatus(Pending &pending, const std::string &state,
                             const std::string &detail)
{
    pending.seq++;
    std::ostringstream os;
    os << "seq," << pending.seq << "\n"
       << "id," << pending.sub.id << "\n"
       << "tenant," << pending.sub.tenant << "\n"
       << "state," << state << "\n"
       << "admitted,"
       << (pending.admitted >= 0 ? std::to_string(pending.admitted)
                                 : std::string("-"))
       << "\n"
       << "detail," << (detail.empty() ? "-" : detail) << "\n";
    io::writeFileAtomic(dir("status") + "/" + pending.sub.id + ".status",
                        os.str());
}

void
CampaignService::enqueue(std::unique_ptr<Pending> pending)
{
    writeStatus(*pending, "queued", "");
    const std::string tenant = pending->sub.tenant;
    queues[tenant].push_back(std::move(pending));
    queuedCount++;
}

void
CampaignService::recoverActive(ServiceReport &report)
{
    std::vector<fs::path> files;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir("active")))
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());

    for (const fs::path &path : files) {
        const std::string id = path.stem().string();
        auto pending = std::make_unique<Pending>();
        std::string error;
        if (!parseSubmission(id, readWholeFile(path.string()),
                             pending->sub, error)) {
            // A file we once accepted no longer parses: it was
            // corrupted behind our back. Reject rather than crash-loop.
            util::warn("CampaignService: active submission '" + id +
                       "' no longer valid (" + error + "); rejecting");
            writeStatus(*pending, "rejected", error);
            tryRename(path.string(),
                      dir("done") + "/" + id + ".rejected");
            report.rejected++;
            bumpServiceCounter("rejected");
            continue;
        }
        util::inform("CampaignService: recovering campaign '" + id +
                     "' (tenant " + pending->sub.tenant + ")");
        enqueue(std::move(pending));
    }
}

void
CampaignService::scanInbox(ServiceReport &report)
{
    std::vector<fs::path> files;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir("inbox")))
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());

    for (const fs::path &path : files) {
        const std::string id = path.stem().string();
        auto pending = std::make_unique<Pending>();
        pending->sub.id = safeName(id) ? id : "invalid";
        pending->sub.tenant = "-";

        std::string error;
        bool ok =
            parseSubmission(id, readWholeFile(path.string()),
                            pending->sub, error);
        if (ok) {
            const bool inMemory =
                std::any_of(active.begin(), active.end(),
                            [&](const std::unique_ptr<Active> &a) {
                                return a->pending->sub.id == id;
                            }) ||
                std::any_of(queues.begin(), queues.end(),
                            [&](const auto &q) {
                                return std::any_of(
                                    q.second.begin(), q.second.end(),
                                    [&](const std::unique_ptr<Pending>
                                            &p) {
                                        return p->sub.id == id;
                                    });
                            });
            if (inMemory) {
                ok = false;
                error = "duplicate id: campaign already queued/running";
            } else if (fs::exists(dir("results") + "/" + id +
                                  ".result")) {
                ok = false;
                error = "duplicate id: campaign already completed";
            }
        }

        if (!ok) {
            util::warn("CampaignService: rejecting submission '" + id +
                       "': " + error);
            writeStatus(*pending, "rejected", error);
            tryRename(path.string(),
                      dir("done") + "/" + id + ".rejected");
            report.rejected++;
            bumpServiceCounter("rejected");
            continue;
        }
        // Accepted: the rename is the durable admission record. If we
        // die right after, restart recovers it from active/.
        if (!tryRename(path.string(),
                       dir("active") + "/" + id + ".json"))
            continue; // Still in inbox; retried next scan.
        enqueue(std::move(pending));
    }
}

void
CampaignService::admitFairShare(ServiceReport &report)
{
    // Admitting past the maxCampaigns bound would start work the loop
    // is about to abandon; leave it queued in active/ for a later run.
    const bool boundMet =
        cfg.maxCampaigns > 0 &&
        report.completed + report.failed >=
            static_cast<std::size_t>(cfg.maxCampaigns);
    while (static_cast<int>(active.size()) < cfg.maxActiveCampaigns &&
           queuedCount > 0 && !cfg.stop.cancelled() && !boundMet) {
        // Next tenant strictly after the round-robin cursor (wrapping)
        // with work queued: a burst from one tenant waits its turn.
        auto turn = queues.end();
        for (auto it = queues.upper_bound(rrCursor);
             it != queues.end(); ++it) {
            if (!it->second.empty()) {
                turn = it;
                break;
            }
        }
        if (turn == queues.end()) {
            for (auto it = queues.begin();
                 it != queues.upper_bound(rrCursor) &&
                 it != queues.end();
                 ++it) {
                if (!it->second.empty()) {
                    turn = it;
                    break;
                }
            }
        }
        if (turn == queues.end())
            break;

        rrCursor = turn->first;
        auto campaign = std::make_unique<Active>();
        campaign->pending = std::move(turn->second.front());
        turn->second.pop_front();
        queuedCount--;

        Pending &pending = *campaign->pending;
        pending.admitted = admissionCounter++;
        writeStatus(pending, "running", "");
        report.admitted++;
        bumpServiceCounter("admitted");

        CampaignConfig cc;
        cc.rootDir = dir("work") + "/" + pending.sub.id;
        // Always warm-start: a fresh campaign has no checkpoint files
        // and starts clean, a recovered one resumes byte-identically.
        cc.resume = true;
        cc.concurrency = 1;
        cc.retry = cfg.retry;
        cc.stop = cfg.stop;
        cc.sharedPool = sharedPool.get();

        Active *handle = campaign.get();
        campaign->thread = std::thread([handle, cc]() {
            try {
                CampaignRunner runner(cc);
                const std::vector<CampaignTask> tasks = {
                    handle->pending->sub.task};
                handle->report = runner.run(tasks);
            } catch (const std::exception &error) {
                TaskOutcome outcome;
                outcome.name = handle->pending->sub.task.name;
                outcome.status = TaskStatus::Failed;
                outcome.attempts = 1;
                outcome.diagnosis =
                    std::string("campaign thread: ") + error.what();
                handle->report.outcomes = {outcome};
            }
            handle->done.store(true, std::memory_order_release);
        });
        active.push_back(std::move(campaign));
    }

    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled()) {
        telemetry.metrics()
            .gauge("service.active")
            .set(static_cast<std::int64_t>(active.size()));
    }
}

void
CampaignService::finalize(Active &campaign, ServiceReport &report)
{
    Pending &pending = *campaign.pending;
    const std::string &id = pending.sub.id;

    if (campaign.report.cancelledCount() > 0) {
        // Drain, not failure: the submission stays in active/ and its
        // journals in work/, so the next start resumes it.
        writeStatus(pending, "interrupted", "service drain");
        report.interrupted++;
        bumpServiceCounter("interrupted");
        return;
    }

    std::ostringstream result;
    printCampaignReport(campaign.report, result);
    io::writeFileAtomic(dir("results") + "/" + id + ".result",
                        result.str());

    const bool succeeded = campaign.report.failedCount() == 0;
    if (succeeded) {
        report.completed++;
        bumpServiceCounter("completed");
    } else {
        report.failed++;
        bumpServiceCounter("failed");
    }
    std::string detail;
    for (const TaskOutcome &outcome : campaign.report.outcomes)
        if (outcome.status != TaskStatus::Succeeded)
            detail = outcome.diagnosis;
    writeStatus(pending, succeeded ? "done" : "failed", detail);
    tryRename(dir("active") + "/" + id + ".json",
              dir("done") + "/" + id + ".json");
}

bool
CampaignService::reapFinished(ServiceReport &report)
{
    bool reaped = false;
    for (std::size_t i = 0; i < active.size();) {
        if (!active[i]->done.load(std::memory_order_acquire)) {
            ++i;
            continue;
        }
        active[i]->thread.join();
        finalize(*active[i], report);
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(i));
        reaped = true;
    }
    return reaped;
}

ServiceReport
CampaignService::serve()
{
    util::fatalIf(served, "CampaignService: serve() may run only once");
    served = true;

    ServiceReport report;
    recoverActive(report);

    while (true) {
        bool progressed = false;
        if (!cfg.stop.cancelled()) {
            const std::size_t before =
                report.rejected + queuedCount;
            scanInbox(report);
            progressed |= report.rejected + queuedCount != before;
        }
        const std::size_t admittedBefore = report.admitted;
        admitFairShare(report);
        progressed |= report.admitted != admittedBefore;
        progressed |= reapFinished(report);

        if (cfg.stop.cancelled() && active.empty())
            break; // Drained; queued submissions wait in active/.
        if (cfg.maxCampaigns > 0 && active.empty() &&
            report.completed + report.failed >=
                static_cast<std::size_t>(cfg.maxCampaigns))
            break;
        // Bounded mode is batch mode: with nothing running, nothing
        // queued and a scan that found nothing, waiting for the bound
        // would wait forever (e.g. a restart after every submission
        // already completed). Idle means done.
        if (cfg.maxCampaigns > 0 && active.empty() &&
            queuedCount == 0 && !progressed)
            break;

        if (!progressed && cfg.pollSeconds > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(cfg.pollSeconds));
        }
    }
    return report;
}

} // namespace autopilot::runner
