/**
 * @file
 * Human-readable model summaries (the "model.summary()" convenience):
 * per-layer shapes, parameters and MACs, plus aggregate statistics.
 */

#ifndef AUTOPILOT_NN_SUMMARY_H
#define AUTOPILOT_NN_SUMMARY_H

#include <ostream>

#include "nn/model.h"

namespace autopilot::nn
{

/** Aggregate statistics of a model. */
struct ModelStats
{
    std::int64_t totalParams = 0;
    std::int64_t totalMacs = 0;
    std::int64_t convParams = 0;  ///< Parameters in conv layers.
    std::int64_t denseParams = 0; ///< Parameters in dense layers.
    std::int64_t convMacs = 0;
    std::int64_t denseMacs = 0;

    /** Fraction of parameters in dense layers (weight-heaviness). */
    double denseParamFraction() const;

    /** Arithmetic intensity proxy: MACs per weight element. */
    double macsPerParam() const;
};

/** Compute aggregate statistics. */
ModelStats computeStats(const Model &model);

/**
 * Print a per-layer summary table:
 * name, type, output shape, params, MACs, GEMM (M x N x K).
 */
void printSummary(const Model &model, std::ostream &os);

} // namespace autopilot::nn

#endif // AUTOPILOT_NN_SUMMARY_H
