#include "nn/summary.h"

#include <string>

#include "util/table.h"

namespace autopilot::nn
{

double
ModelStats::denseParamFraction() const
{
    if (totalParams <= 0)
        return 0.0;
    return static_cast<double>(denseParams) /
           static_cast<double>(totalParams);
}

double
ModelStats::macsPerParam() const
{
    if (totalParams <= 0)
        return 0.0;
    return static_cast<double>(totalMacs) /
           static_cast<double>(totalParams);
}

ModelStats
computeStats(const Model &model)
{
    ModelStats stats;
    for (const Layer &layer : model.layers()) {
        stats.totalParams += layer.params();
        stats.totalMacs += layer.macs();
        if (layer.kind == LayerKind::Conv2D) {
            stats.convParams += layer.params();
            stats.convMacs += layer.macs();
        } else {
            stats.denseParams += layer.params();
            stats.denseMacs += layer.macs();
        }
    }
    return stats;
}

void
printSummary(const Model &model, std::ostream &os)
{
    os << "Model: " << model.name() << "\n";
    util::Table table({"layer", "type", "output", "params", "MACs",
                       "GEMM MxNxK"});
    for (const Layer &layer : model.layers()) {
        const GemmShape gemm = layer.gemm();
        std::string output;
        if (layer.kind == LayerKind::Conv2D) {
            output = std::to_string(layer.outHeight) + "x" +
                     std::to_string(layer.outWidth) + "x" +
                     std::to_string(layer.filters);
        } else {
            output = std::to_string(layer.filters);
        }
        table.addRow(
            {layer.name,
             layer.kind == LayerKind::Conv2D ? "conv2d" : "dense",
             output, std::to_string(layer.params()),
             std::to_string(layer.macs()),
             std::to_string(gemm.m) + "x" + std::to_string(gemm.n) +
                 "x" + std::to_string(gemm.k)});
    }
    table.print(os);

    const ModelStats stats = computeStats(model);
    os << "total params: " << stats.totalParams
       << "  total MACs: " << stats.totalMacs << "  dense fraction: "
       << util::formatDouble(stats.denseParamFraction() * 100, 1)
       << "%  MACs/param: "
       << util::formatDouble(stats.macsPerParam(), 1) << "\n";
}

} // namespace autopilot::nn
