#include "nn/layer.h"

#include "util/logging.h"

namespace autopilot::nn
{

using util::fatalIf;

std::int64_t
Layer::params() const
{
    if (kind == LayerKind::Conv2D)
        return kernel * kernel * inChannels * filters + filters;
    return inChannels * filters + filters;
}

std::int64_t
Layer::macs() const
{
    return gemm().macs();
}

std::int64_t
Layer::ifmapElems() const
{
    if (kind == LayerKind::Conv2D)
        return inHeight * inWidth * inChannels;
    return inChannels;
}

std::int64_t
Layer::ofmapElems() const
{
    if (kind == LayerKind::Conv2D)
        return outHeight * outWidth * filters;
    return filters;
}

std::int64_t
Layer::filterElems() const
{
    if (kind == LayerKind::Conv2D)
        return kernel * kernel * inChannels * filters;
    return inChannels * filters;
}

GemmShape
Layer::gemm() const
{
    GemmShape shape;
    if (kind == LayerKind::Conv2D) {
        shape.m = outHeight * outWidth;
        shape.n = filters;
        shape.k = kernel * kernel * inChannels;
    } else {
        shape.m = 1;
        shape.n = filters;
        shape.k = inChannels;
    }
    return shape;
}

Layer
conv2d(const std::string &name, std::int64_t in_height, std::int64_t in_width,
       std::int64_t in_channels, std::int64_t kernel, std::int64_t stride,
       std::int64_t filters)
{
    fatalIf(in_height <= 0 || in_width <= 0 || in_channels <= 0,
            "conv2d: input dimensions must be positive (" + name + ")");
    fatalIf(kernel <= 0 || stride <= 0 || filters <= 0,
            "conv2d: kernel/stride/filters must be positive (" + name + ")");
    fatalIf(kernel > in_height || kernel > in_width,
            "conv2d: kernel larger than input (" + name + ")");

    Layer layer;
    layer.kind = LayerKind::Conv2D;
    layer.name = name;
    layer.inHeight = in_height;
    layer.inWidth = in_width;
    layer.inChannels = in_channels;
    layer.kernel = kernel;
    layer.stride = stride;
    layer.filters = filters;
    layer.outHeight = (in_height - kernel) / stride + 1;
    layer.outWidth = (in_width - kernel) / stride + 1;
    return layer;
}

Layer
dense(const std::string &name, std::int64_t in_features,
      std::int64_t out_features)
{
    fatalIf(in_features <= 0 || out_features <= 0,
            "dense: feature counts must be positive (" + name + ")");

    Layer layer;
    layer.kind = LayerKind::Dense;
    layer.name = name;
    layer.inHeight = 1;
    layer.inWidth = 1;
    layer.inChannels = in_features;
    layer.kernel = 1;
    layer.stride = 1;
    layer.filters = out_features;
    layer.outHeight = 1;
    layer.outWidth = 1;
    return layer;
}

} // namespace autopilot::nn
