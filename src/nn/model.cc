#include "nn/model.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::nn
{

using util::fatalIf;

void
Model::append(const Layer &layer, std::int64_t extra_features)
{
    if (!layerList.empty()) {
        const Layer &prev = layerList.back();
        const std::int64_t expected = prev.ofmapElems() + extra_features;
        fatalIf(layer.ifmapElems() != expected,
                "Model::append: layer '" + layer.name +
                "' input size does not chain from '" + prev.name + "'");
    }
    layerList.push_back(layer);
}

void
Model::appendBranchRoot(const Layer &layer)
{
    layerList.push_back(layer);
}

std::int64_t
Model::totalParams() const
{
    std::int64_t total = 0;
    for (const Layer &layer : layerList)
        total += layer.params();
    return total;
}

std::int64_t
Model::totalMacs() const
{
    std::int64_t total = 0;
    for (const Layer &layer : layerList)
        total += layer.macs();
    return total;
}

std::int64_t
Model::totalFilterElems() const
{
    std::int64_t total = 0;
    for (const Layer &layer : layerList)
        total += layer.filterElems();
    return total;
}

std::int64_t
Model::peakIfmapElems() const
{
    std::int64_t peak = 0;
    for (const Layer &layer : layerList)
        peak = std::max(peak, layer.ifmapElems());
    return peak;
}

} // namespace autopilot::nn
