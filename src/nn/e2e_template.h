/**
 * @file
 * The parameterized multi-modal E2E model template of Fig. 2a.
 *
 * AutoPilot does not search arbitrary network graphs; it starts from the
 * Air Learning multi-modal template (an RGB image trunk plus a small state
 * vector branch, merged before the policy head) and varies only the number
 * of convolution layers and the filter width (Table II). This file builds a
 * concrete Model from those two hyperparameters.
 *
 * Geometry choices (documented in DESIGN.md):
 *  - RGB input of 256 x 256 x 3, downsampled from the OV9755 720p sensor.
 *  - First conv is 5x5 stride 2; subsequent convs are 3x3, stride 2 until
 *    the spatial size reaches 16, stride 1 afterwards.
 *  - Channels double after each strided conv (capped at 4x the base
 *    filter count), the standard CNN progression; average pooling to 8x8
 *    before the head. Total parameters therefore grow monotonically with
 *    both hyperparameters (as in Fig. 2b).
 *  - State branch: 16 -> 64 -> 64 dense layers (velocity + goal vector).
 *  - Head: pool/flatten -> 4096 -> (concat 64) -> 512 -> 25 discrete
 *    actions, matching Air Learning's 25-action space.
 *
 * With 7 layers and 48 filters this yields tens of millions of
 * parameters, i.e., the "orders of magnitude larger than DroNet" scale
 * the paper reports (109x-121x).
 */

#ifndef AUTOPILOT_NN_E2E_TEMPLATE_H
#define AUTOPILOT_NN_E2E_TEMPLATE_H

#include <cstdint>
#include <vector>

#include "nn/model.h"

namespace autopilot::nn
{

/** Hyperparameters searched for the E2E policy (Table II, top half). */
struct PolicyHyperParams
{
    int numConvLayers = 5; ///< In [2, 10].
    int numFilters = 32;   ///< In {32, 48, 64}.

    bool operator==(const PolicyHyperParams &other) const = default;
};

/** Fixed geometry of the multi-modal template. */
struct TemplateSpec
{
    std::int64_t inputHeight = 256;
    std::int64_t inputWidth = 256;
    std::int64_t inputChannels = 3;
    std::int64_t firstKernel = 5;
    std::int64_t laterKernel = 3;
    std::int64_t minSpatial = 16;  ///< Stop striding below this size.
    std::int64_t poolTo = 8;       ///< Average-pool the trunk to NxN.
    std::int64_t channelGrowthCap = 4; ///< Channels double up to cap*f.
    std::int64_t stateFeatures = 16;
    std::int64_t stateHidden = 64;
    std::int64_t trunkHidden = 2048;
    std::int64_t headHidden = 512;
    std::int64_t numActions = 25;
};

/** Legal hyperparameter values per Table II. */
struct PolicySpace
{
    std::vector<int> layerChoices = {2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<int> filterChoices = {32, 48, 64};

    /** All layer x filter combinations, in row-major order. */
    std::vector<PolicyHyperParams> enumerate() const;

    /** True when @p params is one of the legal combinations. */
    bool contains(const PolicyHyperParams &params) const;
};

/**
 * Instantiate the multi-modal template for given hyperparameters.
 *
 * @param params Hyperparameters; validated against the default PolicySpace
 *               ranges (fatal on out-of-range values).
 * @param spec   Template geometry (defaults to the paper configuration).
 */
Model buildE2EModel(const PolicyHyperParams &params,
                    const TemplateSpec &spec = TemplateSpec());

/** Canonical name for a hyperparameter combination, e.g. "e2e_l7_f48". */
std::string policyName(const PolicyHyperParams &params);

} // namespace autopilot::nn

#endif // AUTOPILOT_NN_E2E_TEMPLATE_H
