/**
 * @file
 * Neural-network layer descriptions for the E2E autonomy policies.
 *
 * AutoPilot's Phase 2 never executes a network numerically; it only needs
 * each layer's shape to (a) count parameters and MACs for the Phase 1
 * capacity model and (b) lower the layer to a GEMM that the systolic-array
 * simulator schedules. Layers therefore carry dimensions, not weights.
 */

#ifndef AUTOPILOT_NN_LAYER_H
#define AUTOPILOT_NN_LAYER_H

#include <cstdint>
#include <string>

namespace autopilot::nn
{

/** Kind of a policy-network layer. */
enum class LayerKind
{
    Conv2D, ///< 2-D convolution over an H x W x C feature map.
    Dense,  ///< Fully connected layer (includes the flatten of its input).
};

/**
 * GEMM view of a layer after im2col lowering.
 *
 * A convolution becomes an (M x K) * (K x N) product with M output pixels,
 * N filters and K-deep windows; a dense layer is the M = 1 special case.
 */
struct GemmShape
{
    std::int64_t m = 0; ///< Output rows (output pixels; 1 for Dense).
    std::int64_t n = 0; ///< Output columns (filter / neuron count).
    std::int64_t k = 0; ///< Reduction depth (window size / input features).

    /** Total multiply-accumulate operations: m * n * k. */
    std::int64_t macs() const { return m * n * k; }
};

/**
 * One layer of an E2E policy network.
 *
 * Construct via the factory functions conv2d() / dense(), which validate
 * parameters and derive output dimensions.
 */
struct Layer
{
    LayerKind kind = LayerKind::Conv2D;
    std::string name;

    // Convolution geometry (unused for Dense).
    std::int64_t inHeight = 0;   ///< Input feature-map height.
    std::int64_t inWidth = 0;    ///< Input feature-map width.
    std::int64_t inChannels = 0; ///< Input channels (or input features).
    std::int64_t kernel = 0;     ///< Square kernel side R = S.
    std::int64_t stride = 1;     ///< Stride in both dimensions.
    std::int64_t filters = 0;    ///< Output channels (or output features).
    std::int64_t outHeight = 0;  ///< Derived output height (1 for Dense).
    std::int64_t outWidth = 0;   ///< Derived output width (1 for Dense).

    /** Weight (+bias) parameter count. */
    std::int64_t params() const;

    /** Multiply-accumulate count for one inference. */
    std::int64_t macs() const;

    /** Number of input activation elements consumed. */
    std::int64_t ifmapElems() const;

    /** Number of output activation elements produced. */
    std::int64_t ofmapElems() const;

    /** Number of weight elements (excluding bias). */
    std::int64_t filterElems() const;

    /** Lower to the GEMM executed by the accelerator. */
    GemmShape gemm() const;
};

/**
 * Build a 2-D convolution layer with 'same'-style floor division output
 * size: out = (in - kernel) / stride + 1 after implicit padding to keep the
 * kernel inside (we use valid convolution on a pre-padded map, which is the
 * SCALE-Sim convention).
 *
 * @param name        Layer label used in traces and reports.
 * @param in_height   Input height in pixels.
 * @param in_width    Input width in pixels.
 * @param in_channels Input channel count.
 * @param kernel      Square kernel side.
 * @param stride      Stride; must divide the traversal sensibly (>= 1).
 * @param filters     Number of output channels.
 */
Layer conv2d(const std::string &name, std::int64_t in_height,
             std::int64_t in_width, std::int64_t in_channels,
             std::int64_t kernel, std::int64_t stride, std::int64_t filters);

/**
 * Build a dense (fully connected) layer.
 *
 * @param name        Layer label.
 * @param in_features Input feature count (flattened).
 * @param out_features Output neuron count.
 */
Layer dense(const std::string &name, std::int64_t in_features,
            std::int64_t out_features);

} // namespace autopilot::nn

#endif // AUTOPILOT_NN_LAYER_H
