/**
 * @file
 * An E2E policy model: an ordered list of layers with aggregate accounting.
 */

#ifndef AUTOPILOT_NN_MODEL_H
#define AUTOPILOT_NN_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace autopilot::nn
{

/**
 * An end-to-end policy network.
 *
 * The model is a feed-forward chain; chaining consistency (each layer's
 * input element count equals the previous layer's output element count,
 * modulo explicit flatten/concat boundaries) is validated on append.
 */
class Model
{
  public:
    /** @param name Identifier used in the policy database and reports. */
    explicit Model(std::string name) : modelName(std::move(name)) {}

    /**
     * Append a layer.
     *
     * @param layer           Layer to append.
     * @param extra_features  Additional input features concatenated from a
     *                        side branch (e.g., the IMU/goal state vector of
     *                        the multi-modal template) before this layer.
     */
    void append(const Layer &layer, std::int64_t extra_features = 0);

    /**
     * Append a layer that starts a new branch (e.g., the state-vector side
     * input of the multi-modal template); no chaining check is applied.
     */
    void appendBranchRoot(const Layer &layer);

    const std::string &name() const { return modelName; }
    const std::vector<Layer> &layers() const { return layerList; }
    bool empty() const { return layerList.empty(); }
    std::size_t size() const { return layerList.size(); }

    /** Total trainable parameters across all layers. */
    std::int64_t totalParams() const;

    /** Total multiply-accumulates for one inference. */
    std::int64_t totalMacs() const;

    /** Total weight elements (excluding biases). */
    std::int64_t totalFilterElems() const;

    /** Largest single-layer ifmap, in elements. */
    std::int64_t peakIfmapElems() const;

  private:
    std::string modelName;
    std::vector<Layer> layerList;
};

} // namespace autopilot::nn

#endif // AUTOPILOT_NN_MODEL_H
