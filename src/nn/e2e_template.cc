#include "nn/e2e_template.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace autopilot::nn
{

using util::fatalIf;

std::vector<PolicyHyperParams>
PolicySpace::enumerate() const
{
    std::vector<PolicyHyperParams> all;
    all.reserve(layerChoices.size() * filterChoices.size());
    for (int layers : layerChoices) {
        for (int filters : filterChoices) {
            PolicyHyperParams p;
            p.numConvLayers = layers;
            p.numFilters = filters;
            all.push_back(p);
        }
    }
    return all;
}

bool
PolicySpace::contains(const PolicyHyperParams &params) const
{
    const bool layers_ok =
        std::find(layerChoices.begin(), layerChoices.end(),
                  params.numConvLayers) != layerChoices.end();
    const bool filters_ok =
        std::find(filterChoices.begin(), filterChoices.end(),
                  params.numFilters) != filterChoices.end();
    return layers_ok && filters_ok;
}

Model
buildE2EModel(const PolicyHyperParams &params, const TemplateSpec &spec)
{
    fatalIf(params.numConvLayers < 2 || params.numConvLayers > 10,
            "buildE2EModel: numConvLayers outside [2, 10]");
    fatalIf(params.numFilters <= 0,
            "buildE2EModel: numFilters must be positive");

    Model model(policyName(params));

    // Image trunk: strided convolutions until the map is small enough.
    std::int64_t height = spec.inputHeight;
    std::int64_t width = spec.inputWidth;
    std::int64_t channels = spec.inputChannels;
    std::int64_t out_channels = params.numFilters;
    const std::int64_t max_channels =
        params.numFilters * spec.channelGrowthCap;
    for (int i = 0; i < params.numConvLayers; ++i) {
        const bool first = (i == 0);
        const std::int64_t kernel = first ? spec.firstKernel
                                          : spec.laterKernel;
        const bool shrink = std::min(height, width) / 2 >= spec.minSpatial;
        const std::int64_t stride = shrink ? 2 : 1;
        Layer conv = conv2d("conv" + std::to_string(i), height, width,
                            channels, kernel, stride, out_channels);
        model.append(conv);
        height = conv.outHeight;
        width = conv.outWidth;
        channels = conv.filters;
        if (stride == 2)
            out_channels = std::min(out_channels * 2, max_channels);
    }

    // Trunk head: average-pool to a fixed spatial size, then flatten into
    // a wide dense layer. The pool is not a MAC workload, so it enters the
    // model as a branch root with the pooled feature count.
    const std::int64_t pooled = std::min({spec.poolTo, height, width});
    const std::int64_t flat = pooled * pooled * channels;
    model.appendBranchRoot(dense("fc_trunk", flat, spec.trunkHidden));

    // State-vector side branch (velocity + goal), merged at the next layer.
    model.appendBranchRoot(
        dense("fc_state0", spec.stateFeatures, spec.stateHidden));
    model.append(dense("fc_state1", spec.stateHidden, spec.stateHidden));

    // Merge: the concat of trunkHidden and stateHidden feeds the head.
    model.appendBranchRoot(dense("fc_merge",
                                 spec.trunkHidden + spec.stateHidden,
                                 spec.headHidden));
    model.append(dense("fc_policy", spec.headHidden, spec.numActions));

    return model;
}

std::string
policyName(const PolicyHyperParams &params)
{
    return "e2e_l" + std::to_string(params.numConvLayers) + "_f" +
           std::to_string(params.numFilters);
}

} // namespace autopilot::nn
