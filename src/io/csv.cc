#include "io/csv.h"

#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace autopilot::io
{

using util::fatalIf;

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream stream(line);
    while (std::getline(stream, field, ','))
        fields.push_back(field);
    if (!line.empty() && line.back() == ',')
        fields.emplace_back();
    return fields;
}

std::vector<std::vector<std::string>>
readCsv(std::istream &is, const std::vector<std::string> &expected_header)
{
    std::string line;
    fatalIf(!std::getline(is, line), "readCsv: empty stream");
    const std::vector<std::string> header = splitCsvLine(line);
    fatalIf(header != expected_header,
            "readCsv: unexpected header '" + line + "'");

    std::vector<std::vector<std::string>> rows;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> fields = splitCsvLine(line);
        fatalIf(fields.size() != expected_header.size(),
                "readCsv: ragged row '" + line + "'");
        rows.push_back(std::move(fields));
    }
    return rows;
}

double
parseDouble(const std::string &text)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    fatalIf(end == text.c_str() || *end != '\0',
            "parseDouble: bad number '" + text + "'");
    return value;
}

int
parseInt(const std::string &text)
{
    char *end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    fatalIf(end == text.c_str() || *end != '\0',
            "parseInt: bad integer '" + text + "'");
    return static_cast<int>(value);
}

long long
parseInt64(const std::string &text)
{
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    fatalIf(end == text.c_str() || *end != '\0',
            "parseInt64: bad integer '" + text + "'");
    return value;
}

} // namespace autopilot::io
