#include "io/csv.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace autopilot::io
{

using util::fatalIf;

namespace
{

/** True when @p text starts or ends with ASCII whitespace. */
bool
hasOuterWhitespace(const std::string &text)
{
    return !text.empty() &&
           (std::isspace(static_cast<unsigned char>(text.front())) ||
            std::isspace(static_cast<unsigned char>(text.back())));
}

/**
 * Reject fields the strtoX family would silently tolerate: empty input
 * parses to "no conversion" only sometimes, and leading whitespace is
 * skipped outright. A CSV field is machine-written, so both indicate a
 * corrupted file. Returns the reason, or empty when the field is a
 * plausible number.
 */
std::string
checkNumericField(const std::string &text, const char *kind)
{
    if (text.empty())
        return std::string("bad ") + kind + " '' (empty field)";
    if (hasOuterWhitespace(text))
        return std::string("bad ") + kind + " '" + text +
               "' (leading/trailing whitespace)";
    return {};
}

} // namespace

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream stream(line);
    while (std::getline(stream, field, ','))
        fields.push_back(field);
    if (!line.empty() && line.back() == ',')
        fields.emplace_back();
    // Tolerate a CRLF line ending that leaked through: the '\r' would
    // otherwise stick to the last field and corrupt it.
    if (!fields.empty() && !fields.back().empty() &&
        fields.back().back() == '\r')
        fields.back().pop_back();
    return fields;
}

std::vector<std::vector<std::string>>
readCsv(std::istream &is, const std::vector<std::string> &expected_header)
{
    std::size_t matched = 0;
    return readCsvAny(is, {expected_header}, matched);
}

std::vector<std::vector<std::string>>
readCsvAny(std::istream &is,
           const std::vector<std::vector<std::string>> &accepted_headers,
           std::size_t &matched_header)
{
    // getline() splits on '\n' only, so files written with CRLF line
    // endings (Windows tools, some spreadsheet exports) leave a '\r' on
    // every line; strip it so both conventions round-trip identically.
    auto getCsvLine = [&is](std::string &line) {
        if (!std::getline(is, line))
            return false;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        return true;
    };

    std::string line;
    fatalIf(!getCsvLine(line), "readCsv: empty stream");
    const std::vector<std::string> header = splitCsvLine(line);
    bool known = false;
    for (std::size_t h = 0; h < accepted_headers.size(); ++h) {
        if (header == accepted_headers[h]) {
            matched_header = h;
            known = true;
            break;
        }
    }
    fatalIf(!known, "readCsv: unexpected header '" + line + "'");
    const std::size_t width = accepted_headers[matched_header].size();

    std::vector<std::vector<std::string>> rows;
    while (getCsvLine(line)) {
        if (line.empty())
            continue;
        std::vector<std::string> fields = splitCsvLine(line);
        fatalIf(fields.size() != width,
                "readCsv: ragged row '" + line + "'");
        rows.push_back(std::move(fields));
    }
    return rows;
}

std::string
tryParseDouble(const std::string &text, double &value)
{
    std::string reason = checkNumericField(text, "number");
    if (!reason.empty())
        return reason;
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return "bad number '" + text + "'";
    value = parsed;
    return {};
}

std::string
tryParseInt(const std::string &text, int &value)
{
    std::string reason = checkNumericField(text, "integer");
    if (!reason.empty())
        return reason;
    char *end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        return "bad integer '" + text + "'";
    value = static_cast<int>(parsed);
    return {};
}

std::string
tryParseInt64(const std::string &text, long long &value)
{
    std::string reason = checkNumericField(text, "integer");
    if (!reason.empty())
        return reason;
    char *end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        return "bad integer '" + text + "'";
    value = parsed;
    return {};
}

double
parseDouble(const std::string &text)
{
    double value = 0.0;
    const std::string reason = tryParseDouble(text, value);
    fatalIf(!reason.empty(), "parseDouble: " + reason);
    return value;
}

int
parseInt(const std::string &text)
{
    int value = 0;
    const std::string reason = tryParseInt(text, value);
    fatalIf(!reason.empty(), "parseInt: " + reason);
    return value;
}

long long
parseInt64(const std::string &text)
{
    long long value = 0;
    const std::string reason = tryParseInt64(text, value);
    fatalIf(!reason.empty(), "parseInt64: " + reason);
    return value;
}

} // namespace autopilot::io
