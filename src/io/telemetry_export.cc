#include "io/telemetry_export.h"

#include <fstream>

#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::io
{

namespace
{

std::ofstream
openForWrite(const std::string &path)
{
    std::ofstream os(path);
    util::fatalIf(!os, "telemetry export: cannot open '" + path + "'");
    return os;
}

} // namespace

void
saveTraceJson(const std::string &path)
{
    std::ofstream os = openForWrite(path);
    util::Telemetry::instance().trace().writeChromeTrace(os);
    util::fatalIf(!os, "telemetry export: write failed for '" + path +
                           "'");
}

void
saveMetricsCsv(const std::string &path)
{
    std::ofstream os = openForWrite(path);
    util::Telemetry::instance().metrics().writeCsv(os);
    util::fatalIf(!os, "telemetry export: write failed for '" + path +
                           "'");
}

void
saveTelemetry(const std::string &trace_path,
              const std::string &metrics_path)
{
    saveTraceJson(trace_path);
    saveMetricsCsv(metrics_path);
}

} // namespace autopilot::io
