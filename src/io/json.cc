#include "io/json.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "util/logging.h"

namespace autopilot::io
{

using util::fatalIf;

bool
JsonValue::asBoolean() const
{
    fatalIf(kind != Type::Boolean, "JsonValue: not a boolean");
    return boolean;
}

double
JsonValue::asNumber() const
{
    fatalIf(kind != Type::Number, "JsonValue: not a number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    fatalIf(kind != Type::String, "JsonValue: not a string");
    return *text;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    fatalIf(kind != Type::Array, "JsonValue: not an array");
    return *elements;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    fatalIf(kind != Type::Object, "JsonValue: not an object");
    return *members;
}

bool
JsonValue::hasMember(const std::string &key) const
{
    return kind == Type::Object && members->count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    fatalIf(!hasMember(key), "JsonValue: no member '" + key + "'");
    return members->at(key);
}

std::size_t
JsonValue::size() const
{
    if (kind == Type::Array)
        return elements->size();
    if (kind == Type::Object)
        return members->size();
    util::fatal("JsonValue: size() on a scalar");
    return 0;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBoolean(bool value)
{
    JsonValue v;
    v.kind = Type::Boolean;
    v.boolean = value;
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.kind = Type::Number;
    v.number = value;
    return v;
}

JsonValue
JsonValue::makeString(std::string value)
{
    JsonValue v;
    v.kind = Type::String;
    v.text = std::make_shared<const std::string>(std::move(value));
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elements)
{
    JsonValue v;
    v.kind = Type::Array;
    v.elements = std::make_shared<const std::vector<JsonValue>>(
        std::move(elements));
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> members)
{
    JsonValue v;
    v.kind = Type::Object;
    v.members =
        std::make_shared<const std::map<std::string, JsonValue>>(
            std::move(members));
    return v;
}

namespace
{

/// Internal parse failure; callers translate to fatal() or an error
/// string, so the type never escapes this translation unit.
class JsonParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Recursive-descent parser over an in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : doc(text) {}

    JsonValue parseDocument()
    {
        const JsonValue value = parseValue();
        skipWhitespace();
        failIf(pos != doc.size(), "trailing garbage");
        return value;
    }

  private:
    void failIf(bool condition, const std::string &what) const
    {
        if (condition) {
            throw JsonParseError(what + " at offset " +
                                 std::to_string(pos));
        }
    }

    void skipWhitespace()
    {
        while (pos < doc.size() &&
               std::isspace(static_cast<unsigned char>(doc[pos])))
            ++pos;
    }

    char peek()
    {
        failIf(pos >= doc.size(), "unexpected end of input");
        return doc[pos];
    }

    void expect(char c)
    {
        failIf(peek() != c,
               std::string("expected '") + c + "', got '" + peek() +
                   "'");
        ++pos;
    }

    void expectLiteral(const std::string &literal)
    {
        failIf(doc.compare(pos, literal.size(), literal) != 0,
               "bad literal");
        pos += literal.size();
    }

    JsonValue parseValue()
    {
        skipWhitespace();
        switch (peek()) {
          case 'n': expectLiteral("null"); return JsonValue::makeNull();
          case 't':
            expectLiteral("true");
            return JsonValue::makeBoolean(true);
          case 'f':
            expectLiteral("false");
            return JsonValue::makeBoolean(false);
          case '"': return JsonValue::makeString(parseString());
          case '[': return parseArray();
          case '{': return parseObject();
          default:  return parseNumber();
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < doc.size() &&
               (std::isdigit(static_cast<unsigned char>(doc[pos])) ||
                doc[pos] == '.' || doc[pos] == 'e' || doc[pos] == 'E' ||
                doc[pos] == '+' || doc[pos] == '-'))
            ++pos;
        const std::string token = doc.substr(start, pos - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        failIf(token.empty() || end != token.c_str() + token.size(),
               "bad number '" + token + "'");
        return JsonValue::makeNumber(value);
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            failIf(pos >= doc.size(), "unterminated string");
            const char c = doc[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            failIf(pos >= doc.size(), "unterminated escape");
            const char escape = doc[pos++];
            switch (escape) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u':  out += parseUnicodeEscape(); break;
              default:
                failIf(true, std::string("bad escape '\\") + escape +
                                 "'");
            }
        }
    }

    /** One 4-digit \uXXXX code unit (the "\u" already consumed). */
    unsigned parseUnicodeCodeUnit()
    {
        failIf(pos + 4 > doc.size(), "truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = doc[pos++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code += static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code += static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code += static_cast<unsigned>(c - 'A' + 10);
            else
                failIf(true, "bad \\u escape digit");
        }
        return code;
    }

    /**
     * \uXXXX escapes, encoded back to UTF-8. A high surrogate must be
     * followed by a \uXXXX low surrogate; the pair combines into one
     * supplementary-plane code point (4-byte UTF-8). Lone or
     * mis-ordered surrogates are rejected - emitting them raw would
     * produce broken UTF-8 that downstream consumers choke on far from
     * the actual defect.
     */
    std::string parseUnicodeEscape()
    {
        unsigned code = parseUnicodeCodeUnit();
        failIf(code >= 0xDC00 && code <= 0xDFFF,
               "lone low surrogate in \\u escape");
        if (code >= 0xD800 && code <= 0xDBFF) {
            failIf(pos + 2 > doc.size() || doc[pos] != '\\' ||
                       doc[pos + 1] != 'u',
                   "high surrogate not followed by \\u escape");
            pos += 2;
            const unsigned low = parseUnicodeCodeUnit();
            failIf(low < 0xDC00 || low > 0xDFFF,
                   "high surrogate not followed by low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        }
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue parseArray()
    {
        expect('[');
        std::vector<JsonValue> elements;
        skipWhitespace();
        if (peek() == ']') {
            ++pos;
            return JsonValue::makeArray(std::move(elements));
        }
        while (true) {
            elements.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return JsonValue::makeArray(std::move(elements));
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        std::map<std::string, JsonValue> members;
        skipWhitespace();
        if (peek() == '}') {
            ++pos;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            members[std::move(key)] = parseValue();
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return JsonValue::makeObject(std::move(members));
        }
    }

    const std::string &doc;
    std::size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    try {
        return JsonParser(text).parseDocument();
    } catch (const JsonParseError &error) {
        util::fatal(std::string("parseJson: ") + error.what());
    }
    return JsonValue(); // Unreachable; fatal() does not return.
}

bool
tryParseJson(const std::string &text, JsonValue &out, std::string &error)
{
    try {
        out = JsonParser(text).parseDocument();
        return true;
    } catch (const JsonParseError &parseError) {
        error = parseError.what();
        return false;
    }
}

} // namespace autopilot::io
