/**
 * @file
 * The evaluation journal: an append-only, flush-on-commit record of
 * every committed DSE batch, plus the Phase 1 policy checkpoint.
 *
 * Both files share one shape: a `fingerprint,<hex>` first line binding
 * the file to a (seed, spec) pair, followed by the standard CSV payload
 * (the DSE archive schema for the journal, the policy database schema
 * for the checkpoint). A resumed run first checks the fingerprint -
 * replaying a journal produced under a different spec would poison the
 * memo cache with evaluations of the wrong problem - then replays every
 * intact row. The tolerant tryRead* readers underneath mean a record
 * torn by a mid-write kill truncates cleanly: the run loses at most the
 * one batch that was in flight.
 */

#ifndef AUTOPILOT_IO_JOURNAL_H
#define AUTOPILOT_IO_JOURNAL_H

#include <cstdint>
#include <fstream>
#include <istream>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "airlearning/database.h"
#include "dse/evaluation.h"

namespace autopilot::io
{

/** Render a 64-bit fingerprint the way journal headers store it. */
std::string formatFingerprint(std::uint64_t fingerprint);

/** Result of replaying an evaluation journal. */
struct JournalReplay
{
    /// File existed and began with a well-formed fingerprint line.
    bool found = false;
    std::uint64_t fingerprint = 0;
    /// Every intact row, in the order batches were committed.
    std::vector<dse::Evaluation> entries;
    /// True when a torn/corrupt tail was dropped; badLine/reason say
    /// where and why (1-based over the whole file).
    bool truncated = false;
    std::size_t badLine = 0;
    std::string reason;
};

/** Replay a journal stream (fingerprint line + archive CSV). */
JournalReplay readEvalJournal(std::istream &is);

/** Replay the journal at @p path; found=false when it does not exist
 * or lacks a fingerprint line. */
JournalReplay readEvalJournal(const std::string &path);

/**
 * Append-only journal writer. Construction (re)writes the fingerprint
 * line, the archive header, and any @p replayed rows carried over from
 * a previous attempt; append() then adds one committed batch per call
 * and flushes before returning, so a kill after append() returns can
 * lose nothing and a kill during append() loses at most that batch
 * (the torn tail is dropped on the next replay).
 *
 * @p precisionColumn selects the archive layout written by the header:
 * true emits dsePrecisionArchiveHeader() (rows carry the trailing
 * operand-precision label), false the classic dseArchiveHeader().
 * Single-precision runs must pass false so their journals stay
 * byte-identical to pre-precision ones.
 *
 * append() is thread-safe; batches land in call order.
 */
class EvalJournalWriter
{
  public:
    EvalJournalWriter(const std::string &path, std::uint64_t fingerprint,
                      std::span<const dse::Evaluation> replayed = {},
                      bool precisionColumn = false);

    void append(std::span<const dse::Evaluation> batch);

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
    std::ofstream out;
    std::mutex mutex;
};

/** Result of loading a Phase 1 policy checkpoint. */
struct PolicyCheckpoint
{
    bool found = false; ///< File existed with a fingerprint line.
    bool ok = false;    ///< Payload parsed cleanly end to end.
    std::uint64_t fingerprint = 0;
    airlearning::PolicyDatabase db;
    std::string reason; ///< Parse failure detail when !ok.
};

/**
 * Write the Phase 1 policy database as a checkpoint (fingerprint line +
 * policy CSV). Written via a temporary file that is fsynced before
 * being renamed into place (and the directory fsynced after), so a
 * kill mid-write never leaves a half-written checkpoint behind and a
 * power loss after the rename can neither tear the new file nor
 * resurrect the stale one.
 */
void writePolicyCheckpoint(const std::string &path,
                           std::uint64_t fingerprint,
                           const airlearning::PolicyDatabase &db);

/** Load a checkpoint written by writePolicyCheckpoint. */
PolicyCheckpoint readPolicyCheckpoint(const std::string &path);

} // namespace autopilot::io

#endif // AUTOPILOT_IO_JOURNAL_H
