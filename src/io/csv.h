/**
 * @file
 * Minimal CSV reading helpers for the persistence layer. Our files are
 * machine-written numeric tables, so no quoting/escaping is needed; the
 * parser is strict and fails loudly on malformed input.
 */

#ifndef AUTOPILOT_IO_CSV_H
#define AUTOPILOT_IO_CSV_H

#include <istream>
#include <string>
#include <vector>

namespace autopilot::io
{

/** Split one CSV line on commas (no quoting). */
std::vector<std::string> splitCsvLine(const std::string &line);

/**
 * Read a CSV stream: first line is the header, remaining lines are rows.
 *
 * @param is              Input stream.
 * @param expected_header Exact header fields required (fatal otherwise).
 * @return Rows, each with exactly expected_header.size() fields (fatal
 *         on ragged rows). Empty lines are skipped.
 */
std::vector<std::vector<std::string>> readCsv(
    std::istream &is, const std::vector<std::string> &expected_header);

/**
 * Like readCsv, but the header may match any one of
 * @p accepted_headers (fatal when none matches). Used by readers that
 * accept a legacy file layout next to the current one.
 *
 * @param matched_header Set to the index of the header that matched;
 *        rows are validated against that header's width.
 */
std::vector<std::vector<std::string>> readCsvAny(
    std::istream &is,
    const std::vector<std::vector<std::string>> &accepted_headers,
    std::size_t &matched_header);

/** Parse helpers that fail via fatal() with the offending text. */
double parseDouble(const std::string &text);
int parseInt(const std::string &text);
long long parseInt64(const std::string &text);

/**
 * Non-fatal parse variants for readers that must survive corrupt input
 * (journal replay truncating at a torn record). On success the value is
 * stored and the empty string returned; on failure the return value is
 * the reason ("bad number 'x' (leading/trailing whitespace)", ...) and
 * @p value is untouched. The fatal variants above are these plus
 * fatal(), so both families reject exactly the same inputs.
 */
std::string tryParseDouble(const std::string &text, double &value);
std::string tryParseInt(const std::string &text, int &value);
std::string tryParseInt64(const std::string &text, long long &value);

} // namespace autopilot::io

#endif // AUTOPILOT_IO_CSV_H
