/**
 * @file
 * Minimal JSON reader for machine-written files. The only producer we
 * need to understand is our own telemetry trace export (plus small
 * hand-written config snippets in tests), so the parser supports the
 * full JSON value grammar but optimizes for clarity over speed and
 * fails loudly via fatal() on malformed input.
 */

#ifndef AUTOPILOT_IO_JSON_H
#define AUTOPILOT_IO_JSON_H

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace autopilot::io
{

/** A parsed JSON value (tree of shared_ptr nodes). */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Boolean,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Type type() const { return kind; }

    bool isNull() const { return kind == Type::Null; }
    bool isBoolean() const { return kind == Type::Boolean; }
    bool isNumber() const { return kind == Type::Number; }
    bool isString() const { return kind == Type::String; }
    bool isArray() const { return kind == Type::Array; }
    bool isObject() const { return kind == Type::Object; }

    /** The boolean value (fatal unless isBoolean()). */
    bool asBoolean() const;

    /** The numeric value (fatal unless isNumber()). */
    double asNumber() const;

    /** The string value (fatal unless isString()). */
    const std::string &asString() const;

    /** The elements (fatal unless isArray()). */
    const std::vector<JsonValue> &asArray() const;

    /** The members (fatal unless isObject()). */
    const std::map<std::string, JsonValue> &asObject() const;

    /** True when this is an object with member @p key. */
    bool hasMember(const std::string &key) const;

    /**
     * Member @p key of an object (fatal unless isObject() and the
     * member exists).
     */
    const JsonValue &at(const std::string &key) const;

    /** Number of elements/members (fatal unless array or object). */
    std::size_t size() const;

    static JsonValue makeNull();
    static JsonValue makeBoolean(bool value);
    static JsonValue makeNumber(double value);
    static JsonValue makeString(std::string value);
    static JsonValue makeArray(std::vector<JsonValue> elements);
    static JsonValue makeObject(std::map<std::string, JsonValue> members);

  private:
    Type kind = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::shared_ptr<const std::string> text;
    std::shared_ptr<const std::vector<JsonValue>> elements;
    std::shared_ptr<const std::map<std::string, JsonValue>> members;
};

/**
 * Parse one JSON document. Fatal (with position information) on
 * malformed input or trailing garbage after the top-level value.
 */
JsonValue parseJson(const std::string &text);

/**
 * Non-fatal variant for untrusted input (e.g. campaign submissions
 * dropped into the service inbox by other processes): returns true and
 * fills @p out on success, or returns false and fills @p error with the
 * same position-stamped diagnostic parseJson() would have died with.
 * A malformed submission must reject one file, not take down a daemon
 * running everyone else's campaigns.
 */
bool tryParseJson(const std::string &text, JsonValue &out,
                  std::string &error);

} // namespace autopilot::io

#endif // AUTOPILOT_IO_JSON_H
