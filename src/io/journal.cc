#include "io/journal.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "io/csv.h"
#include "io/persistence.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::io
{

namespace
{

constexpr const char *fingerprintKey = "fingerprint";

/** Parse a `fingerprint,<hex>` line; false when it is anything else. */
bool
tryParseFingerprintLine(const std::string &line,
                        std::uint64_t &fingerprint)
{
    const std::vector<std::string> fields = splitCsvLine(line);
    if (fields.size() != 2 || fields[0] != fingerprintKey ||
        fields[1].empty())
        return false;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(fields[1].c_str(), &end, 16);
    if (end == fields[1].c_str() || *end != '\0')
        return false;
    fingerprint = static_cast<std::uint64_t>(parsed);
    return true;
}

void
writeFingerprintLine(std::ostream &os, std::uint64_t fingerprint)
{
    os << fingerprintKey << ',' << formatFingerprint(fingerprint)
       << '\n';
}

/** Read the first line with CRLF tolerance; false on an empty stream. */
bool
readFirstLine(std::istream &is, std::string &line)
{
    if (!std::getline(is, line))
        return false;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return true;
}

} // namespace

std::string
formatFingerprint(std::uint64_t fingerprint)
{
    std::ostringstream os;
    os << std::hex << fingerprint;
    return os.str();
}

JournalReplay
readEvalJournal(std::istream &is)
{
    JournalReplay replay;
    std::string line;
    if (!readFirstLine(is, line))
        return replay;
    if (!tryParseFingerprintLine(line, replay.fingerprint))
        return replay;
    replay.found = true;

    ParseDiag diag;
    replay.entries = tryReadDseArchive(is, diag);
    if (!diag.ok) {
        // A failure on the archive's first line means the header never
        // made it to disk intact (the writer was killed between the
        // fingerprint line and the header flush): zero batches were
        // committed, so this is a clean fresh start - not a torn tail
        // worth diagnosing. The header is rewritten on resume.
        if (replay.entries.empty() && diag.line <= 1)
            return replay;
        replay.truncated = true;
        // The fingerprint line precedes the archive section, so shift
        // its 1-based line numbers to whole-file coordinates.
        replay.badLine = diag.line + 1;
        replay.reason = diag.reason;
    }
    return replay;
}

JournalReplay
readEvalJournal(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    return readEvalJournal(in);
}

EvalJournalWriter::EvalJournalWriter(
    const std::string &path, std::uint64_t fingerprint,
    std::span<const dse::Evaluation> replayed, bool precisionColumn)
    : filePath(path), out(path, std::ios::trunc)
{
    util::fatalIf(!out, "EvalJournalWriter: cannot open '" + path +
                            "' for writing");
    writeFingerprintLine(out, fingerprint);
    const std::vector<std::string> &header =
        precisionColumn ? dsePrecisionArchiveHeader()
                        : dseArchiveHeader();
    for (std::size_t i = 0; i < header.size(); ++i)
        out << header[i] << (i + 1 == header.size() ? "\n" : ",");
    for (const dse::Evaluation &eval : replayed)
        writeDseArchiveRow(eval, out);
    out.flush();
    util::fatalIf(!out, "EvalJournalWriter: write failed on '" + path +
                            "'");
    // Make the header (and any replayed prefix) durable before batches
    // start landing: a power loss must never leave a journal whose
    // very existence the directory has forgotten while a checkpoint
    // written after it survived. Appends themselves stay flush-only -
    // a lost tail batch is exactly what replay truncation absorbs.
    syncFileToDisk(filePath);
    syncParentDir(filePath);
}

void
EvalJournalWriter::append(std::span<const dse::Evaluation> batch)
{
    if (batch.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex);
    for (const dse::Evaluation &eval : batch)
        writeDseArchiveRow(eval, out);
    out.flush();
    util::fatalIf(!out, "EvalJournalWriter: write failed on '" +
                            filePath + "'");
    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled()) {
        telemetry.metrics().counter("io.journal.batches").add(1);
        telemetry.metrics()
            .counter("io.journal.rows")
            .add(batch.size());
    }
}

void
writePolicyCheckpoint(const std::string &path,
                      std::uint64_t fingerprint,
                      const airlearning::PolicyDatabase &db)
{
    const std::string tmpPath = path + ".tmp";
    {
        std::ofstream out(tmpPath, std::ios::trunc);
        util::fatalIf(!out, "writePolicyCheckpoint: cannot open '" +
                                tmpPath + "' for writing");
        writeFingerprintLine(out, fingerprint);
        writePolicyDatabase(db, out);
        out.flush();
        util::fatalIf(!out, "writePolicyCheckpoint: write failed on '" +
                                tmpPath + "'");
    }
    // fsync the temp file BEFORE the rename and the directory after
    // it: without the first, the rename can land with the data still
    // in the page cache (torn checkpoint after power loss); without
    // the second, the rename itself can be forgotten and a STALE
    // checkpoint resurrected - one that disagrees with the journal
    // written after it.
    syncFileToDisk(tmpPath);
    util::fatalIf(std::rename(tmpPath.c_str(), path.c_str()) != 0,
                  "writePolicyCheckpoint: cannot rename '" + tmpPath +
                      "' to '" + path + "'");
    syncParentDir(path);
}

PolicyCheckpoint
readPolicyCheckpoint(const std::string &path)
{
    PolicyCheckpoint checkpoint;
    std::ifstream in(path);
    if (!in)
        return checkpoint;
    std::string line;
    if (!readFirstLine(in, line) ||
        !tryParseFingerprintLine(line, checkpoint.fingerprint))
        return checkpoint;
    checkpoint.found = true;

    ParseDiag diag;
    checkpoint.db = tryReadPolicyDatabase(in, diag);
    checkpoint.ok = diag.ok;
    if (!diag.ok)
        checkpoint.reason = diag.reason + " at line " +
                            std::to_string(diag.line + 1);
    return checkpoint;
}

} // namespace autopilot::io
