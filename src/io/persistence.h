/**
 * @file
 * CSV persistence for the two expensive artifacts of an AutoPilot run:
 * the Phase 1 policy database and the Phase 2 DSE archive. The paper's
 * three-phase split exists precisely so these can be computed once and
 * reused ("Phase 1 and 2 take the most time; Phase 3 is negligible");
 * persistence makes the reuse survive process boundaries.
 *
 * Two reader families share one decoder: the classic read*() calls are
 * fatal on any malformed input (a corrupt archive handed to a bench is
 * a usage error), while the tryRead*() variants return a ParseDiag
 * naming the first bad line and keep every row before it - exactly what
 * journal replay needs to truncate at a torn final record after a kill.
 */

#ifndef AUTOPILOT_IO_PERSISTENCE_H
#define AUTOPILOT_IO_PERSISTENCE_H

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "airlearning/database.h"
#include "dse/evaluator.h"

namespace autopilot::io
{

/**
 * Flush a file's written data to stable storage (POSIX fsync). A
 * stream flush only hands bytes to the page cache; durability across
 * power loss needs this. Fatal when the file cannot be opened or
 * synced. No-op on platforms without fsync.
 */
void syncFileToDisk(const std::string &path);

/**
 * fsync the directory containing @p path, making a rename into that
 * directory durable: without it, a power loss after an atomic
 * temp+rename can resurrect the OLD file - a stale checkpoint that
 * disagrees with the journal written after it. No-op without fsync.
 */
void syncParentDir(const std::string &path);

/**
 * Durable atomic file write: write @p contents to "<path>.tmp", flush,
 * fsync, rename over @p path, fsync the parent directory. Readers of
 * @p path see either the old bytes or the new bytes, never a torn
 * file - even across power loss. Fatal on any I/O failure.
 */
void writeFileAtomic(const std::string &path,
                     const std::string &contents);

/**
 * Outcome of a tolerant parse. When ok is false, @p line is the
 * 1-based line number of the first malformed line (the header is line
 * 1) and @p reason says what was wrong with it; all rows before that
 * line were parsed and returned.
 */
struct ParseDiag
{
    bool ok = true;
    std::size_t line = 0;
    std::string reason;
};

/** Write the policy database as CSV. */
void writePolicyDatabase(const airlearning::PolicyDatabase &db,
                         std::ostream &os);

/** Read a policy database written by writePolicyDatabase (fatal on
 * malformed input). */
airlearning::PolicyDatabase readPolicyDatabase(std::istream &is);

/**
 * Non-fatal readPolicyDatabase: parse until the first malformed line,
 * reporting it in @p diag and returning the records before it.
 */
airlearning::PolicyDatabase tryReadPolicyDatabase(std::istream &is,
                                                  ParseDiag &diag);

/** The default DSE archive CSV column set (backend/fidelity/contention
 * and the mission-mix scenario tag included) - the layout of every
 * single-precision run. */
const std::vector<std::string> &dseArchiveHeader();

/** The precision-axis archive layout: dseArchiveHeader() plus the
 * trailing operand-precision label column. Written whenever the Phase 2
 * precision axis is searchable (rows carry "int8"/"fp16"/"fp32"
 * labels). */
const std::vector<std::string> &dsePrecisionArchiveHeader();

/**
 * Every archive header this reader family accepts, current layout
 * first, then the legacy layouts back to the pre-backend 12-column
 * one. Suitable as the accepted_headers argument of io::readCsvAny, so
 * external tooling reads pre-airframe archives/journals exactly as
 * tryReadDseArchive does (missing columns take their defaults:
 * analytical fidelity, zero contention, scenario "-").
 */
const std::vector<std::vector<std::string>> &dseArchiveAcceptedHeaders();

/** Write a Phase 2 evaluation archive as CSV. */
void writeDseArchive(const std::vector<dse::Evaluation> &archive,
                     std::ostream &os);

/** Write one archive row (no header); the row format of both
 * writeDseArchive and the evaluation journal. */
void writeDseArchiveRow(const dse::Evaluation &eval, std::ostream &os);

/**
 * Read an archive written by writeDseArchive. Design points are decoded
 * through the default DesignSpace; objective vectors are rebuilt from
 * the stored metrics.
 */
std::vector<dse::Evaluation> readDseArchive(std::istream &is);

/**
 * Non-fatal readDseArchive: parse until the first malformed line
 * (torn final record, ragged row, bad number, unknown fidelity),
 * reporting it in @p diag and returning the evaluations before it.
 */
std::vector<dse::Evaluation> tryReadDseArchive(std::istream &is,
                                               ParseDiag &diag);

} // namespace autopilot::io

#endif // AUTOPILOT_IO_PERSISTENCE_H
