/**
 * @file
 * CSV persistence for the two expensive artifacts of an AutoPilot run:
 * the Phase 1 policy database and the Phase 2 DSE archive. The paper's
 * three-phase split exists precisely so these can be computed once and
 * reused ("Phase 1 and 2 take the most time; Phase 3 is negligible");
 * persistence makes the reuse survive process boundaries.
 */

#ifndef AUTOPILOT_IO_PERSISTENCE_H
#define AUTOPILOT_IO_PERSISTENCE_H

#include <istream>
#include <ostream>
#include <vector>

#include "airlearning/database.h"
#include "dse/evaluator.h"

namespace autopilot::io
{

/** Write the policy database as CSV. */
void writePolicyDatabase(const airlearning::PolicyDatabase &db,
                         std::ostream &os);

/** Read a policy database written by writePolicyDatabase (fatal on
 * malformed input). */
airlearning::PolicyDatabase readPolicyDatabase(std::istream &is);

/** Write a Phase 2 evaluation archive as CSV. */
void writeDseArchive(const std::vector<dse::Evaluation> &archive,
                     std::ostream &os);

/**
 * Read an archive written by writeDseArchive. Design points are decoded
 * through the default DesignSpace; objective vectors are rebuilt from
 * the stored metrics.
 */
std::vector<dse::Evaluation> readDseArchive(std::istream &is);

} // namespace autopilot::io

#endif // AUTOPILOT_IO_PERSISTENCE_H
