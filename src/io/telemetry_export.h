/**
 * @file
 * File export for the run-telemetry subsystem: save the process-wide
 * util::Telemetry state as a Chrome/Perfetto trace JSON plus a flat
 * metrics CSV, so a run can be inspected offline (load the trace in
 * https://ui.perfetto.dev, feed the CSV to any table tool).
 */

#ifndef AUTOPILOT_IO_TELEMETRY_EXPORT_H
#define AUTOPILOT_IO_TELEMETRY_EXPORT_H

#include <string>

namespace autopilot::io
{

/**
 * Write the global trace log as Chrome trace-event JSON to @p path
 * (fatal when the file cannot be opened).
 */
void saveTraceJson(const std::string &path);

/**
 * Write the global metrics registry as CSV (header
 * `name,kind,count,sum,min,max,value`) to @p path (fatal when the file
 * cannot be opened).
 */
void saveMetricsCsv(const std::string &path);

/** Save both artifacts of one telemetry-enabled run. */
void saveTelemetry(const std::string &trace_path,
                   const std::string &metrics_path);

} // namespace autopilot::io

#endif // AUTOPILOT_IO_TELEMETRY_EXPORT_H
