#include "io/persistence.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "io/csv.h"
#include "util/logging.h"

namespace autopilot::io
{

void
syncFileToDisk(const std::string &path)
{
#if defined(__unix__) || defined(__APPLE__)
    const int fd = ::open(path.c_str(), O_RDONLY);
    util::fatalIf(fd < 0,
                  "syncFileToDisk: cannot open '" + path + "'");
    const int rc = ::fsync(fd);
    ::close(fd);
    util::fatalIf(rc != 0, "syncFileToDisk: fsync failed on '" + path +
                               "'");
#else
    (void)path;
#endif
}

void
syncParentDir(const std::string &path)
{
#if defined(__unix__) || defined(__APPLE__)
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        parent = ".";
    const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
    util::fatalIf(fd < 0, "syncParentDir: cannot open directory '" +
                              parent.string() + "'");
    const int rc = ::fsync(fd);
    ::close(fd);
    util::fatalIf(rc != 0, "syncParentDir: fsync failed on '" +
                               parent.string() + "'");
#else
    (void)path;
#endif
}

void
writeFileAtomic(const std::string &path, const std::string &contents)
{
    const std::string tmpPath = path + ".tmp";
    {
        std::ofstream out(tmpPath, std::ios::trunc | std::ios::binary);
        util::fatalIf(!out, "writeFileAtomic: cannot open '" + tmpPath +
                                "' for writing");
        out << contents;
        out.flush();
        util::fatalIf(!out, "writeFileAtomic: write failed on '" +
                                tmpPath + "'");
    }
    // fsync BEFORE the rename: renaming an unsynced file can commit
    // the name change while the data is still only in the page cache,
    // so a power loss yields a duly-named empty/torn file.
    syncFileToDisk(tmpPath);
    util::fatalIf(std::rename(tmpPath.c_str(), path.c_str()) != 0,
                  "writeFileAtomic: cannot rename '" + tmpPath +
                      "' to '" + path + "'");
    syncParentDir(path);
}

namespace
{

const std::vector<std::string> databaseHeader = {
    "policy_id",    "layers",       "filters",
    "density",      "success_rate", "model_params",
    "model_macs",   "training_steps", "converged"};

/// Encoding columns of every archive layout: the seven legacy choice
/// indices. The 8th design dimension (precision) is archived as a
/// trailing LABEL column instead of an index - an index would be
/// ambiguous across precision sets ({1,2} and {1,2,4} number fp16
/// differently), and keeping the encoding columns fixed at seven is
/// what lets pre-precision journals replay byte-identically.
constexpr std::size_t encodedColumns = 7;

/// Precision-axis archive layout: the 17-column layout plus a trailing
/// operand-precision label ("int8"/"fp16"/"fp32"). Written only when
/// the precision axis is searchable; single-precision runs keep the
/// 17-column layout below so their archives stay byte-identical.
const std::vector<std::string> precisionArchiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx",   "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",     "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",    "fps",
    "backend",     "fidelity",    "contention_bps", "scenario",
    "dram",        "precision"};

const std::vector<std::string> archiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx",   "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",     "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",    "fps",
    "backend",     "fidelity",    "contention_bps", "scenario",
    "dram"};

/// Pre-dram archive layout: scenario but no bank-level channel column;
/// such rows load with the default "-" (no bank simulation) tag.
const std::vector<std::string> legacyScenarioArchiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx",   "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",     "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",    "fps",
    "backend",     "fidelity",    "contention_bps", "scenario"};

/// Pre-airframe archive layout: contention but no mission-mix scenario
/// column; such rows load with the default "-" (legacy single-scenario
/// workload) tag.
const std::vector<std::string> legacyContentionArchiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx",   "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",     "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",    "fps",
    "backend",     "fidelity",    "contention_bps"};

/// Pre-contention-backend archive layout: backend/fidelity but no
/// contention column; such rows load with zero background traffic.
const std::vector<std::string> legacyBackendArchiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx", "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",   "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",  "fps",
    "backend",     "fidelity"};

/// Pre-backend-layer archive layout: no backend/fidelity columns.
/// Still readable; such rows load as analytical-fidelity evaluations.
const std::vector<std::string> legacyArchiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx", "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",   "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",  "fps"};

bool
densityFromName(const std::string &name,
                airlearning::ObstacleDensity &density)
{
    for (airlearning::ObstacleDensity candidate :
         airlearning::allDensities()) {
        if (airlearning::densityName(candidate) == name) {
            density = candidate;
            return true;
        }
    }
    return false;
}

std::string
formatDouble(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

/**
 * Stream lines with CRLF tolerance and 1-based line accounting - the
 * shared front end of every tolerant reader, so parse diagnostics can
 * name the exact line a record was torn on.
 */
class LineReader
{
  public:
    explicit LineReader(std::istream &is) : in(is) {}

    bool
    next(std::string &line)
    {
        if (!std::getline(in, line))
            return false;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        ++lineNumber;
        return true;
    }

    std::size_t line() const { return lineNumber; }

  private:
    std::istream &in;
    std::size_t lineNumber = 0;
};

/** Fail @p diag at the reader's current line with @p reason. */
void
failAt(ParseDiag &diag, const LineReader &reader,
       const std::string &reason)
{
    diag.ok = false;
    diag.line = reader.line();
    diag.reason = reason;
}

/**
 * Decode one archive row (already width-checked against its header's
 * column set, so row.size() distinguishes the three layouts).
 * Returns the reason on a malformed field, empty on success.
 */
std::string
tryDecodeArchiveRow(const std::vector<std::string> &row,
                    const dse::DesignSpace &space, dse::Evaluation &eval)
{
    // Seven index columns in every layout; the precision dimension
    // arrives (if at all) as the trailing label column handled below.
    eval.encoding.fill(0);
    for (std::size_t d = 0; d < encodedColumns; ++d) {
        const std::string reason = tryParseInt(row[d], eval.encoding[d]);
        if (!reason.empty())
            return reason;
    }
    std::string reason = tryParseDouble(row[7], eval.successRate);
    if (reason.empty())
        reason = tryParseDouble(row[8], eval.npuPowerW);
    if (reason.empty())
        reason = tryParseDouble(row[9], eval.socPowerW);
    if (reason.empty())
        reason = tryParseDouble(row[10], eval.latencyMs);
    if (reason.empty())
        reason = tryParseDouble(row[11], eval.fps);
    if (!reason.empty())
        return reason;
    if (row.size() > legacyArchiveHeader.size()) {
        eval.backend = row[12];
        if (!dse::tryFidelityFromName(row[13], eval.fidelity))
            return "unknown fidelity '" + row[13] + "'";
    }
    if (row.size() > legacyBackendArchiveHeader.size()) {
        reason = tryParseDouble(row[14], eval.contentionBytesPerSec);
        if (!reason.empty())
            return reason;
        if (!(eval.contentionBytesPerSec >= 0.0) ||
            !std::isfinite(eval.contentionBytesPerSec))
            return "contention bytes/s must be finite and >= 0";
    }
    if (row.size() > legacyContentionArchiveHeader.size()) {
        if (row[15].empty())
            return "empty scenario tag";
        eval.scenario = row[15];
    }
    if (row.size() > legacyScenarioArchiveHeader.size()) {
        if (row[16].empty())
            return "empty dram channel tag";
        eval.dramKey = row[16];
    }
    eval.point = space.decode(eval.encoding);
    if (row.size() > archiveHeader.size()) {
        // Precision label column: decode through the default space
        // first (index 0 = int8), then override the operand width from
        // the archived label - the label, not an index, is what stays
        // unambiguous across precision sets.
        int width = 0;
        if (!systolic::precisionFromName(row[17], width))
            return "unknown precision '" + row[17] + "'";
        eval.precision = row[17];
        eval.point.accel.bytesPerElement = width;
    }
    eval.objectives = {1.0 - eval.successRate, eval.socPowerW,
                       eval.latencyMs};
    return {};
}

} // namespace

void
writePolicyDatabase(const airlearning::PolicyDatabase &db,
                    std::ostream &os)
{
    for (std::size_t i = 0; i < databaseHeader.size(); ++i)
        os << databaseHeader[i]
           << (i + 1 == databaseHeader.size() ? "\n" : ",");
    for (const airlearning::PolicyRecord &record : db.all()) {
        os << record.policyId << ',' << record.params.numConvLayers
           << ',' << record.params.numFilters << ','
           << airlearning::densityName(record.density) << ','
           << formatDouble(record.successRate) << ','
           << record.modelParams << ',' << record.modelMacs << ','
           << record.trainingSteps << ','
           << (record.converged ? 1 : 0) << '\n';
    }
}

airlearning::PolicyDatabase
tryReadPolicyDatabase(std::istream &is, ParseDiag &diag)
{
    airlearning::PolicyDatabase db;
    LineReader reader(is);
    std::string line;
    if (!reader.next(line)) {
        diag = {false, 1, "empty stream"};
        return db;
    }
    if (splitCsvLine(line) != databaseHeader) {
        failAt(diag, reader, "unexpected header '" + line + "'");
        return db;
    }
    while (reader.next(line)) {
        if (line.empty())
            continue;
        const std::vector<std::string> row = splitCsvLine(line);
        if (row.size() != databaseHeader.size()) {
            failAt(diag, reader, "ragged row '" + line + "'");
            return db;
        }
        airlearning::PolicyRecord record;
        record.policyId = row[0];
        std::string reason =
            tryParseInt(row[1], record.params.numConvLayers);
        if (reason.empty())
            reason = tryParseInt(row[2], record.params.numFilters);
        if (reason.empty() && !densityFromName(row[3], record.density))
            reason = "unknown density '" + row[3] + "'";
        if (reason.empty())
            reason = tryParseDouble(row[4], record.successRate);
        if (reason.empty() && (record.successRate < 0.0 ||
                               record.successRate > 1.0))
            reason = "success rate outside [0, 1]";
        long long parsed64 = 0;
        if (reason.empty() &&
            (reason = tryParseInt64(row[5], parsed64)).empty())
            record.modelParams = parsed64;
        if (reason.empty() &&
            (reason = tryParseInt64(row[6], parsed64)).empty())
            record.modelMacs = parsed64;
        if (reason.empty() &&
            (reason = tryParseInt64(row[7], parsed64)).empty())
            record.trainingSteps = parsed64;
        int converged = 0;
        if (reason.empty())
            reason = tryParseInt(row[8], converged);
        if (!reason.empty()) {
            failAt(diag, reader, reason);
            return db;
        }
        record.converged = converged != 0;
        db.upsert(record);
    }
    return db;
}

airlearning::PolicyDatabase
readPolicyDatabase(std::istream &is)
{
    ParseDiag diag;
    airlearning::PolicyDatabase db = tryReadPolicyDatabase(is, diag);
    util::fatalIf(!diag.ok, "readPolicyDatabase: " + diag.reason +
                                " at line " +
                                std::to_string(diag.line));
    return db;
}

const std::vector<std::string> &
dseArchiveHeader()
{
    return archiveHeader;
}

const std::vector<std::vector<std::string>> &
dseArchiveAcceptedHeaders()
{
    static const std::vector<std::vector<std::string>> accepted = {
        precisionArchiveHeader, archiveHeader,
        legacyScenarioArchiveHeader, legacyContentionArchiveHeader,
        legacyBackendArchiveHeader, legacyArchiveHeader};
    return accepted;
}

const std::vector<std::string> &
dsePrecisionArchiveHeader()
{
    return precisionArchiveHeader;
}

void
writeDseArchiveRow(const dse::Evaluation &eval, std::ostream &os)
{
    // Seven index columns in every layout (see encodedColumns); the
    // precision dimension is the trailing label column, present only on
    // precision-labelled rows so single-precision archives stay
    // byte-identical to the pre-precision format.
    for (std::size_t d = 0; d < encodedColumns; ++d)
        os << eval.encoding[d] << ',';
    os << formatDouble(eval.successRate) << ','
       << formatDouble(eval.npuPowerW) << ','
       << formatDouble(eval.socPowerW) << ','
       << formatDouble(eval.latencyMs) << ','
       << formatDouble(eval.fps) << ',' << eval.backend << ','
       << dse::fidelityName(eval.fidelity) << ','
       << formatDouble(eval.contentionBytesPerSec) << ','
       << eval.scenario << ',' << eval.dramKey;
    if (eval.precision != "-")
        os << ',' << eval.precision;
    os << '\n';
}

void
writeDseArchive(const std::vector<dse::Evaluation> &archive,
                std::ostream &os)
{
    // Precision-labelled rows select the wider layout; a run labels
    // either every row or none (the evaluator stamps labels only when
    // the axis is searchable), so checking the first row suffices.
    const bool precisionColumn =
        !archive.empty() && archive.front().precision != "-";
    const std::vector<std::string> &header =
        precisionColumn ? precisionArchiveHeader : archiveHeader;
    for (std::size_t i = 0; i < header.size(); ++i)
        os << header[i] << (i + 1 == header.size() ? "\n" : ",");
    for (const dse::Evaluation &eval : archive)
        writeDseArchiveRow(eval, os);
}

std::vector<dse::Evaluation>
tryReadDseArchive(std::istream &is, ParseDiag &diag)
{
    const dse::DesignSpace space;
    std::vector<dse::Evaluation> archive;
    LineReader reader(is);
    std::string line;
    if (!reader.next(line)) {
        diag = {false, 1, "empty stream"};
        return archive;
    }
    const std::vector<std::string> header = splitCsvLine(line);
    std::size_t width = archiveHeader.size();
    if (header == legacyArchiveHeader)
        width = legacyArchiveHeader.size();
    else if (header == legacyBackendArchiveHeader)
        width = legacyBackendArchiveHeader.size();
    else if (header == legacyContentionArchiveHeader)
        width = legacyContentionArchiveHeader.size();
    else if (header == legacyScenarioArchiveHeader)
        width = legacyScenarioArchiveHeader.size();
    else if (header == precisionArchiveHeader)
        width = precisionArchiveHeader.size();
    else if (header != archiveHeader) {
        failAt(diag, reader, "unexpected header '" + line + "'");
        return archive;
    }
    while (reader.next(line)) {
        if (line.empty())
            continue;
        const std::vector<std::string> row = splitCsvLine(line);
        if (row.size() != width) {
            failAt(diag, reader, "ragged row '" + line + "'");
            return archive;
        }
        dse::Evaluation eval;
        const std::string reason =
            tryDecodeArchiveRow(row, space, eval);
        if (!reason.empty()) {
            failAt(diag, reader, reason);
            return archive;
        }
        archive.push_back(std::move(eval));
    }
    return archive;
}

std::vector<dse::Evaluation>
readDseArchive(std::istream &is)
{
    ParseDiag diag;
    std::vector<dse::Evaluation> archive = tryReadDseArchive(is, diag);
    util::fatalIf(!diag.ok, "readDseArchive: " + diag.reason +
                                " at line " + std::to_string(diag.line));
    return archive;
}

} // namespace autopilot::io
