#include "io/persistence.h"

#include <sstream>

#include "io/csv.h"
#include "util/logging.h"

namespace autopilot::io
{

namespace
{

const std::vector<std::string> databaseHeader = {
    "policy_id",    "layers",       "filters",
    "density",      "success_rate", "model_params",
    "model_macs",   "training_steps", "converged"};

const std::vector<std::string> archiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx", "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",   "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",  "fps",
    "backend",     "fidelity"};

/// Pre-backend-layer archive layout: no backend/fidelity columns.
/// Still readable; such rows load as analytical-fidelity evaluations.
const std::vector<std::string> legacyArchiveHeader = {
    "layers_idx",  "filters_idx", "pe_rows_idx", "pe_cols_idx",
    "ifmap_idx",   "filter_idx",  "ofmap_idx",   "success_rate",
    "npu_power_w", "soc_power_w", "latency_ms",  "fps"};

airlearning::ObstacleDensity
densityFromName(const std::string &name)
{
    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        if (airlearning::densityName(density) == name)
            return density;
    }
    util::fatal("densityFromName: unknown density '" + name + "'");
}

std::string
formatDouble(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

} // namespace

void
writePolicyDatabase(const airlearning::PolicyDatabase &db,
                    std::ostream &os)
{
    for (std::size_t i = 0; i < databaseHeader.size(); ++i)
        os << databaseHeader[i]
           << (i + 1 == databaseHeader.size() ? "\n" : ",");
    for (const airlearning::PolicyRecord &record : db.all()) {
        os << record.policyId << ',' << record.params.numConvLayers
           << ',' << record.params.numFilters << ','
           << airlearning::densityName(record.density) << ','
           << formatDouble(record.successRate) << ','
           << record.modelParams << ',' << record.modelMacs << ','
           << record.trainingSteps << ','
           << (record.converged ? 1 : 0) << '\n';
    }
}

airlearning::PolicyDatabase
readPolicyDatabase(std::istream &is)
{
    airlearning::PolicyDatabase db;
    for (const auto &row : readCsv(is, databaseHeader)) {
        airlearning::PolicyRecord record;
        record.policyId = row[0];
        record.params.numConvLayers = parseInt(row[1]);
        record.params.numFilters = parseInt(row[2]);
        record.density = densityFromName(row[3]);
        record.successRate = parseDouble(row[4]);
        util::fatalIf(record.successRate < 0.0 ||
                          record.successRate > 1.0,
                      "readPolicyDatabase: success rate outside [0, 1]");
        record.modelParams = parseInt64(row[5]);
        record.modelMacs = parseInt64(row[6]);
        record.trainingSteps = parseInt64(row[7]);
        record.converged = parseInt(row[8]) != 0;
        db.upsert(record);
    }
    return db;
}

void
writeDseArchive(const std::vector<dse::Evaluation> &archive,
                std::ostream &os)
{
    for (std::size_t i = 0; i < archiveHeader.size(); ++i)
        os << archiveHeader[i]
           << (i + 1 == archiveHeader.size() ? "\n" : ",");
    for (const dse::Evaluation &eval : archive) {
        for (int index : eval.encoding)
            os << index << ',';
        os << formatDouble(eval.successRate) << ','
           << formatDouble(eval.npuPowerW) << ','
           << formatDouble(eval.socPowerW) << ','
           << formatDouble(eval.latencyMs) << ','
           << formatDouble(eval.fps) << ',' << eval.backend << ','
           << dse::fidelityName(eval.fidelity) << '\n';
    }
}

std::vector<dse::Evaluation>
readDseArchive(std::istream &is)
{
    const dse::DesignSpace space;
    std::vector<dse::Evaluation> archive;
    std::size_t matched = 0;
    const auto rows =
        readCsvAny(is, {archiveHeader, legacyArchiveHeader}, matched);
    const bool legacy = matched == 1;
    for (const auto &row : rows) {
        dse::Evaluation eval;
        for (std::size_t d = 0; d < dse::designDims; ++d)
            eval.encoding[d] = parseInt(row[d]);
        eval.point = space.decode(eval.encoding);
        eval.successRate = parseDouble(row[7]);
        eval.npuPowerW = parseDouble(row[8]);
        eval.socPowerW = parseDouble(row[9]);
        eval.latencyMs = parseDouble(row[10]);
        eval.fps = parseDouble(row[11]);
        if (!legacy) {
            eval.backend = row[12];
            eval.fidelity = dse::fidelityFromName(row[13]);
        }
        eval.objectives = {1.0 - eval.successRate, eval.socPowerW,
                           eval.latencyMs};
        archive.push_back(std::move(eval));
    }
    return archive;
}

} // namespace autopilot::io
