#include "dram/channel.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace autopilot::dram
{

namespace
{

/// Deterministic 64-bit LCG (Knuth MMIX constants); the top 53 bits
/// feed both the jump decision and the jump target, so a stream's
/// address sequence is a pure function of its seed.
std::uint64_t
lcgNext(std::uint64_t state)
{
    return state * 6364136223846793005ULL + 1442695040888963407ULL;
}

double
lcgUniform(std::uint64_t state)
{
    return static_cast<double>(state >> 11) * 0x1.0p-53;
}

/// Burst-depth of the FIFO between a traffic source and the channel.
/// A source whose nominal rate exceeds its service rate (e.g. a pure
/// random-access stream on a busy channel) stalls once the FIFO fills -
/// backpressure, like any real AXI master - so its backlog is bounded
/// and the simulation stays linear in simulated time instead of
/// accumulating an ever-growing queue.
constexpr double kSourceFifoBursts = 8.0;

} // namespace

ChannelTimeline::ChannelTimeline(const DramSpec &spec,
                                 const systolic::AcceleratorConfig &config)
    : spec_(spec), bytesPerCycle(config.dramBytesPerCycle),
      banks(spec.timing)
{
    spec_.validate();
    util::fatalIf(bytesPerCycle <= 0,
                  "ChannelTimeline: dramBytesPerCycle must be >= 1");

    // The config-dependent half of the degenerate-parameter diagnosis:
    // a refresh interval that cannot cover even one worst-case burst at
    // this channel width means the channel refreshes forever instead of
    // transferring - diagnose it, never simulate it.
    const DramTiming &t = spec_.timing;
    const std::int64_t worstBurst =
        t.tRpCycles + t.tRcdCycles + t.tCasCycles +
        (t.burstBytes + bytesPerCycle - 1) / bytesPerCycle;
    if (t.tRefiCycles <= t.tRfcCycles + worstBurst) {
        std::ostringstream what;
        what << "ChannelTimeline: refresh interval tREFI ("
             << t.tRefiCycles
             << " cycles) is no longer than one refresh stall plus one "
                "worst-case burst ("
             << t.tRfcCycles << " + " << worstBurst
             << " cycles) - the channel can never make progress between "
                "refreshes; raise tREFI or shrink the burst";
        util::fatal(what.str());
    }

    const double cyclesPerSec = config.clockGhz * 1e9;
    for (const TrafficGeneratorSpec &generator : spec_.generators) {
        if (generator.bytesPerSec <= 0.0)
            continue; // Inert stream: injects nothing.
        GeneratorState state;
        state.spec = generator;
        state.interArrivalCycles =
            static_cast<double>(spec_.timing.burstBytes) * cyclesPerSec /
            generator.bytesPerSec;
        state.nextArrival = state.interArrivalCycles;
        state.rng = generator.seed;
        state.statsIndex = stats_.generators.size();
        stats_.generators.push_back({generator.name, 0, 0});
        generators.push_back(std::move(state));
    }
}

ChannelTimeline::GeneratorState *
ChannelTimeline::earliestGenerator()
{
    GeneratorState *best = nullptr;
    for (GeneratorState &candidate : generators) {
        if (best == nullptr || candidate.nextArrival < best->nextArrival)
            best = &candidate;
    }
    return best;
}

void
ChannelTimeline::serviceGenerator(GeneratorState &generator)
{
    const TrafficGeneratorSpec &gen = generator.spec;
    const std::int64_t burst = spec_.timing.burstBytes;

    if (gen.randomness > 0.0) {
        generator.rng = lcgNext(generator.rng);
        if (lcgUniform(generator.rng) < gen.randomness) {
            // Jump to a random burst-aligned slot; the stream then
            // continues linearly from there until the next jump.
            generator.rng = lcgNext(generator.rng);
            const std::uint64_t slots = static_cast<std::uint64_t>(
                gen.addressRange / burst);
            generator.offset = static_cast<std::int64_t>(
                (generator.rng >> 11) % slots) * burst;
        }
    }
    const std::int64_t addr =
        gen.addressBase + generator.offset % gen.addressRange;
    generator.offset += gen.strideBytes;

    const std::int64_t arrival = static_cast<std::int64_t>(
        std::ceil(generator.nextArrival));
    const std::int64_t start = std::max(channelFree, arrival);
    channelFree = banks.service(addr, burst, start, bytesPerCycle,
                                stats_);
    generator.nextArrival += generator.interArrivalCycles;
    // Backpressure: the source cannot run more than one FIFO's worth of
    // bursts behind the channel. A saturated stream is throttled to its
    // service rate; an unsaturated one never hits the floor.
    const double fifoFloor =
        static_cast<double>(channelFree) -
        kSourceFifoBursts * generator.interArrivalCycles;
    if (generator.nextArrival < fifoFloor)
        generator.nextArrival = fifoFloor;

    ++stats_.backgroundRequests;
    stats_.backgroundBytes += burst;
    GeneratorStats &slice = stats_.generators[generator.statsIndex];
    ++slice.requests;
    slice.bytes += burst;
}

std::int64_t
ChannelTimeline::transfer(std::int64_t earliestStart, std::int64_t bytes,
                          bool write)
{
    if (bytes <= 0)
        return earliestStart;

    std::int64_t remaining = bytes;
    std::int64_t done = earliestStart;
    std::int64_t &npuAddr = write ? npuWriteAddr : npuReadAddr;
    const std::int64_t burstBytes = spec_.timing.burstBytes;
    const double npuArrival = static_cast<double>(earliestStart);

    while (remaining > 0) {
        // Strict arrival order: background requests that arrived no
        // later than this transfer go first (fixed priority on ties).
        // Each service advances that generator's next arrival, so the
        // backlog drains in bounded steps and the NPU never starves.
        GeneratorState *front = earliestGenerator();
        if (front != nullptr && front->nextArrival <= npuArrival) {
            serviceGenerator(*front);
            continue;
        }

        const std::int64_t burst = std::min(remaining, burstBytes);
        const std::int64_t start = std::max(channelFree, earliestStart);
        done = banks.service(npuAddr, burst, start, bytesPerCycle,
                             stats_);
        channelFree = done;
        npuAddr += burst;
        remaining -= burst;
        ++stats_.npuRequests;
        stats_.npuBytes += burst;
    }
    return done;
}

} // namespace autopilot::dram
