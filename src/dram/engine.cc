#include "dram/engine.h"

#include <algorithm>

#include "util/telemetry.h"

namespace autopilot::dram
{

DramCycleEngine::DramCycleEngine(const systolic::AcceleratorConfig &config,
                                 const DramSpec &spec)
    : cfg(config), dramSpec(spec), pureCycle(config)
{
    cfg.validate();
    dramSpec.validate();
    if (dramSpec.enabled()) {
        // Surface config-dependent degeneracies (refresh interval vs
        // burst time at this channel width) at construction, not in the
        // middle of a batch.
        ChannelTimeline probe(dramSpec, cfg);
    }
}

systolic::LayerResult
DramCycleEngine::runLayer(const nn::Layer &layer) const
{
    if (!dramSpec.enabled())
        return pureCycle.runLayer(layer);

    util::Telemetry &telemetry = util::Telemetry::instance();
    util::ScopedTimer sim_timer(
        telemetry.enabled()
            ? &telemetry.metrics().histogram("dram.layer_sim_s")
            : nullptr);

    const systolic::FoldSchedule schedule =
        systolic::scheduleGemm(layer.gemm(), cfg);
    const std::int64_t fold_count = schedule.foldCount();

    // Fresh per-layer channel: generator phase, bank rows and refresh
    // state reset so layers are independent of simulation order.
    ChannelTimeline channel(dramSpec, cfg);

    // Same fold timeline as CycleEngine; only the transfer completions
    // differ (simulated per burst instead of bytes / bandwidth).
    std::int64_t dram_free = 0;
    std::int64_t compute_done = 0;
    std::int64_t compute_done_prev = 0;
    std::int64_t compute_busy = 0;
    std::int64_t last_writeback_done = 0;

    for (std::int64_t f = 0; f < fold_count; ++f) {
        const std::int64_t fetch_bytes =
            systolic::foldFetchBytes(layer, schedule, cfg, f);
        const std::int64_t wb_bytes =
            systolic::foldWritebackBytes(layer, schedule, cfg, f);

        const std::int64_t fetch_start =
            std::max(dram_free, compute_done_prev);
        const std::int64_t fetch_done =
            channel.transfer(fetch_start, fetch_bytes, false);
        dram_free = fetch_done;

        const std::int64_t fold_cycles =
            schedule.folds[static_cast<std::size_t>(f)].cycles;
        const std::int64_t compute_start =
            std::max(compute_done, fetch_done);
        compute_done_prev = compute_done;
        compute_done = compute_start + fold_cycles;
        compute_busy += fold_cycles;

        if (wb_bytes > 0) {
            const std::int64_t wb_start =
                std::max(dram_free, compute_done);
            last_writeback_done =
                channel.transfer(wb_start, wb_bytes, true);
            dram_free = last_writeback_done;
        }
    }

    systolic::LayerResult result;
    result.layerName = layer.name;
    result.gemm = layer.gemm();
    result.rowFolds = schedule.rowFolds;
    result.colFolds = schedule.colFolds;
    result.computeCycles = compute_busy;
    result.traffic = systolic::computeTraffic(layer, schedule, cfg);
    result.totalCycles = std::max(compute_done, last_writeback_done);
    result.stallCycles = result.totalCycles - result.computeCycles;

    runStats_.accumulate(channel.stats());

    if (telemetry.enabled()) {
        telemetry.metrics().counter("dram.layers").add();
        telemetry.metrics()
            .counter("dram.cycles")
            .add(static_cast<std::uint64_t>(result.totalCycles));
    }
    return result;
}

} // namespace autopilot::dram
