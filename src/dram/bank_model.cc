#include "dram/bank_model.h"

#include "util/logging.h"

namespace autopilot::dram
{

void
ChannelStats::accumulate(const ChannelStats &other)
{
    rowHits += other.rowHits;
    rowMisses += other.rowMisses;
    rowConflicts += other.rowConflicts;
    activates += other.activates;
    precharges += other.precharges;
    refreshes += other.refreshes;
    npuRequests += other.npuRequests;
    npuBytes += other.npuBytes;
    backgroundRequests += other.backgroundRequests;
    backgroundBytes += other.backgroundBytes;
    if (generators.size() < other.generators.size())
        generators.resize(other.generators.size());
    for (std::size_t g = 0; g < other.generators.size(); ++g) {
        generators[g].name = other.generators[g].name;
        generators[g].requests += other.generators[g].requests;
        generators[g].bytes += other.generators[g].bytes;
    }
}

BankModel::BankModel(const DramTiming &config)
    : timing(config),
      openRow(static_cast<std::size_t>(config.banks), -1),
      nextRefresh(config.tRefiCycles)
{
    util::fatalIf(timing.banks <= 0 || timing.rowBytes <= 0 ||
                      timing.tRefiCycles <= 0,
                  "BankModel: degenerate timing - validate the DramSpec "
                  "before simulating");
}

std::int64_t
BankModel::service(std::int64_t addr, std::int64_t bytes,
                   std::int64_t start, std::int64_t bytesPerCycle,
                   ChannelStats &stats)
{
    // Refresh is all-bank: catch up on every interval boundary the
    // channel slept through, close the rows, and push the request past
    // the stall when it lands inside one.
    while (start >= nextRefresh) {
        const std::int64_t stallEnd = nextRefresh + timing.tRfcCycles;
        for (std::int64_t &row : openRow)
            row = -1;
        ++stats.refreshes;
        if (start < stallEnd)
            start = stallEnd;
        nextRefresh += timing.tRefiCycles;
    }

    const std::size_t bank = static_cast<std::size_t>(
        (addr / timing.rowBytes) % timing.banks);
    const std::int64_t row = addr / (timing.rowBytes * timing.banks);

    std::int64_t latency = timing.tCasCycles;
    if (openRow[bank] == row) {
        ++stats.rowHits;
    } else if (openRow[bank] < 0) {
        ++stats.rowMisses;
        ++stats.activates;
        latency += timing.tRcdCycles;
    } else {
        ++stats.rowConflicts;
        ++stats.activates;
        ++stats.precharges;
        latency += timing.tRpCycles + timing.tRcdCycles;
    }
    if (timing.rowPolicy == RowPolicy::Open) {
        openRow[bank] = row;
    } else {
        openRow[bank] = -1; // Auto-precharge: the next access misses.
        ++stats.precharges;
    }

    const std::int64_t transfer =
        (bytes + bytesPerCycle - 1) / bytesPerCycle;
    return start + latency + transfer;
}

} // namespace autopilot::dram
