/**
 * @file
 * Per-bank row-buffer state machine with gem5-style command timing.
 *
 * Addresses map row:bank:column (consecutive rows of one stream land in
 * different banks, the interleaving every real controller uses):
 *
 *   column = addr % rowBytes
 *   bank   = (addr / rowBytes) % banks
 *   row    =  addr / (rowBytes * banks)
 *
 * Each access classifies against the target bank's open row:
 *
 *   hit      - row already open:              tCAS
 *   miss     - bank idle (no open row):       tRCD + tCAS   (+activate)
 *   conflict - different row open:      tRP + tRCD + tCAS   (+precharge,
 *                                                            +activate)
 *
 * plus the data-transfer cycles ceil(bytes / dramBytesPerCycle). Under
 * the Closed row policy every access auto-precharges, so every access
 * is a miss - the locality-blind baseline. Refresh closes all rows and
 * stalls the channel tRFC cycles every tREFI cycles.
 */

#ifndef AUTOPILOT_DRAM_BANK_MODEL_H
#define AUTOPILOT_DRAM_BANK_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/config.h"

namespace autopilot::dram
{

/** Per-generator slice of the channel statistics. */
struct GeneratorStats
{
    std::string name;
    std::int64_t requests = 0;
    std::int64_t bytes = 0;
};

/** Command and traffic counters accumulated by a channel timeline. */
struct ChannelStats
{
    std::int64_t rowHits = 0;
    std::int64_t rowMisses = 0;
    std::int64_t rowConflicts = 0;
    std::int64_t activates = 0;
    std::int64_t precharges = 0;
    std::int64_t refreshes = 0;
    std::int64_t npuRequests = 0;
    std::int64_t npuBytes = 0;
    std::int64_t backgroundRequests = 0;
    std::int64_t backgroundBytes = 0;
    /// One entry per generator, in spec order.
    std::vector<GeneratorStats> generators;

    /** All classified accesses (hits + misses + conflicts). */
    std::int64_t accesses() const
    {
        return rowHits + rowMisses + rowConflicts;
    }

    /** Row-buffer hit fraction; 0 when nothing was accessed. */
    double rowHitRate() const
    {
        const std::int64_t total = accesses();
        return total > 0
                   ? static_cast<double>(rowHits) /
                         static_cast<double>(total)
                   : 0.0;
    }

    /** Bytes moved over the channel by anyone. */
    std::int64_t totalBytes() const { return npuBytes + backgroundBytes; }

    /** Fold @p other into this (generators matched by index). */
    void accumulate(const ChannelStats &other);
};

/** Bank state machines + refresh for one channel. */
class BankModel
{
  public:
    /** @param timing Validated channel timing. */
    explicit BankModel(const DramTiming &timing);

    /**
     * Service one request of @p bytes at @p addr on an idle channel,
     * starting no earlier than cycle @p start; returns the completion
     * cycle and folds the command counts into @p stats. The caller (the
     * channel timeline) owns request ordering and channel occupancy;
     * this models only bank state and timing.
     */
    std::int64_t service(std::int64_t addr, std::int64_t bytes,
                         std::int64_t start, std::int64_t bytesPerCycle,
                         ChannelStats &stats);

  private:
    DramTiming timing;
    std::vector<std::int64_t> openRow; ///< Per bank; -1 = precharged.
    std::int64_t nextRefresh;
};

} // namespace autopilot::dram

#endif // AUTOPILOT_DRAM_BANK_MODEL_H
