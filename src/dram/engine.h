/**
 * @file
 * Cycle-stepped accelerator engine over the bank-level DRAM channel.
 *
 * Same fold timeline as systolic::CycleEngine - double-buffered
 * prefetch, writebacks behind the fetch stream - but fetch/writeback
 * completions come from a ChannelTimeline instead of a flat
 * bytes-over-bandwidth ceiling: every transfer is split into bursts,
 * classified per bank (row hit/miss/conflict, refresh) and interleaved
 * with the background generators' requests in deterministic arrival
 * order. With no generators configured the engine delegates each layer
 * to a plain CycleEngine, so a disabled DramSpec is bit-identical to
 * the pure-cycle path - the backward-compatibility contract every
 * sidecar in this codebase follows.
 */

#ifndef AUTOPILOT_DRAM_ENGINE_H
#define AUTOPILOT_DRAM_ENGINE_H

#include "dram/channel.h"
#include "dram/config.h"
#include "systolic/cycle_engine.h"
#include "systolic/engine.h"

namespace autopilot::dram
{

/** Bank-accurate reference engine (highest fidelity tier). */
class DramCycleEngine : public systolic::Engine
{
  public:
    /**
     * @param config Accelerator configuration (validated).
     * @param spec   Channel description (validated; fatal with the
     *               infeasibleReason diagnosis on degenerate timing).
     */
    DramCycleEngine(const systolic::AcceleratorConfig &config,
                    const DramSpec &spec);

    systolic::LayerResult runLayer(const nn::Layer &layer) const override;

    const systolic::AcceleratorConfig &config() const { return cfg; }
    const DramSpec &spec() const { return dramSpec; }

    /**
     * Command/traffic counters accumulated across every layer simulated
     * since construction (or the last resetRunStats()); generator state
     * itself is per layer - each runLayer() opens a fresh
     * ChannelTimeline, keeping layers independent and runs
     * order-insensitive.
     */
    const ChannelStats &runStats() const { return runStats_; }
    void resetRunStats() { runStats_ = {}; }

  private:
    systolic::AcceleratorConfig cfg;
    DramSpec dramSpec;
    /// The exact integer-ceiling path for a disabled spec.
    systolic::CycleEngine pureCycle;
    mutable ChannelStats runStats_;
};

} // namespace autopilot::dram

#endif // AUTOPILOT_DRAM_ENGINE_H
