/**
 * @file
 * Bank-level DRAM configuration: timing, row policy and programmable
 * traffic generators.
 *
 * The contention backend (systolic::ContentionProfile) derates one
 * aggregate bandwidth number; this layer describes the channel the way
 * a gem5-style memory model does - banks with row-buffer state, command
 * timing in NPU-clock cycles, refresh, and a set of background traffic
 * generators (camera linear-stride, host random-access) that share the
 * channel with the NPU's prefetch/writeback stream. A DramSpec is a
 * sidecar to AcceleratorConfig, exactly like ContentionProfile: the
 * design space stays untouched, the deployment scenario changes.
 *
 * Everything here is plain data with validation; the simulation lives
 * in bank_model.h / channel.h / engine.h.
 */

#ifndef AUTOPILOT_DRAM_CONFIG_H
#define AUTOPILOT_DRAM_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace autopilot::dram
{

/** Row-buffer management policy. */
enum class RowPolicy
{
    Open,   ///< Keep the row open after an access (locality pays off).
    Closed, ///< Auto-precharge after every access (no hits, no conflicts).
};

/** Stable lowercase label ("open", "closed"). */
std::string rowPolicyName(RowPolicy policy);

/** Inverse of rowPolicyName; returns false on an unknown label. */
bool rowPolicyFromName(const std::string &name, RowPolicy &policy);

/**
 * Channel timing in NPU-clock cycles. Defaults approximate an
 * LPDDR4-class part behind a 200 MHz NPU clock: single-digit command
 * latencies, a 7.8 us refresh interval (~1560 cycles) and a ~180 ns
 * refresh stall.
 */
struct DramTiming
{
    int banks = 8;                  ///< Independent bank state machines.
    std::int64_t rowBytes = 2048;   ///< Row-buffer (page) size.
    std::int64_t burstBytes = 64;   ///< Channel request granularity.
    std::int64_t tCasCycles = 4;    ///< Column access (row-buffer hit).
    std::int64_t tRcdCycles = 4;    ///< Activate-to-column delay.
    std::int64_t tRpCycles = 4;     ///< Precharge (row conflict) delay.
    std::int64_t tRefiCycles = 1560;///< Refresh command interval.
    std::int64_t tRfcCycles = 36;   ///< All-bank refresh stall.
    RowPolicy rowPolicy = RowPolicy::Open;

    bool operator==(const DramTiming &other) const = default;
};

/**
 * One programmable background stream. randomness selects the access
 * pattern continuously: 0.0 is a pure linear stride (camera/ISP frame
 * scan-out - high row locality), 1.0 jumps to a uniformly random
 * burst-aligned address on every request (host planner/logging traffic
 * - row conflicts), values between interleave the two (the
 * row-locality sweep knob in bench_engine_validation).
 */
struct TrafficGeneratorSpec
{
    /// CSV-safe label ([a-z0-9_-]) used in telemetry instrument names
    /// and trace spans.
    std::string name = "gen";
    /// Sustained injection rate; a stream at 0 is inert (not part of
    /// enabled()).
    double bytesPerSec = 0.0;
    /// Linear advance per request (>= 1); requests are burstBytes wide.
    std::int64_t strideBytes = 64;
    /// Probability in [0, 1] that a request jumps to a random address
    /// (and continues linearly from there until the next jump).
    double randomness = 0.0;
    /// Deterministic per-stream RNG seed for the random jumps.
    std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
    /// Address window the stream walks (wraps at base + range).
    std::int64_t addressBase = 0;
    std::int64_t addressRange = 64ll << 20;
    bool write = false; ///< Read vs write stream (stats only).

    bool operator==(const TrafficGeneratorSpec &other) const = default;
};

/**
 * The complete bank-level channel description a task runs under.
 *
 * An empty generator set means "NPU owns the channel": the dram engine
 * then takes the exact integer-ceiling cycle path (bit-identical to
 * systolic::CycleEngine) and the backend skips command-count power, so
 * a default-constructed DramSpec changes nothing anywhere - the same
 * backward-compatibility contract ContentionProfile and MissionMix
 * follow.
 */
struct DramSpec
{
    DramTiming timing;
    std::vector<TrafficGeneratorSpec> generators;

    /** True when any generator injects traffic. */
    bool enabled() const;

    /** Sum of the generators' injection rates, bytes per second. */
    double backgroundBytesPerSec() const;

    /**
     * Human-readable diagnosis of a degenerate parameter set (zero
     * banks, non-positive row/burst sizes or command latencies, a
     * refresh interval that never leaves the refresh stall, generator
     * rates/randomness out of range, ...). Empty when the spec is
     * simulable. The PR-8 infeasibleReason pattern: degenerate inputs
     * are diagnosed in words, never simulated into NaN or infinite
     * latency.
     */
    std::string infeasibleReason() const;

    /** Abort via util::fatal(infeasibleReason()) when degenerate. */
    void validate() const;

    /**
     * Compact CSV-safe archive tag: "-" when disabled, else e.g.
     * "b8o-1a2b3c4d" (banks, row-policy initial, 32-bit FNV of every
     * result-affecting field). Archived per evaluation so a journal
     * names the channel it was costed under.
     */
    std::string tag() const;

    /**
     * Canonical '|'-joined text of every result-affecting field;
     * folded into core::taskFingerprint() when enabled() so a journal
     * written under one channel never resumes under another.
     */
    std::string fingerprintText() const;

    bool operator==(const DramSpec &other) const = default;
};

/**
 * Parse "tCAS:tRCD:tRP" or "tCAS:tRCD:tRP:tREFI:tRFC" (cycles) into
 * @p timing, leaving other fields untouched. Returns false with a
 * reason in @p error on malformed text. Shared by the campaign_runner
 * --dram-timing flag and the service "dram_timing" submission key.
 */
bool parseDramTiming(const std::string &text, DramTiming &timing,
                     std::string &error);

/**
 * The paper's SoC sharing scenario as generators: a linear-stride
 * camera stream at @p cameraBytesPerSec plus a host stream at
 * @p hostBytesPerSec with the given randomness (1.0 = pure random
 * access). Streams at rate 0 are omitted, so (t, 0, 0) degenerates to
 * a disabled spec.
 */
DramSpec uavDramSpec(const DramTiming &timing, double cameraBytesPerSec,
                     double hostBytesPerSec, double hostRandomness = 1.0);

} // namespace autopilot::dram

#endif // AUTOPILOT_DRAM_CONFIG_H
