#include "dram/config.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace autopilot::dram
{

namespace
{

bool
safeGeneratorName(const std::string &name)
{
    if (name.empty() || name.size() > 32)
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::uint32_t
fnv32(const std::string &text)
{
    std::uint32_t hash = 0x811c9dc5u;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x01000193u;
    }
    return hash;
}

} // namespace

std::string
rowPolicyName(RowPolicy policy)
{
    switch (policy) {
      case RowPolicy::Open:   return "open";
      case RowPolicy::Closed: return "closed";
    }
    return "?";
}

bool
rowPolicyFromName(const std::string &name, RowPolicy &policy)
{
    if (name == "open")
        policy = RowPolicy::Open;
    else if (name == "closed")
        policy = RowPolicy::Closed;
    else
        return false;
    return true;
}

bool
DramSpec::enabled() const
{
    return backgroundBytesPerSec() > 0.0;
}

double
DramSpec::backgroundBytesPerSec() const
{
    double total = 0.0;
    for (const TrafficGeneratorSpec &generator : generators)
        total += generator.bytesPerSec;
    return total;
}

std::string
DramSpec::infeasibleReason() const
{
    std::ostringstream what;
    if (timing.banks <= 0) {
        what << "bank count must be >= 1 (got " << timing.banks
             << ") - a channel with no banks has nowhere to put a row";
        return what.str();
    }
    if (timing.rowBytes <= 0 || timing.burstBytes <= 0) {
        what << "row size (" << timing.rowBytes << " B) and burst size ("
             << timing.burstBytes << " B) must be positive";
        return what.str();
    }
    if (timing.burstBytes > timing.rowBytes) {
        what << "burst size " << timing.burstBytes
             << " B exceeds the row buffer (" << timing.rowBytes
             << " B) - a single request would span rows";
        return what.str();
    }
    if (timing.tCasCycles <= 0 || timing.tRcdCycles <= 0 ||
        timing.tRpCycles <= 0) {
        what << "command latencies must be positive (tCAS "
             << timing.tCasCycles << ", tRCD " << timing.tRcdCycles
             << ", tRP " << timing.tRpCycles
             << " cycles) - zero-latency commands collapse the row "
                "hit/miss/conflict distinction the model exists for";
        return what.str();
    }
    if (timing.tRefiCycles <= 0 || timing.tRfcCycles < 0) {
        what << "refresh interval tREFI (" << timing.tRefiCycles
             << ") must be positive and stall tRFC ("
             << timing.tRfcCycles << ") non-negative";
        return what.str();
    }
    if (timing.tRefiCycles <= timing.tRfcCycles) {
        what << "refresh interval tREFI (" << timing.tRefiCycles
             << " cycles) is no longer than the refresh stall tRFC ("
             << timing.tRfcCycles
             << " cycles) - the channel would spend all time refreshing "
                "and never make progress";
        return what.str();
    }
    for (const TrafficGeneratorSpec &generator : generators) {
        if (!safeGeneratorName(generator.name)) {
            what << "traffic-generator name '" << generator.name
                 << "' must be 1-32 chars of [a-z0-9_-]";
            return what.str();
        }
        if (!(generator.bytesPerSec >= 0.0) ||
            !std::isfinite(generator.bytesPerSec)) {
            what << "traffic generator '" << generator.name
                 << "' rate must be finite and >= 0";
            return what.str();
        }
        if (!(generator.randomness >= 0.0) ||
            !(generator.randomness <= 1.0)) {
            what << "traffic generator '" << generator.name
                 << "' randomness must be in [0, 1]";
            return what.str();
        }
        if (generator.strideBytes <= 0) {
            what << "traffic generator '" << generator.name
                 << "' stride must be >= 1 byte";
            return what.str();
        }
        if (generator.addressBase < 0 ||
            generator.addressRange < timing.burstBytes) {
            what << "traffic generator '" << generator.name
                 << "' address window must be non-negative and at "
                    "least one burst wide";
            return what.str();
        }
    }
    return {};
}

void
DramSpec::validate() const
{
    const std::string reason = infeasibleReason();
    util::fatalIf(!reason.empty(), "DramSpec: " + reason);
}

std::string
DramSpec::fingerprintText() const
{
    std::ostringstream key;
    key.precision(17);
    key << timing.banks << '|' << timing.rowBytes << '|'
        << timing.burstBytes << '|' << timing.tCasCycles << '|'
        << timing.tRcdCycles << '|' << timing.tRpCycles << '|'
        << timing.tRefiCycles << '|' << timing.tRfcCycles << '|'
        << rowPolicyName(timing.rowPolicy);
    for (const TrafficGeneratorSpec &generator : generators) {
        key << "|gen|" << generator.name << '|' << generator.bytesPerSec
            << '|' << generator.strideBytes << '|'
            << generator.randomness << '|' << generator.seed << '|'
            << generator.addressBase << '|' << generator.addressRange
            << '|' << (generator.write ? 1 : 0);
    }
    return key.str();
}

std::string
DramSpec::tag() const
{
    if (!enabled())
        return "-";
    std::ostringstream os;
    os << 'b' << timing.banks
       << (timing.rowPolicy == RowPolicy::Open ? 'o' : 'c') << '-'
       << std::hex << fnv32(fingerprintText());
    return os.str();
}

bool
parseDramTiming(const std::string &text, DramTiming &timing,
                std::string &error)
{
    std::vector<std::int64_t> fields;
    std::istringstream in(text);
    std::string token;
    while (std::getline(in, token, ':')) {
        std::int64_t value = 0;
        std::size_t consumed = 0;
        try {
            value = std::stoll(token, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
        if (consumed != token.size() || token.empty()) {
            error = "bad cycle count '" + token + "' in '" + text + "'";
            return false;
        }
        fields.push_back(value);
    }
    if (fields.size() != 3 && fields.size() != 5) {
        error = "want tCAS:tRCD:tRP[:tREFI:tRFC], got '" + text + "'";
        return false;
    }
    timing.tCasCycles = fields[0];
    timing.tRcdCycles = fields[1];
    timing.tRpCycles = fields[2];
    if (fields.size() == 5) {
        timing.tRefiCycles = fields[3];
        timing.tRfcCycles = fields[4];
    }
    return true;
}

DramSpec
uavDramSpec(const DramTiming &timing, double cameraBytesPerSec,
            double hostBytesPerSec, double hostRandomness)
{
    DramSpec spec;
    spec.timing = timing;
    if (cameraBytesPerSec > 0.0) {
        TrafficGeneratorSpec camera;
        camera.name = "camera";
        camera.bytesPerSec = cameraBytesPerSec;
        camera.strideBytes = timing.burstBytes;
        camera.randomness = 0.0;
        camera.seed = 0xCA3E5A;
        camera.addressBase = 1ll << 30;
        camera.write = true; // Sensor frames stream into memory.
        spec.generators.push_back(camera);
    }
    if (hostBytesPerSec > 0.0) {
        TrafficGeneratorSpec host;
        host.name = "host";
        host.bytesPerSec = hostBytesPerSec;
        host.strideBytes = timing.burstBytes;
        host.randomness = hostRandomness;
        host.seed = 0x505731;
        host.addressBase = 2ll << 30;
        spec.generators.push_back(host);
    }
    return spec;
}

} // namespace autopilot::dram
