/**
 * @file
 * Deterministic event-interleaved channel arbiter.
 *
 * One ChannelTimeline owns the channel for one layer simulation: the
 * NPU's prefetch/writeback transfers (driven by the engine's fold
 * timeline) and every background generator's bursts are serialized in
 * strict arrival order - a request is serviced before an NPU transfer
 * only when it arrived no later than the transfer's earliest start,
 * with ties broken by fixed stream priority (generators in spec order,
 * then the NPU). Arrival-order FCFS is starvation-free by construction:
 * a generator injects a bounded number of requests per time window, so
 * every NPU transfer completes in bounded time no matter how overloaded
 * the channel is - no feasibility derate needed, unlike the contention
 * profile. Each source sits behind a finite FIFO: when its nominal rate
 * exceeds what the channel can service, injection stalls (backpressure)
 * instead of accumulating an unbounded backlog, so an overloaded spec
 * costs simulated cycles, never unbounded simulation work.
 *
 * Everything is integer/fixed-seed arithmetic on one thread; two
 * timelines built from the same spec and fed the same transfer sequence
 * produce bit-identical completions and stats, which is what makes the
 * dram backend byte-identical at any worker-thread count.
 */

#ifndef AUTOPILOT_DRAM_CHANNEL_H
#define AUTOPILOT_DRAM_CHANNEL_H

#include <cstdint>

#include "dram/bank_model.h"
#include "dram/config.h"
#include "systolic/config.h"

namespace autopilot::dram
{

/** One layer's shared-channel service timeline. */
class ChannelTimeline
{
  public:
    /**
     * @param spec   Validated channel description (enabled or not).
     * @param config Accelerator configuration; supplies the channel
     *               width (dramBytesPerCycle) and the NPU clock that
     *               converts generator bytes/s into cycles. Fatal when
     *               the refresh interval cannot even cover one burst at
     *               this width (the channel would never make progress).
     */
    ChannelTimeline(const DramSpec &spec,
                    const systolic::AcceleratorConfig &config);

    /**
     * Service one NPU transfer of @p bytes arriving at @p earliestStart,
     * split into burst-sized channel requests; background requests that
     * arrived earlier win the channel first. Returns the completion
     * cycle of the last burst (== @p earliestStart when bytes == 0).
     */
    std::int64_t transfer(std::int64_t earliestStart, std::int64_t bytes,
                          bool write);

    const ChannelStats &stats() const { return stats_; }

  private:
    struct GeneratorState
    {
        TrafficGeneratorSpec spec;
        double interArrivalCycles = 0.0;
        double nextArrival = 0.0;
        std::int64_t offset = 0; ///< Linear walk position in the window.
        std::uint64_t rng = 0;
        std::size_t statsIndex = 0;
    };

    /// Service @p generator's front request; advances channel and
    /// arrival state.
    void serviceGenerator(GeneratorState &generator);

    /// The generator whose front request arrived earliest (ties by spec
    /// order), or null when no generator is active.
    GeneratorState *earliestGenerator();

    DramSpec spec_;
    std::int64_t bytesPerCycle;
    BankModel banks;
    std::int64_t channelFree = 0;
    /// NPU stream walk positions: reads from the model/weight region,
    /// writes to a disjoint output region.
    std::int64_t npuReadAddr = 0;
    std::int64_t npuWriteAddr = 1ll << 28;
    std::vector<GeneratorState> generators;
    ChannelStats stats_;
};

} // namespace autopilot::dram

#endif // AUTOPILOT_DRAM_CHANNEL_H
