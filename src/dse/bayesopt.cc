#include "dse/bayesopt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "dse/hypervolume.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

BayesOpt::BayesOpt() : BayesOpt(Settings())
{
}

BayesOpt::BayesOpt(const Settings &settings) : cfg(settings)
{
    util::fatalIf(cfg.initialSamples < 2,
                  "BayesOpt: need at least 2 initial samples");
    util::fatalIf(cfg.candidatePool < 1,
                  "BayesOpt: candidate pool must be positive");
    util::fatalIf(cfg.batchSize < 1,
                  "BayesOpt: batch size must be positive");
}

OptimizerResult
BayesOpt::optimize(DseEvaluator &evaluator, const OptimizerConfig &config)
{
    util::Rng rng(config.seed);
    const DesignSpace &space = evaluator.space();

    OptimizerResult result;
    std::set<Encoding> visited;

    // --- Initial random design (chunked parallel batches) ---
    int evaluated = 0;
    const int initial =
        std::min(cfg.initialSamples, config.evaluationBudget);
    {
        util::TraceSpan init_span("bo.initial_design", "optimizer");
        long attempts = 0;
        while (evaluated < initial && attempts < 100000) {
            const long chunk = std::min<long>(initial - evaluated,
                                              100000 - attempts);
            std::vector<Encoding> proposals;
            proposals.reserve(static_cast<std::size_t>(chunk));
            for (long i = 0; i < chunk; ++i)
                proposals.push_back(space.randomEncoding(rng));
            attempts += chunk;
            evaluated += recordEvaluations(evaluator, proposals, config,
                                           result, initial - evaluated);
            for (const Encoding &proposal : proposals)
                visited.insert(proposal);
        }
    }

    // --- Model-guided iterations ---
    util::Telemetry &telemetry = util::Telemetry::instance();
    while (evaluated < config.evaluationBudget) {
        util::TraceSpan iteration_span("bo.iteration", "optimizer");
        if (telemetry.enabled())
            telemetry.metrics().counter("bo.iterations").add();

        // Fit one GP per objective on the full archive.
        std::vector<std::vector<double>> inputs;
        inputs.reserve(result.archive.size());
        for (const Evaluation &evaluation : result.archive)
            inputs.push_back(space.features(evaluation.encoding));

        const std::size_t num_objectives =
            result.archive.front().objectives.size();
        std::vector<GaussianProcess> models;
        models.reserve(num_objectives);
        {
            util::TraceSpan fit_span("bo.fit_gp", "optimizer");
            util::ScopedTimer fit_timer(
                telemetry.enabled()
                    ? &telemetry.metrics().histogram("bo.fit_gp_s")
                    : nullptr);
            for (std::size_t d = 0; d < num_objectives; ++d) {
                std::vector<double> targets;
                targets.reserve(result.archive.size());
                for (const Evaluation &evaluation : result.archive)
                    targets.push_back(evaluation.objectives[d]);
                GaussianProcess gp(cfg.gp);
                gp.fit(inputs, targets);
                models.push_back(std::move(gp));
            }
        }

        // Current front and reference for the S-metric.
        std::vector<Objectives> archive_points;
        archive_points.reserve(result.archive.size());
        for (const Evaluation &evaluation : result.archive)
            archive_points.push_back(evaluation.objectives);
        const std::vector<Objectives> front = paretoFront(archive_points);
        const Objectives reference = config.referencePoint;

        // Candidate pool: random unvisited encodings plus neighbours of
        // the front (local refinement).
        std::vector<Encoding> pool;
        for (int c = 0; c < cfg.candidatePool; ++c) {
            const Encoding candidate = space.randomEncoding(rng);
            if (!visited.count(candidate))
                pool.push_back(candidate);
        }
        for (const Evaluation &evaluation : result.archive) {
            const Encoding candidate =
                space.neighbor(evaluation.encoding, rng);
            if (!visited.count(candidate))
                pool.push_back(candidate);
        }
        if (pool.empty())
            break; // Space exhausted around the archive.

        // Score the pool with the SMS-EGO acquisition, screening the
        // candidates in parallel on the evaluator's pool. Each score is
        // a pure function of one candidate, so the ranking (and thus
        // the whole search trajectory) is identical across thread
        // counts.
        std::vector<double> scores(pool.size());
        const std::int64_t screen_start =
            telemetry.enabled() ? telemetry.trace().nowUs() : 0;
        util::ScopedTimer screen_timer(
            telemetry.enabled()
                ? &telemetry.metrics().histogram("bo.screen_s")
                : nullptr);
        util::parallel_for(
            evaluator.threadPool(), pool.size(), [&](std::size_t c) {
                const std::vector<double> features =
                    space.features(pool[c]);
                Objectives lcb(num_objectives, 0.0);
                for (std::size_t d = 0; d < num_objectives; ++d) {
                    const GpPrediction prediction =
                        models[d].predict(features);
                    lcb[d] = prediction.mean -
                             cfg.confidenceGain * prediction.stddev();
                }

                double score =
                    hypervolumeContribution(front, lcb, reference);
                if (score <= 0.0) {
                    // Epsilon-dominated candidate: penalty grows with
                    // how far inside the dominated region the LCB point
                    // lies.
                    double worst_excess = 0.0;
                    for (const Objectives &member : front) {
                        if (!epsilonDominates(member, lcb, cfg.epsilon))
                            continue;
                        double excess = 0.0;
                        for (std::size_t d = 0; d < num_objectives; ++d)
                            excess += std::max(0.0, lcb[d] - member[d]);
                        worst_excess = std::max(worst_excess, excess);
                    }
                    score = -worst_excess;
                }
                scores[c] = score;
            },
            /*grain=*/4);
        screen_timer.stop();
        if (telemetry.enabled()) {
            telemetry.trace().record(
                "bo.screen", "optimizer", screen_start,
                telemetry.trace().nowUs() - screen_start);
        }

        // q-batch suggestion: take the top scorers (earliest proposal
        // wins ties) and evaluate them as one parallel batch, committed
        // in score order.
        std::vector<std::size_t> order(pool.size());
        for (std::size_t c = 0; c < order.size(); ++c)
            order[c] = c;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return scores[a] > scores[b];
                         });
        const int remaining = config.evaluationBudget - evaluated;
        const std::size_t batch = std::min<std::size_t>(
            {static_cast<std::size_t>(cfg.batchSize),
             static_cast<std::size_t>(remaining), order.size()});
        std::vector<Encoding> suggestions;
        suggestions.reserve(batch);
        for (std::size_t r = 0; r < batch; ++r)
            suggestions.push_back(pool[order[r]]);

        evaluated += recordEvaluations(evaluator, suggestions, config,
                                       result, remaining);
        for (const Encoding &suggestion : suggestions)
            visited.insert(suggestion);
    }

    return result;
}

} // namespace autopilot::dse
