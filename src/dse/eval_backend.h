/**
 * @file
 * Pluggable cost-model backends for the Phase 2 evaluator.
 *
 * The paper treats the architectural simulator as a swappable black box
 * (Section III-B: "SCALE-Sim-style" performance plus CACTI/Micron-style
 * power); this layer makes the swap a string. A backend turns one
 * DesignPoint into one Evaluation; the DseEvaluator owns exactly one
 * backend and routes every cache miss through it, so the memoization,
 * batching and determinism machinery is shared by all cost models.
 *
 * Six backends ship in-tree, keyed in the BackendRegistry:
 *
 *  - "analytical": the closed-form AnalyticalEngine + NPU/SoC power
 *    stack - the historical DseEvaluator::compute() path, bit-identical
 *    to it. The default; fast enough to burn inside the DSE loop.
 *  - "quantized": the analytical stack with the precision search axis
 *    made explicit - same numbers, rows archive backend "quantized",
 *    and per-precision "dse.quantized.<label>.points" telemetry shows
 *    how the search spreads across int8/fp16/fp32 (pair with
 *    TaskSpec::precisions to widen the 8th design dimension).
 *  - "cycle": the same power stack on the cycle-stepped reference
 *    CycleEngine (explicit double-buffered prefetch timeline). Slower,
 *    higher fidelity; previously reachable only from the benches.
 *  - "tiered": cheap-screen / accurate-verify. Every point is screened
 *    analytically; only points whose screened objectives are
 *    Pareto-competitive (within a configurable hypervolume-contribution
 *    band of the running analytical front) are promoted to a
 *    cycle-accurate re-evaluation. Each Evaluation records which
 *    fidelity produced its archived numbers.
 *  - "contention": the cycle engine under the BackendContext's
 *    shared-DRAM ContentionProfile - fetch/writeback bandwidth derated
 *    by the background camera/host traffic, and that traffic charged
 *    to DRAM power. With an empty profile its numbers are bit-identical
 *    to "cycle". Each evaluation records the profile's bytes/s so a
 *    journaled run resumes under the profile it was written with.
 *  - "dram": the highest fidelity tier - the cycle timeline over a
 *    bank-level DRAM channel (dram::BankModel) shared with
 *    programmable camera/host traffic generators; latency comes from
 *    simulated per-request row hit/miss/conflict service times and
 *    DRAM power from actual activate/precharge/refresh counts. With no
 *    generators its numbers are bit-identical to "cycle". Each
 *    evaluation records the channel tag so a journaled run resumes
 *    under the channel it was written with.
 *
 * Determinism: analytical and cycle evaluations are pure functions of
 * the design point. The tiered promotion decision is stateful (it
 * depends on every point screened before), so TieredBackend makes all
 * promotion decisions serially in request order inside evaluateBatch();
 * for a fixed request sequence - e.g. a seeded optimizer loop - results
 * are byte-identical at any worker-thread count.
 *
 * Telemetry: with the global util::Telemetry enabled each batch bumps
 * "dse.backend.<name>.points"; the tiered backend additionally counts
 * "dse.tiered.screened" / "dse.tiered.promoted" and wraps its screening
 * pass in a "dse.tiered.screen" trace span. Granularity caveat: the
 * analytical batch path processes points in SoA chunks, so its
 * "dse.simulate" spans and "dse.simulate_s" / "dse.screen_s" samples
 * cover one chunk (up to 32 points) each; the cycle-engine backends
 * keep per-point samples.
 */

#ifndef AUTOPILOT_DSE_EVAL_BACKEND_H
#define AUTOPILOT_DSE_EVAL_BACKEND_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include <atomic>

#include "airlearning/database.h"
#include "dram/config.h"
#include "dse/design_space.h"
#include "dse/evaluation.h"
#include "systolic/contention.h"
#include "util/thread_pool.h"

namespace autopilot::dse
{

/** Everything a backend needs besides the design point itself. */
struct BackendContext
{
    /// Phase 1 policy database; must contain a record for every
    /// hyperparameter combination the backend will be asked about.
    const airlearning::PolicyDatabase *database = nullptr;
    /// Deployment scenario being designed for.
    airlearning::ObstacleDensity density =
        airlearning::ObstacleDensity::Low;
    /// Background DRAM traffic sharing the NPU's channel. Only the
    /// contention backend reads it; the default (empty) profile keeps
    /// every other backend's results untouched.
    systolic::ContentionProfile contention;
    /// Bank-level DRAM channel description (timing + traffic
    /// generators). Read by the dram backend and, when enabled, by the
    /// tiered verify tier; the default (no generators) keeps every
    /// backend's results untouched. Mutually exclusive with a
    /// non-empty contention profile - the two encode the same
    /// background traffic at different fidelities, and billing it
    /// twice (flat derate + simulated interference) would double-charge
    /// latency and power.
    dram::DramSpec dram;
};

/** Abstract cost model: DesignPoint -> Evaluation. */
class EvalBackend
{
  public:
    /// Delivers the result for one batch index; may be invoked from
    /// pool workers concurrently, exactly once per index.
    using CommitFn = std::function<void(std::size_t, Evaluation &&)>;

    virtual ~EvalBackend() = default;

    /** Registry key ("analytical", "cycle", "tiered", ...). */
    virtual std::string name() const = 0;

    /** Fidelity of the numbers this backend archives. */
    virtual Fidelity fidelity() const = 0;

    /**
     * Evaluate one design point. The returned Evaluation carries every
     * field except the encoding (backends deal in decoded points; the
     * caller owns the encoding). Pure for the stateless backends;
     * thread-safe for all of them.
     */
    virtual Evaluation evaluate(const DesignPoint &point) = 0;

    /**
     * Evaluate a batch, committing each result as it becomes ready.
     *
     * The default implementation runs evaluate() for every point via
     * util::parallel_for on @p pool (serially when null), wrapped in
     * the per-point "dse.simulate" span and "dse.simulate_s" histogram.
     * Stateful backends override this to sequence their cross-point
     * decisions deterministically (see TieredBackend).
     */
    virtual void evaluateBatch(std::span<const DesignPoint> points,
                               util::ThreadPool *pool,
                               const CommitFn &commit);

    /**
     * Rebuild internal state from a replayed evaluation journal before
     * a resumed run re-enters the optimizer loop. @p replayed holds
     * every journaled evaluation in original request order - a strict
     * prefix of the interrupted run, because the journal commits whole
     * batches in request order. No-op for stateless backends; the
     * tiered backend re-screens the prefix to restore its analytical
     * front, counters and adaptive error statistics to byte-identical
     * values, so a resumed run promotes exactly as the uninterrupted
     * one would.
     */
    virtual void warmStart(std::span<const Evaluation> replayed);
};

/**
 * String-keyed backend factory registry.
 *
 * The three in-tree backends are pre-registered; anything else (a
 * quantized-NN variant, a DRAM-contention model, a remote simulator
 * shim) plugs in through registerFactory() and becomes reachable from
 * TaskSpec::backend without touching the evaluator.
 */
class BackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<EvalBackend>(
        const BackendContext &)>;

    /** The process-wide registry (built-ins already registered). */
    static BackendRegistry &instance();

    /** Register (or replace) the factory for @p name. Thread-safe. */
    void registerFactory(const std::string &name, Factory factory);

    /** True when a factory for @p name exists. Thread-safe. */
    bool knows(const std::string &name) const;

    /** Registered names, sorted. Thread-safe. */
    std::vector<std::string> names() const;

    /**
     * Instantiate the backend registered under @p name (fatal on an
     * unknown name, listing the registered ones). Thread-safe.
     */
    std::unique_ptr<EvalBackend> create(const std::string &name,
                                        const BackendContext &context) const;

  private:
    BackendRegistry();

    mutable std::mutex mutex;
    std::map<std::string, Factory> factories;
};

/** Shorthand for BackendRegistry::instance().create(). */
std::unique_ptr<EvalBackend> makeBackend(const std::string &name,
                                         const BackendContext &context);

/**
 * Closed-form engine + power stack (the historical compute() path).
 *
 * evaluate() is the scalar reference implementation (fresh
 * AnalyticalEngine per point, exactly the pre-batch-kernel sequence).
 * evaluateBatch() runs the raw-speed path instead: points are grouped
 * by policy, each group costed against a cached
 * systolic::CompiledModelPlan by the SoA batch kernel with per-worker
 * thread-local util::Arena scratch, then lowered through the batched
 * power entry point - bit-identical to the scalar path by construction
 * and pinned by test_batch_kernel.cc / test_backends.cc.
 */
class AnalyticalBackend : public EvalBackend
{
  public:
    explicit AnalyticalBackend(const BackendContext &context);
    ~AnalyticalBackend() override;

    std::string name() const override { return "analytical"; }
    Fidelity fidelity() const override { return Fidelity::Analytical; }
    Evaluation evaluate(const DesignPoint &point) override;
    void evaluateBatch(std::span<const DesignPoint> points,
                       util::ThreadPool *pool,
                       const CommitFn &commit) override;

    /**
     * The batch path with screening instrumentation: identical results
     * to evaluateBatch() (fidelity Analytical, backend "analytical"),
     * but chunk timings go to @p screen_hist and the per-chunk trace
     * spans are named "dse.screen". Used by TieredBackend's screen
     * tier so the tiered pipeline rides the same SoA kernel.
     */
    void screenBatch(std::span<const DesignPoint> points,
                     util::ThreadPool *pool, std::span<Evaluation> out,
                     util::Histogram *screen_hist);

  private:
    struct PlanCache;

    void batchEvaluate(std::span<const DesignPoint> points,
                       util::ThreadPool *pool, const CommitFn &commit,
                       util::Histogram *chunk_hist,
                       const char *span_name);

    BackendContext ctx;
    /// Compiled plans per policy (<= |PolicySpace| = 27 entries),
    /// built on first use behind a mutex.
    std::unique_ptr<PlanCache> plans;
};

/**
 * Precision-aware analytical backend for quantized-inference search.
 *
 * Numerically identical to AnalyticalBackend - every backend already
 * prices the design point's bytesPerElement (traffic, MAC/SRAM energy,
 * fold occupancy) and recovers the Phase 1 quantization penalty at
 * wider precisions - so this subclass exists to make the precision axis
 * an explicit, named choice: rows archive backend "quantized", and each
 * batch additionally bumps per-precision "dse.quantized.<label>.points"
 * counters so telemetry shows how the search spreads across int8/fp16/
 * fp32. Pair it with TaskSpec::precisions to widen the 8th dimension;
 * with the default int8-only axis it is bit-identical to "analytical"
 * except for the archived backend name.
 */
class QuantizedBackend : public AnalyticalBackend
{
  public:
    explicit QuantizedBackend(const BackendContext &context);

    std::string name() const override { return "quantized"; }
    void evaluateBatch(std::span<const DesignPoint> points,
                       util::ThreadPool *pool,
                       const CommitFn &commit) override;
};

/** Cycle-stepped reference engine + the same power stack. */
class CycleBackend : public EvalBackend
{
  public:
    explicit CycleBackend(const BackendContext &context);

    std::string name() const override { return "cycle"; }
    Fidelity fidelity() const override { return Fidelity::CycleAccurate; }
    Evaluation evaluate(const DesignPoint &point) override;

  private:
    BackendContext ctx;
};

/**
 * Cycle-stepped engine under a shared-DRAM contention profile.
 *
 * The profile comes from the BackendContext (plumbed from
 * TaskSpec/campaign flags); designs pay both the latency of the
 * derated channel and the DRAM power of the background traffic. Pure
 * per point like CycleBackend - the profile is fixed for the backend's
 * lifetime - so the default batched path applies unchanged.
 *
 * Telemetry: besides the shared "dse.backend.contention.points"
 * counter, each batch sets the "dse.backend.contention.background_bps"
 * gauge to the profile's background rate.
 */
class ContentionBackend : public EvalBackend
{
  public:
    explicit ContentionBackend(const BackendContext &context);

    std::string name() const override { return "contention"; }
    Fidelity fidelity() const override { return Fidelity::CycleAccurate; }
    Evaluation evaluate(const DesignPoint &point) override;
    void evaluateBatch(std::span<const DesignPoint> points,
                       util::ThreadPool *pool,
                       const CommitFn &commit) override;

    const systolic::ContentionProfile &profile() const
    {
        return ctx.contention;
    }

  private:
    BackendContext ctx;
};

/**
 * Cycle-stepped engine over the bank-level DRAM channel: the highest
 * fidelity tier, above "contention".
 *
 * The DramSpec comes from the BackendContext (plumbed from
 * TaskSpec/campaign flags). Where the contention backend derates one
 * aggregate bandwidth number, this backend simulates the channel:
 * every NPU prefetch/writeback is split into bursts, classified per
 * bank (row hit/miss/conflict, refresh stalls) and interleaved with
 * the programmable background generators in deterministic arrival
 * order (dram::ChannelTimeline), so effective latency comes from
 * simulated per-request service times. DRAM power is charged from the
 * actual activate/precharge/refresh/byte counts
 * (power::DramModel::commandPowerMw) INSTEAD of the flat
 * background-bytes/s surcharge - the background streams are billed
 * exactly once, through the commands they really issued. The
 * contention profile in the context is ignored by construction (the
 * AutoPilot task layer rejects specs that set both).
 *
 * With no generators configured the backend reproduces the pure-cycle
 * path bit for bit: the engine delegates to systolic::CycleEngine and
 * power takes the plain flat path with zero background traffic.
 *
 * Pure per point (the spec is fixed for the backend's lifetime), so
 * the default batched path applies unchanged and results are
 * byte-identical at any thread count.
 *
 * Telemetry: besides the shared "dse.backend.dram.points" counter,
 * each batch folds the simulated command counts into
 * "dse.dram.row_hits" / "dse.dram.row_misses" / "dse.dram.row_conflicts"
 * / "dse.dram.refreshes", per-generator request counters
 * "dse.dram.gen.<name>.requests", and sets the "dse.dram.hit_rate_ppm"
 * gauge; per-generator trace spans ("dram.gen.<name>") wrap each
 * simulated evaluation.
 */
class DramBackend : public EvalBackend
{
  public:
    explicit DramBackend(const BackendContext &context);

    std::string name() const override { return "dram"; }
    Fidelity fidelity() const override
    {
        return ctx.dram.enabled() ? Fidelity::BankAccurate
                                  : Fidelity::CycleAccurate;
    }
    Evaluation evaluate(const DesignPoint &point) override;
    void evaluateBatch(std::span<const DesignPoint> points,
                       util::ThreadPool *pool,
                       const CommitFn &commit) override;

    const dram::DramSpec &spec() const { return ctx.dram; }

    /** Command counters accumulated across every evaluation since
     * construction (monotonic; thread-safe). */
    std::int64_t rowHits() const { return rowHits_.load(); }
    std::int64_t rowMisses() const { return rowMisses_.load(); }
    std::int64_t rowConflicts() const { return rowConflicts_.load(); }
    std::int64_t refreshes() const { return refreshes_.load(); }
    std::int64_t activates() const { return activates_.load(); }
    std::int64_t channelBytes() const { return channelBytes_.load(); }

  private:
    BackendContext ctx;
    /// Stable per-generator trace-span names ("dram.gen.<name>");
    /// TraceSpan keeps the char pointer, so the strings must outlive
    /// every span.
    std::vector<std::string> genSpanNames;
    std::atomic<std::int64_t> rowHits_{0};
    std::atomic<std::int64_t> rowMisses_{0};
    std::atomic<std::int64_t> rowConflicts_{0};
    std::atomic<std::int64_t> refreshes_{0};
    std::atomic<std::int64_t> activates_{0};
    std::atomic<std::int64_t> channelBytes_{0};
};

/** Tiered-promotion policy knobs. */
struct TieredPolicy
{
    /**
     * Relative hypervolume-contribution band. A screened point is
     * promoted to cycle-accurate re-evaluation when its analytical
     * objectives, improved componentwise by this fraction, still
     * contribute hypervolume against the running analytical front
     * (batch already absorbed) - i.e. the point is on the front or
     * within the band behind it. Must be positive: the relaxation is
     * also what lets a front member pass against its own front entry.
     * Wide enough to cover the analytical engine's timing error so
     * true front members are not screened out; the default tracks the
     * engine-validation p95 error (~1-2 %, see
     * bench_engine_validation) with margin.
     */
    double promotionBand = 0.02;
    /// Reference point for the contribution test ({1 - success, watts,
    /// ms}, minimized). Points entirely outside the box are never
    /// promoted - matching the OptimizerConfig default, which gives
    /// designs hotter than ~12 W or slower than ~120 ms no credit.
    Objectives referencePoint = {1.0, 12.0, 120.0};

    /**
     * Adaptive band: re-tune the promotion band from the analytical
     * engine's *measured* error during the run instead of trusting the
     * static default. Every promotion yields a free error sample (the
     * same point costed by both engines); after each batch the band is
     * set to errorMargin x the mean relative latency error observed so
     * far, clamped to [minBand, maxBand]. An optimistic analytical
     * model widens the band (so true front members near the boundary
     * are not screened out); an accurate one narrows it (fewer wasted
     * cycle-accurate runs). Deterministic: errors fold in request
     * order, so the band trajectory is byte-identical at any thread
     * count and across kill/resume (warmStart() reconstructs it from
     * the journal).
     */
    bool adaptive = false;
    double minBand = 0.005;  ///< Adaptive clamp floor.
    double maxBand = 0.10;   ///< Adaptive clamp ceiling.
    double errorMargin = 2.0; ///< Band = margin x mean observed error.
};

/**
 * Analytical screen + selective cycle-accurate verification.
 *
 * Batch flow: (1) screen every point analytically in parallel (pure);
 * (2) serially, absorb the whole batch into the running analytical
 * Pareto front, then test each screened point against that front and
 * mark the competitive ones for promotion (deciding after absorption
 * keeps an immature early-batch front from over-promoting);
 * (3) re-evaluate the promoted points on the cycle engine in
 * parallel. Non-promoted points archive their analytical numbers with
 * Fidelity::Analytical; promoted ones archive cycle numbers with
 * Fidelity::CycleAccurate - so downstream consumers always know which
 * cost model produced each row.
 *
 * Step (2) is the only stateful step and is sequenced on the calling
 * thread, so a fixed request sequence yields byte-identical results at
 * any thread count. Concurrent callers are serialized by a mutex but
 * their interleaving is then caller-determined.
 */
class TieredBackend : public EvalBackend
{
  public:
    TieredBackend(const BackendContext &context,
                  const TieredPolicy &policy = {});

    std::string name() const override { return "tiered"; }
    Fidelity fidelity() const override { return Fidelity::Mixed; }
    Evaluation evaluate(const DesignPoint &point) override;
    void evaluateBatch(std::span<const DesignPoint> points,
                       util::ThreadPool *pool,
                       const CommitFn &commit) override;

    /**
     * Restore the analytical front, screen/promotion counters and
     * adaptive error statistics from a journal prefix by re-screening
     * every replayed point (pure, cheap) in journal order. Rows that
     * were promoted (any non-analytical fidelity) contribute their
     * journaled cycle numbers to the adaptive error fold, so the band
     * trajectory resumes byte-identically without re-running the cycle
     * engine.
     */
    void warmStart(std::span<const Evaluation> replayed) override;

    const TieredPolicy &policy() const { return tierPolicy; }

    /** Points screened / promoted so far (monotonic). Thread-safe. */
    std::size_t screenedCount() const;
    std::size_t promotedCount() const;

    /** The promotion band currently in force (== policy().promotionBand
     * unless adaptive). Thread-safe. */
    double currentBand() const;

  private:
    /// Fold one screened objective vector into the running analytical
    /// front. Caller holds stateMutex.
    void absorb(const Objectives &screened);

    /// Band-relaxed hypervolume-contribution test against the running
    /// front. Caller holds stateMutex.
    bool shouldPromote(const Objectives &screened) const;

    /// Fold one promoted point's analytical-vs-cycle relative latency
    /// error and re-derive the adaptive band. Caller holds stateMutex.
    void foldError(double analyticalLatencyMs, double cycleLatencyMs);

    AnalyticalBackend screen;
    /// The verify tier: the bank-level DramBackend when the context's
    /// DramSpec is enabled (only knee-adjacent promoted designs pay
    /// bank-level simulation), else the ContentionBackend under the
    /// context's contention profile - which with the default empty
    /// profile is bit-identical to CycleBackend. Promoted rows archive
    /// the verify tier's fidelity (BankAccurate or CycleAccurate).
    std::unique_ptr<EvalBackend> verify;
    TieredPolicy tierPolicy;

    mutable std::mutex stateMutex;
    /// Non-dominated analytical objectives seen so far.
    std::vector<Objectives> analyticalFront;
    std::size_t screened_ = 0;
    std::size_t promoted_ = 0;
    /// Band in force; tracks the adaptive fold, else the static policy.
    double band_;
    double errorSum_ = 0.0;      ///< Sum of relative latency errors.
    std::size_t errorCount_ = 0; ///< Promotions folded so far.
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_EVAL_BACKEND_H
