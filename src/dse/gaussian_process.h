/**
 * @file
 * Gaussian-process regression with a squared-exponential kernel.
 *
 * This is the Bayesian statistical model of Section III-B: one GP is fit
 * per objective function; its posterior mean/variance feed the SMS-EGO
 * acquisition. The SE kernel is used "due to its simplicity, leading to
 * fast computation" [65], exactly as in the paper.
 *
 * Targets are standardized internally (zero mean, unit variance) so one
 * set of kernel hyperparameters works across objectives with very
 * different scales (success fraction vs. watts vs. milliseconds).
 */

#ifndef AUTOPILOT_DSE_GAUSSIAN_PROCESS_H
#define AUTOPILOT_DSE_GAUSSIAN_PROCESS_H

#include <memory>
#include <vector>

#include "util/matrix.h"

namespace autopilot::dse
{

/** GP posterior at one query point. */
struct GpPrediction
{
    double mean = 0.0;
    double variance = 0.0;

    /** Posterior standard deviation. */
    double stddev() const;
};

/** Squared-exponential-kernel GP regressor. */
class GaussianProcess
{
  public:
    /** Kernel hyperparameters. */
    struct Params
    {
        double lengthScale = 0.25; ///< Shared isotropic length scale.
        double signalVariance = 1.0;
        double noiseVariance = 1e-4;
    };

    /** Construct with default kernel parameters. */
    GaussianProcess();

    explicit GaussianProcess(const Params &params);

    /**
     * Fit to training data.
     *
     * @param inputs  Feature vectors (all the same dimension, non-empty).
     * @param targets One target per input.
     */
    void fit(const std::vector<std::vector<double>> &inputs,
             const std::vector<double> &targets);

    /** True after a successful fit(). */
    bool fitted() const { return factor != nullptr; }

    /** Posterior mean and variance at a query point. */
    GpPrediction predict(const std::vector<double> &query) const;

    const Params &params() const { return kernelParams; }

  private:
    Params kernelParams;
    std::vector<std::vector<double>> trainInputs;
    std::vector<double> alpha; ///< K^{-1} (y - mean), standardized.
    std::unique_ptr<util::CholeskyFactor> factor;
    double targetMean = 0.0;
    double targetStd = 1.0;

    double kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_GAUSSIAN_PROCESS_H
