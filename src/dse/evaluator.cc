#include "dse/evaluator.h"

#include "dse/eval_backend.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

DseEvaluator::DseEvaluator(const airlearning::PolicyDatabase &database,
                           airlearning::ObstacleDensity density,
                           const std::string &backend,
                           const systolic::ContentionProfile &contention,
                           const dram::DramSpec &dram,
                           const std::vector<int> &precisions)
    : DseEvaluator(database, density,
                   makeBackend(backend, BackendContext{&database,
                                                       density,
                                                       contention,
                                                       dram}),
                   precisions)
{
}

DseEvaluator::DseEvaluator(const airlearning::PolicyDatabase &database,
                           airlearning::ObstacleDensity density,
                           std::unique_ptr<EvalBackend> backend,
                           const std::vector<int> &precisions)
    : policyDb(database), scenario(density), designSpace(precisions),
      evalBackend(std::move(backend))
{
    util::fatalIf(evalBackend == nullptr,
                  "DseEvaluator: backend must not be null");
}

DseEvaluator::~DseEvaluator() = default;

std::string
DseEvaluator::backendName() const
{
    return evalBackend->name();
}

DseEvaluator::Shard &
DseEvaluator::shardFor(const Encoding &encoding)
{
    return shards[hashEncoding(encoding) % shardCount];
}

const DseEvaluator::Shard &
DseEvaluator::shardFor(const Encoding &encoding) const
{
    return shards[hashEncoding(encoding) % shardCount];
}

const Evaluation &
DseEvaluator::evaluate(const Encoding &encoding)
{
    return *evaluateBatch(std::span<const Encoding>(&encoding, 1))
                .front()
                .evaluation;
}

std::vector<BatchResult>
DseEvaluator::evaluateBatch(std::span<const Encoding> encodings)
{
    // Batch-boundary cancellation: checked before any reservation, so
    // a cancelled batch leaves no half-claimed nodes and the journal
    // (fed whole batches via the sink below) stays a clean prefix.
    cancelToken.check("dse::evaluateBatch");

    util::Telemetry &telemetry = util::Telemetry::instance();
    const bool telemetry_on = telemetry.enabled();
    util::TraceSpan batch_span("dse.evaluateBatch", "dse");

    std::vector<BatchResult> results(encodings.size());

    // --- Key-build pass: hash every encoding once up front ---
    // The reservation, commit and completion passes all need the
    // encoding's shard; hoisting the hash out of those loops computes
    // it once per request instead of three-plus times. The
    // "dse.cache.key_build_s" histogram prices the hoisted work.
    std::vector<std::size_t> shardIdx(encodings.size());
    {
        util::ScopedTimer key_timer(
            telemetry_on && !encodings.empty()
                ? &telemetry.metrics().histogram("dse.cache.key_build_s")
                : nullptr);
        for (std::size_t i = 0; i < encodings.size(); ++i)
            shardIdx[i] = hashEncoding(encodings[i]) % shardCount;
    }

    // --- Reservation pass (request order, on the calling thread) ---
    // First occurrence of an uncached key inserts a not-yet-ready node
    // and claims it for this batch; everything else is a cache hit
    // (possibly on a node another thread is still simulating). Doing
    // this serially in request order is what makes the evaluation-order
    // sequence - and therefore allEvaluations() - deterministic for a
    // fixed request sequence.
    /// One batch claim: the node plus its precomputed shard index, so
    /// the commit callback never re-hashes the encoding.
    struct Claim
    {
        Node *node;
        std::size_t shard;
    };
    std::vector<Claim> claimed; // Ours to simulate, in request order.
    for (std::size_t i = 0; i < encodings.size(); ++i) {
        Shard &shard = shards[shardIdx[i]];
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(encodings[i]);
        if (it == shard.entries.end()) {
            auto node = std::make_unique<Node>();
            node->evaluation.encoding = encodings[i];
            Node *raw = node.get();
            {
                std::lock_guard<std::mutex> orderLock(orderMutex);
                raw->sequence = evaluationOrder.size();
                evaluationOrder.push_back(raw);
            }
            shard.entries.emplace(encodings[i], std::move(node));
            claimed.push_back({raw, shardIdx[i]});
            results[i] = {&raw->evaluation, true};
            missCount.fetch_add(1, std::memory_order_relaxed);
        } else {
            Node *node = it->second.get();
            // A preloaded (journal-replayed) node is fresh on its
            // first hit: the resumed optimizer must spend budget on it
            // at the same step the uninterrupted run did. Still a
            // cache hit - no simulation happens.
            bool fresh = false;
            if (node->replayFresh) {
                node->replayFresh = false;
                fresh = true;
            }
            results[i] = {&node->evaluation, fresh};
            hitCount.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (telemetry_on && !encodings.empty()) {
        // Route the cache traffic through the registry at the same
        // granularity as the atomics, so the exported metrics CSV always
        // agrees with cacheStats().
        telemetry.metrics()
            .counter("dse.cache.miss")
            .add(claimed.size());
        telemetry.metrics()
            .counter("dse.cache.hit")
            .add(encodings.size() - claimed.size());
    }

    // --- Simulation pass (delegated to the cost-model backend) ---
    // The backend computes each claimed point (fanning out over the
    // pool as it sees fit) and commits results as they become ready;
    // the commit publishes the node so waiters on other threads can
    // proceed before the whole batch finishes.
    if (!claimed.empty()) {
        std::vector<DesignPoint> points;
        points.reserve(claimed.size());
        for (const Claim &claim : claimed)
            points.push_back(
                designSpace.decode(claim.node->evaluation.encoding));
        evalBackend->evaluateBatch(
            points, workers,
            [this, &claimed](std::size_t i, Evaluation &&evaluation) {
                Node *node = claimed[i].node;
                evaluation.encoding = node->evaluation.encoding;
                evaluation.scenario = scenarioTag;
                // Label the operand width only when the axis is
                // searchable: the "-" default selects the legacy
                // archive layout, keeping single-precision runs
                // byte-identical on disk.
                if (designSpace.precisionAxisEnabled()) {
                    evaluation.precision = systolic::precisionName(
                        evaluation.point.accel.bytesPerElement);
                }
                Shard &shard = shards[claimed[i].shard];
                {
                    std::lock_guard<std::mutex> lock(shard.mutex);
                    node->evaluation = std::move(evaluation);
                    node->ready.store(true, std::memory_order_release);
                }
                shard.ready.notify_all();
            });
    }

    // --- Completion pass: wait out other threads' in-flight nodes ---
    // Our own claims are ready after the backend batch returns; a hit
    // on a node claimed by a concurrent batch may still be simulating.
    for (std::size_t i = 0; i < encodings.size(); ++i) {
        Shard &shard = shards[shardIdx[i]];
        std::unique_lock<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(encodings[i]);
        Node *node = it->second.get();
        if (!node->ready.load(std::memory_order_acquire)) {
            inflightWaitCount.fetch_add(1, std::memory_order_relaxed);
            if (telemetry_on) {
                telemetry.metrics()
                    .counter("dse.cache.inflight_wait")
                    .add();
            }
            shard.ready.wait(lock, [node] {
                return node->ready.load(std::memory_order_acquire);
            });
        }
    }

    // --- Journal hook: offer the batch's own simulations, whole and
    // in request order, only after every one has committed ---
    if (journalSink && !claimed.empty()) {
        std::vector<Evaluation> committed;
        committed.reserve(claimed.size());
        for (const Claim &claim : claimed)
            committed.push_back(claim.node->evaluation);
        journalSink(committed);
    }

    return results;
}

void
DseEvaluator::preload(std::span<const Evaluation> evaluations)
{
    // The backend restores its cross-point state (tiered front,
    // adaptive band) from the same prefix the cache is loaded from.
    evalBackend->warmStart(evaluations);
    for (const Evaluation &evaluation : evaluations) {
        // Re-encode through THIS evaluator's space so cache keys are
        // normalized: a journal archives 7 encoding columns plus a
        // precision label, and the label's index depends on the
        // configured precision set. encode() also rejects (fatal, with
        // the dimension named) any replayed point outside the space -
        // the fingerprint gate upstream makes that unreachable in
        // normal operation.
        const Encoding key = designSpace.encode(evaluation.point);
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.entries.count(key) != 0)
            continue; // First replayed row wins; the rest are hits.
        auto node = std::make_unique<Node>();
        node->evaluation = evaluation;
        node->evaluation.encoding = key;
        node->replayFresh = true;
        {
            std::lock_guard<std::mutex> orderLock(orderMutex);
            node->sequence = evaluationOrder.size();
            evaluationOrder.push_back(node.get());
        }
        node->ready.store(true, std::memory_order_release);
        shard.entries.emplace(key, std::move(node));
    }
}

void
DseEvaluator::setJournalSink(
    std::function<void(std::span<const Evaluation>)> sink)
{
    journalSink = std::move(sink);
}

std::size_t
DseEvaluator::evaluationCount() const
{
    // Count only completed simulations, mirroring allEvaluations():
    // nodes reserved by another thread's in-flight batch are excluded
    // from both, so the two views always reconcile.
    std::lock_guard<std::mutex> lock(orderMutex);
    std::size_t ready = 0;
    for (const Node *node : evaluationOrder) {
        if (node->ready.load(std::memory_order_acquire))
            ++ready;
    }
    return ready;
}

std::size_t
DseEvaluator::reservedCount() const
{
    std::lock_guard<std::mutex> lock(orderMutex);
    return evaluationOrder.size();
}

std::vector<Evaluation>
DseEvaluator::allEvaluations() const
{
    std::vector<const Node *> snapshot;
    {
        std::lock_guard<std::mutex> lock(orderMutex);
        snapshot = evaluationOrder;
    }
    std::vector<Evaluation> all;
    all.reserve(snapshot.size());
    for (const Node *node : snapshot) {
        // Skip nodes another thread is still simulating; completed
        // entries keep their first-request order.
        if (node->ready.load(std::memory_order_acquire))
            all.push_back(node->evaluation);
    }
    return all;
}

CacheStats
DseEvaluator::cacheStats() const
{
    CacheStats stats;
    stats.hits = hitCount.load(std::memory_order_relaxed);
    stats.misses = missCount.load(std::memory_order_relaxed);
    stats.inflightWaits =
        inflightWaitCount.load(std::memory_order_relaxed);
    return stats;
}

} // namespace autopilot::dse
