#include "dse/evaluator.h"

#include "power/npu_power.h"
#include "power/soc_power.h"
#include "systolic/engine.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

namespace
{

/** FNV-1a over the choice indices; selects the cache shard. */
std::size_t
encodingHash(const Encoding &encoding)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (int value : encoding) {
        hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(value));
        hash *= 0x100000001B3ull;
    }
    return static_cast<std::size_t>(hash);
}

} // namespace

DseEvaluator::DseEvaluator(const airlearning::PolicyDatabase &database,
                           airlearning::ObstacleDensity density)
    : policyDb(database), scenario(density)
{
}

DseEvaluator::Shard &
DseEvaluator::shardFor(const Encoding &encoding)
{
    return shards[encodingHash(encoding) % shardCount];
}

const DseEvaluator::Shard &
DseEvaluator::shardFor(const Encoding &encoding) const
{
    return shards[encodingHash(encoding) % shardCount];
}

const Evaluation &
DseEvaluator::evaluate(const Encoding &encoding)
{
    return *evaluateBatch(std::span<const Encoding>(&encoding, 1))
                .front()
                .evaluation;
}

std::vector<BatchResult>
DseEvaluator::evaluateBatch(std::span<const Encoding> encodings)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    const bool telemetry_on = telemetry.enabled();
    util::TraceSpan batch_span("dse.evaluateBatch", "dse");

    std::vector<BatchResult> results(encodings.size());

    // --- Reservation pass (request order, on the calling thread) ---
    // First occurrence of an uncached key inserts a not-yet-ready node
    // and claims it for this batch; everything else is a cache hit
    // (possibly on a node another thread is still simulating). Doing
    // this serially in request order is what makes the evaluation-order
    // sequence - and therefore allEvaluations() - deterministic for a
    // fixed request sequence.
    std::vector<Node *> claimed; // Ours to simulate, in request order.
    for (std::size_t i = 0; i < encodings.size(); ++i) {
        Shard &shard = shardFor(encodings[i]);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(encodings[i]);
        if (it == shard.entries.end()) {
            auto node = std::make_unique<Node>();
            node->evaluation.encoding = encodings[i];
            Node *raw = node.get();
            {
                std::lock_guard<std::mutex> orderLock(orderMutex);
                raw->sequence = evaluationOrder.size();
                evaluationOrder.push_back(raw);
            }
            shard.entries.emplace(encodings[i], std::move(node));
            claimed.push_back(raw);
            results[i] = {&raw->evaluation, true};
            missCount.fetch_add(1, std::memory_order_relaxed);
        } else {
            results[i] = {&it->second->evaluation, false};
            hitCount.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (telemetry_on && !encodings.empty()) {
        // Route the cache traffic through the registry at the same
        // granularity as the atomics, so the exported metrics CSV always
        // agrees with cacheStats().
        telemetry.metrics()
            .counter("dse.cache.miss")
            .add(claimed.size());
        telemetry.metrics()
            .counter("dse.cache.hit")
            .add(encodings.size() - claimed.size());
    }

    // --- Simulation pass (parallel over the claimed distinct points) ---
    util::Histogram *simulate_hist =
        telemetry_on
            ? &telemetry.metrics().histogram("dse.simulate_s")
            : nullptr;
    util::parallel_for(
        workers, claimed.size(),
        [this, &claimed, simulate_hist](std::size_t i) {
            Node *node = claimed[i];
            Evaluation evaluation;
            {
                util::TraceSpan span("dse.simulate", "dse");
                util::ScopedTimer timer(simulate_hist);
                evaluation = compute(node->evaluation.encoding);
            }
            Shard &shard = shardFor(evaluation.encoding);
            {
                std::lock_guard<std::mutex> lock(shard.mutex);
                node->evaluation = std::move(evaluation);
                node->ready.store(true, std::memory_order_release);
            }
            shard.ready.notify_all();
        });

    // --- Completion pass: wait out other threads' in-flight nodes ---
    // Our own claims are ready after the parallel_for join; a hit on a
    // node claimed by a concurrent batch may still be simulating.
    for (std::size_t i = 0; i < encodings.size(); ++i) {
        Shard &shard = shardFor(encodings[i]);
        std::unique_lock<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(encodings[i]);
        Node *node = it->second.get();
        if (!node->ready.load(std::memory_order_acquire)) {
            inflightWaitCount.fetch_add(1, std::memory_order_relaxed);
            if (telemetry_on) {
                telemetry.metrics()
                    .counter("dse.cache.inflight_wait")
                    .add();
            }
            shard.ready.wait(lock, [node] {
                return node->ready.load(std::memory_order_acquire);
            });
        }
    }

    return results;
}

std::size_t
DseEvaluator::evaluationCount() const
{
    std::lock_guard<std::mutex> lock(orderMutex);
    return evaluationOrder.size();
}

std::vector<Evaluation>
DseEvaluator::allEvaluations() const
{
    std::vector<const Node *> snapshot;
    {
        std::lock_guard<std::mutex> lock(orderMutex);
        snapshot = evaluationOrder;
    }
    std::vector<Evaluation> all;
    all.reserve(snapshot.size());
    for (const Node *node : snapshot) {
        // Skip nodes another thread is still simulating; completed
        // entries keep their first-request order.
        if (node->ready.load(std::memory_order_acquire))
            all.push_back(node->evaluation);
    }
    return all;
}

CacheStats
DseEvaluator::cacheStats() const
{
    CacheStats stats;
    stats.hits = hitCount.load(std::memory_order_relaxed);
    stats.misses = missCount.load(std::memory_order_relaxed);
    stats.inflightWaits =
        inflightWaitCount.load(std::memory_order_relaxed);
    return stats;
}

Evaluation
DseEvaluator::compute(const Encoding &encoding) const
{
    Evaluation evaluation;
    evaluation.encoding = encoding;
    evaluation.point = designSpace.decode(encoding);

    const auto record =
        policyDb.find(evaluation.point.policy, scenario);
    util::fatalIf(!record.has_value(),
                  "DseEvaluator: no Phase 1 record for policy " +
                      nn::policyName(evaluation.point.policy) +
                      " - run the trainer first");
    evaluation.successRate = record->successRate;

    const nn::Model model = nn::buildE2EModel(evaluation.point.policy);
    const systolic::AnalyticalEngine engine(evaluation.point.accel);
    const systolic::RunResult run = engine.run(model);

    const power::NpuPowerModel npu(evaluation.point.accel);
    evaluation.npuPowerW = npu.averagePowerW(run);
    evaluation.socPowerW =
        power::socPower(evaluation.npuPowerW).totalW();

    const double clock = evaluation.point.accel.clockGhz;
    evaluation.latencyMs = run.runtimeSeconds(clock) * 1e3;
    evaluation.fps = run.framesPerSecond(clock);

    evaluation.objectives = {1.0 - evaluation.successRate,
                             evaluation.socPowerW, evaluation.latencyMs};
    return evaluation;
}

} // namespace autopilot::dse
