#include "dse/evaluator.h"

#include "power/npu_power.h"
#include "power/soc_power.h"
#include "systolic/engine.h"
#include "util/logging.h"

namespace autopilot::dse
{

DseEvaluator::DseEvaluator(const airlearning::PolicyDatabase &database,
                           airlearning::ObstacleDensity density)
    : policyDb(database), scenario(density)
{
}

const Evaluation &
DseEvaluator::evaluate(const Encoding &encoding)
{
    auto it = cache.find(encoding);
    if (it == cache.end())
        it = cache.emplace(encoding, compute(encoding)).first;
    return it->second;
}

std::vector<Evaluation>
DseEvaluator::allEvaluations() const
{
    std::vector<Evaluation> all;
    all.reserve(cache.size());
    for (const auto &[encoding, evaluation] : cache)
        all.push_back(evaluation);
    return all;
}

Evaluation
DseEvaluator::compute(const Encoding &encoding) const
{
    Evaluation evaluation;
    evaluation.encoding = encoding;
    evaluation.point = designSpace.decode(encoding);

    const auto record =
        policyDb.find(evaluation.point.policy, scenario);
    util::fatalIf(!record.has_value(),
                  "DseEvaluator: no Phase 1 record for policy " +
                      nn::policyName(evaluation.point.policy) +
                      " - run the trainer first");
    evaluation.successRate = record->successRate;

    const nn::Model model = nn::buildE2EModel(evaluation.point.policy);
    const systolic::AnalyticalEngine engine(evaluation.point.accel);
    const systolic::RunResult run = engine.run(model);

    const power::NpuPowerModel npu(evaluation.point.accel);
    evaluation.npuPowerW = npu.averagePowerW(run);
    evaluation.socPowerW =
        power::socPower(evaluation.npuPowerW).totalW();

    const double clock = evaluation.point.accel.clockGhz;
    evaluation.latencyMs = run.runtimeSeconds(clock) * 1e3;
    evaluation.fps = run.framesPerSecond(clock);

    evaluation.objectives = {1.0 - evaluation.successRate,
                             evaluation.socPowerW, evaluation.latencyMs};
    return evaluation;
}

} // namespace autopilot::dse
