/**
 * @file
 * The joint algorithm/hardware design space of Table II, encoded for the
 * optimizers.
 *
 * A design point is a (policy hyperparameters, accelerator configuration)
 * pair. For the optimizers each point is a vector of eight choice indices:
 *
 *   [layers, filters, peRows, peCols, ifmapKb, filterKb, ofmapKb,
 *    precision]
 *
 * The precision dimension (operand bytes per element) defaults to the
 * single int8 choice, so legacy searches see exactly the seven-dimension
 * space they always did: size-1 dimensions draw no RNG samples and
 * contribute a constant-zero GP feature, keeping results bit-identical
 * to the pre-precision encoding.
 *
 * Index space (not raw values) is also what the Gaussian process sees,
 * normalized to [0, 1] per dimension - the power-of-two hardware choices
 * then become log-scaled features, which is the right geometry for the SE
 * kernel.
 */

#ifndef AUTOPILOT_DSE_DESIGN_SPACE_H
#define AUTOPILOT_DSE_DESIGN_SPACE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/e2e_template.h"
#include "systolic/config.h"
#include "util/rng.h"

namespace autopilot::dse
{

/** Number of encoded dimensions. */
constexpr std::size_t designDims = 8;

/** Encoded dimension holding the operand precision choice index. */
constexpr std::size_t precisionDim = 7;

/** Choice-index encoding of one design point. */
using Encoding = std::array<int, designDims>;

/**
 * FNV-1a over the choice indices: the one hash used everywhere an
 * encoding is keyed (evaluator cache sharding, unordered containers).
 * Stable across runs, so shard assignment is deterministic.
 */
std::size_t hashEncoding(const Encoding &encoding);

/** One joint algorithm/hardware design point. */
struct DesignPoint
{
    nn::PolicyHyperParams policy;
    systolic::AcceleratorConfig accel;

    /** Short identifier combining policy and accelerator names. */
    std::string name() const;

    bool operator==(const DesignPoint &other) const = default;
};

/** The joint design space with encode/decode and sampling helpers. */
class DesignSpace
{
  public:
    /** Default space per Table II: precision pinned to int8. */
    DesignSpace();

    /**
     * Space with a configurable precision axis. @p precisionChoices must
     * be non-empty, strictly ascending operand widths drawn from
     * {1, 2, 4} (fatal otherwise). {1} reproduces the default space.
     */
    explicit DesignSpace(const std::vector<int> &precisionChoices);

    /** Number of legal values in each encoded dimension. */
    const std::array<int, designDims> &dimensionSizes() const
    {
        return dimSizes;
    }

    /** Legal operand widths on the precision axis (ascending). */
    const std::vector<int> &precisionChoices() const
    {
        return hwSpace.bytesPerElementChoices;
    }

    /** True when more than one precision is searchable (non-default). */
    bool precisionAxisEnabled() const
    {
        return hwSpace.bytesPerElementChoices.size() > 1;
    }

    /** Total number of design points. */
    std::int64_t cardinality() const;

    /** Decode choice indices into a design point (fatal on range error). */
    DesignPoint decode(const Encoding &encoding) const;

    /** Encode a design point (fatal when a value is not a legal choice). */
    Encoding encode(const DesignPoint &point) const;

    /** Uniform random encoding. */
    Encoding randomEncoding(util::Rng &rng) const;

    /**
     * A neighbouring encoding: one searchable dimension stepped by +/-1
     * (used by simulated annealing); clamped to the legal range.
     * Dimensions with a single legal value are never picked - stepping
     * them could only self-move, burning annealer budget - so the
     * proposal always differs from the input whenever any dimension has
     * at least two choices.
     */
    Encoding neighbor(const Encoding &encoding, util::Rng &rng) const;

    /** Normalized [0,1]^8 feature vector for the GP surrogate; size-1
     *  dimensions contribute a constant 0. */
    std::vector<double> features(const Encoding &encoding) const;

  private:
    nn::PolicySpace policySpace;
    systolic::HardwareSpace hwSpace;
    std::array<int, designDims> dimSizes;

    int indexOf(const std::vector<int> &choices, int value,
                const char *what) const;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_DESIGN_SPACE_H
