/**
 * @file
 * The Phase 2 evaluation record and its fidelity tag.
 *
 * Split out of evaluator.h so the cost-model backend layer
 * (eval_backend.h) and the memoizing evaluator can share the record
 * without an include cycle.
 */

#ifndef AUTOPILOT_DSE_EVALUATION_H
#define AUTOPILOT_DSE_EVALUATION_H

#include <string>

#include "dse/design_space.h"
#include "dse/pareto.h"

namespace autopilot::dse
{

/**
 * Which cost model produced an evaluation's archived numbers.
 *
 * Mixed appears only as a backend-level label (TieredBackend); every
 * individual Evaluation is either Analytical or CycleAccurate.
 */
enum class Fidelity
{
    Analytical,    ///< Closed-form engine (max(compute, DRAM) + latency).
    CycleAccurate, ///< Cycle-stepped prefetch/writeback timeline.
    BankAccurate,  ///< Cycle timeline over the bank-level DRAM channel.
    Mixed,         ///< Backend mixes fidelities per point (tiered).
};

/** Stable lowercase label ("analytical", "cycle", "bank", "mixed"). */
std::string fidelityName(Fidelity fidelity);

/** Inverse of fidelityName (fatal on an unknown label). */
Fidelity fidelityFromName(const std::string &name);

/**
 * Non-fatal inverse of fidelityName: store the value and return true,
 * or leave @p fidelity untouched and return false on an unknown label.
 * Used by tolerant readers (journal replay) that must diagnose corrupt
 * rows instead of aborting.
 */
bool tryFidelityFromName(const std::string &name, Fidelity &fidelity);

/** Full evaluation of one design point. */
struct Evaluation
{
    Encoding encoding{};
    DesignPoint point;
    double successRate = 0.0;
    double npuPowerW = 0.0;
    double socPowerW = 0.0;
    double latencyMs = 0.0;
    double fps = 0.0;
    Objectives objectives; ///< {1 - success, socPowerW, latencyMs}.
    /// Cost model that produced the performance/power numbers above.
    Fidelity fidelity = Fidelity::Analytical;
    /// Registry name of the backend that archived this record.
    std::string backend = "analytical";
    /// Background DRAM traffic (bytes/s) the evaluation was costed
    /// under (shared-channel contention; 0 = NPU owns the channel).
    /// Archived so a resumed contention run replays the profile its
    /// journal was written with.
    double contentionBytesPerSec = 0.0;
    /// Mission-mix label of the campaign that archived this record
    /// (uav::MissionMix::tag()): "-" for the legacy single-scenario
    /// workload, else the '+'-joined scenario names. CSV-safe by
    /// construction (scenario names are [a-z0-9_-]).
    std::string scenario = "-";
    /// Bank-level DRAM channel the evaluation was costed under
    /// (dram::DramSpec::tag()): "-" when bank simulation was off (every
    /// non-dram backend, and a dram backend with no traffic
    /// generators), else the compact channel tag. CSV-safe by
    /// construction.
    std::string dramKey = "-";
    /// Operand precision label (systolic::precisionName) when the
    /// precision axis is searchable: "-" for legacy single-precision
    /// runs (which also selects the legacy archive layout), else
    /// "int8"/"fp16"/"fp32". CSV-safe by construction.
    std::string precision = "-";
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_EVALUATION_H
