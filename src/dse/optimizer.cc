#include "dse/optimizer.h"

#include "dse/annealing.h"
#include "dse/bayesopt.h"
#include "dse/genetic.h"
#include "dse/hypervolume.h"
#include "dse/random_search.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

const std::vector<std::string> &
optimizerNames()
{
    static const std::vector<std::string> names = {"bo", "nsga2", "sa",
                                                   "random"};
    return names;
}

std::unique_ptr<Optimizer>
makeOptimizer(const std::string &name)
{
    if (name == "bo")
        return std::make_unique<BayesOpt>();
    if (name == "nsga2")
        return std::make_unique<GeneticAlgorithm>();
    if (name == "sa")
        return std::make_unique<SimulatedAnnealing>();
    if (name == "random")
        return std::make_unique<RandomSearch>();
    std::string known;
    for (const std::string &candidate : optimizerNames())
        known += (known.empty() ? "" : ", ") + candidate;
    util::fatal("makeOptimizer: unknown optimizer '" + name +
                "' (known: " + known + ")");
    return nullptr;
}

std::vector<std::size_t>
OptimizerResult::frontIndices() const
{
    std::vector<Objectives> points;
    points.reserve(archive.size());
    for (const Evaluation &evaluation : archive)
        points.push_back(evaluation.objectives);
    return paretoFrontIndices(points);
}

std::vector<Evaluation>
OptimizerResult::front() const
{
    std::vector<Evaluation> out;
    for (std::size_t index : frontIndices())
        out.push_back(archive[index]);
    return out;
}

double
OptimizerResult::finalHypervolume(const Objectives &reference) const
{
    std::vector<Objectives> points;
    points.reserve(archive.size());
    for (const Evaluation &evaluation : archive)
        points.push_back(evaluation.objectives);
    return hypervolume(points, reference);
}

bool
recordEvaluation(DseEvaluator &evaluator, const Encoding &encoding,
                 const OptimizerConfig &config, OptimizerResult &result)
{
    return recordEvaluations(evaluator,
                             std::span<const Encoding>(&encoding, 1),
                             config, result, 1) == 1;
}

int
recordEvaluations(DseEvaluator &evaluator,
                  std::span<const Encoding> encodings,
                  const OptimizerConfig &config, OptimizerResult &result,
                  int maxNewPoints)
{
    const std::vector<BatchResult> batch =
        evaluator.evaluateBatch(encodings);

    util::Telemetry &telemetry = util::Telemetry::instance();
    util::Histogram *hv_hist =
        telemetry.enabled()
            ? &telemetry.metrics().histogram("dse.hv_update_s")
            : nullptr;

    int recorded = 0;
    for (const BatchResult &entry : batch) {
        if (!entry.fresh || recorded >= maxNewPoints)
            continue;
        result.archive.push_back(*entry.evaluation);
        {
            util::ScopedTimer timer(hv_hist);
            result.hypervolumeHistory.push_back(
                result.finalHypervolume(config.referencePoint));
        }
        ++recorded;
    }
    return recorded;
}

} // namespace autopilot::dse
