#include "dse/optimizer.h"

#include "dse/hypervolume.h"

namespace autopilot::dse
{

std::vector<std::size_t>
OptimizerResult::frontIndices() const
{
    std::vector<Objectives> points;
    points.reserve(archive.size());
    for (const Evaluation &evaluation : archive)
        points.push_back(evaluation.objectives);
    return paretoFrontIndices(points);
}

std::vector<Evaluation>
OptimizerResult::front() const
{
    std::vector<Evaluation> out;
    for (std::size_t index : frontIndices())
        out.push_back(archive[index]);
    return out;
}

double
OptimizerResult::finalHypervolume(const Objectives &reference) const
{
    std::vector<Objectives> points;
    points.reserve(archive.size());
    for (const Evaluation &evaluation : archive)
        points.push_back(evaluation.objectives);
    return hypervolume(points, reference);
}

bool
recordEvaluation(DseEvaluator &evaluator, const Encoding &encoding,
                 const OptimizerConfig &config, OptimizerResult &result)
{
    const std::size_t before = evaluator.evaluationCount();
    const Evaluation &evaluation = evaluator.evaluate(encoding);
    if (evaluator.evaluationCount() == before)
        return false; // Memoized repeat.

    result.archive.push_back(evaluation);
    result.hypervolumeHistory.push_back(
        result.finalHypervolume(config.referencePoint));
    return true;
}

} // namespace autopilot::dse
