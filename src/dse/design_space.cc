#include "dse/design_space.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::dse
{

using util::fatalIf;

std::size_t
hashEncoding(const Encoding &encoding)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (int value : encoding) {
        hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(value));
        hash *= 0x100000001B3ull;
    }
    return static_cast<std::size_t>(hash);
}

std::string
DesignPoint::name() const
{
    return nn::policyName(policy) + "__" + accel.name();
}

DesignSpace::DesignSpace()
{
    dimSizes = {static_cast<int>(policySpace.layerChoices.size()),
                static_cast<int>(policySpace.filterChoices.size()),
                static_cast<int>(hwSpace.peRowChoices.size()),
                static_cast<int>(hwSpace.peColChoices.size()),
                static_cast<int>(hwSpace.sramKbChoices.size()),
                static_cast<int>(hwSpace.sramKbChoices.size()),
                static_cast<int>(hwSpace.sramKbChoices.size()),
                static_cast<int>(hwSpace.bytesPerElementChoices.size())};
}

DesignSpace::DesignSpace(const std::vector<int> &precisionChoices)
{
    fatalIf(precisionChoices.empty(),
            "DesignSpace: precision choice list must not be empty");
    int previous = 0;
    for (const int width : precisionChoices) {
        fatalIf(width != 1 && width != 2 && width != 4,
                "DesignSpace: unsupported precision width " +
                    std::to_string(width) + " bytes (want 1, 2 or 4)");
        fatalIf(width <= previous,
                "DesignSpace: precision choices must be strictly "
                "ascending");
        previous = width;
    }
    hwSpace.bytesPerElementChoices = precisionChoices;
    dimSizes = {static_cast<int>(policySpace.layerChoices.size()),
                static_cast<int>(policySpace.filterChoices.size()),
                static_cast<int>(hwSpace.peRowChoices.size()),
                static_cast<int>(hwSpace.peColChoices.size()),
                static_cast<int>(hwSpace.sramKbChoices.size()),
                static_cast<int>(hwSpace.sramKbChoices.size()),
                static_cast<int>(hwSpace.sramKbChoices.size()),
                static_cast<int>(hwSpace.bytesPerElementChoices.size())};
}

std::int64_t
DesignSpace::cardinality() const
{
    std::int64_t total = 1;
    for (int size : dimSizes)
        total *= size;
    return total;
}

DesignPoint
DesignSpace::decode(const Encoding &encoding) const
{
    for (std::size_t d = 0; d < designDims; ++d) {
        fatalIf(encoding[d] < 0 || encoding[d] >= dimSizes[d],
                "DesignSpace::decode: index out of range");
    }
    DesignPoint point;
    point.policy.numConvLayers = policySpace.layerChoices[encoding[0]];
    point.policy.numFilters = policySpace.filterChoices[encoding[1]];
    point.accel.peRows = hwSpace.peRowChoices[encoding[2]];
    point.accel.peCols = hwSpace.peColChoices[encoding[3]];
    point.accel.ifmapSramKb = hwSpace.sramKbChoices[encoding[4]];
    point.accel.filterSramKb = hwSpace.sramKbChoices[encoding[5]];
    point.accel.ofmapSramKb = hwSpace.sramKbChoices[encoding[6]];
    point.accel.bytesPerElement =
        hwSpace.bytesPerElementChoices[encoding[precisionDim]];
    return point;
}

int
DesignSpace::indexOf(const std::vector<int> &choices, int value,
                     const char *what) const
{
    const auto it = std::find(choices.begin(), choices.end(), value);
    fatalIf(it == choices.end(),
            std::string("DesignSpace::encode: illegal value for ") + what);
    return static_cast<int>(it - choices.begin());
}

Encoding
DesignSpace::encode(const DesignPoint &point) const
{
    Encoding encoding;
    encoding[0] = indexOf(policySpace.layerChoices,
                          point.policy.numConvLayers, "layers");
    encoding[1] = indexOf(policySpace.filterChoices,
                          point.policy.numFilters, "filters");
    encoding[2] = indexOf(hwSpace.peRowChoices, point.accel.peRows,
                          "peRows");
    encoding[3] = indexOf(hwSpace.peColChoices, point.accel.peCols,
                          "peCols");
    encoding[4] = indexOf(hwSpace.sramKbChoices, point.accel.ifmapSramKb,
                          "ifmapSramKb");
    encoding[5] = indexOf(hwSpace.sramKbChoices, point.accel.filterSramKb,
                          "filterSramKb");
    encoding[6] = indexOf(hwSpace.sramKbChoices, point.accel.ofmapSramKb,
                          "ofmapSramKb");
    encoding[precisionDim] = indexOf(hwSpace.bytesPerElementChoices,
                                     point.accel.bytesPerElement,
                                     "bytesPerElement");
    return encoding;
}

Encoding
DesignSpace::randomEncoding(util::Rng &rng) const
{
    // Size-1 dimensions draw nothing: the RNG stream (and therefore every
    // downstream result) matches the legacy 7-dimension space whenever
    // the precision axis is pinned to a single choice.
    Encoding encoding;
    for (std::size_t d = 0; d < designDims; ++d)
        encoding[d] = dimSizes[d] > 1 ? rng.uniformInt(0, dimSizes[d] - 1)
                                      : 0;
    return encoding;
}

Encoding
DesignSpace::neighbor(const Encoding &encoding, util::Rng &rng) const
{
    // Propose only along dimensions with at least two legal values: a
    // size-1 dimension clamps to itself in both directions, so stepping
    // it would return the input unchanged and the annealer would burn
    // budget re-evaluating its current point. With the default space the
    // searchable set is exactly the legacy seven dimensions, so the RNG
    // draw sequence (and every accepted move) is unchanged.
    std::array<std::size_t, designDims> searchable;
    std::size_t searchableCount = 0;
    for (std::size_t d = 0; d < designDims; ++d) {
        if (dimSizes[d] > 1)
            searchable[searchableCount++] = d;
    }
    if (searchableCount == 0)
        return encoding; // Degenerate one-point space: nowhere to move.

    Encoding next = encoding;
    const std::size_t dim = searchable[rng.index(searchableCount)];
    const int step = rng.bernoulli(0.5) ? 1 : -1;
    next[dim] = std::clamp(next[dim] + step, 0, dimSizes[dim] - 1);
    if (next[dim] == encoding[dim]) {
        // Clamped at a boundary: step the other way so the proposal always
        // moves.
        next[dim] = std::clamp(encoding[dim] - step, 0, dimSizes[dim] - 1);
    }
    return next;
}

std::vector<double>
DesignSpace::features(const Encoding &encoding) const
{
    std::vector<double> features(designDims, 0.0);
    for (std::size_t d = 0; d < designDims; ++d) {
        features[d] = dimSizes[d] > 1
                          ? static_cast<double>(encoding[d]) /
                                (dimSizes[d] - 1)
                          : 0.0;
    }
    return features;
}

} // namespace autopilot::dse
