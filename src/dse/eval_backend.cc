#include "dse/eval_backend.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "airlearning/quantization.h"
#include "dram/engine.h"
#include "dse/hypervolume.h"
#include "nn/e2e_template.h"
#include "power/npu_power.h"
#include "power/soc_power.h"
#include "systolic/compiled_plan.h"
#include "systolic/cycle_engine.h"
#include "systolic/engine.h"
#include "util/arena.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

namespace
{

/**
 * Shared evaluation path: look up the Phase 1 success rate, run the
 * policy on @p engine, and lower the run through the NPU/SoC power
 * stack. Exactly the historical DseEvaluator::compute() sequence, so
 * the analytical backend stays bit-identical to the pre-backend
 * evaluator.
 */
Evaluation
evaluateWithEngine(const systolic::Engine &engine,
                   const DesignPoint &point, const BackendContext &ctx,
                   double backgroundBytesPerSec = 0.0)
{
    Evaluation evaluation;
    evaluation.point = point;

    const auto record = ctx.database->find(point.policy, ctx.density);
    util::fatalIf(!record.has_value(),
                  "EvalBackend: no Phase 1 record for policy " +
                      nn::policyName(point.policy) +
                      " - run the trainer first");
    // The Phase 1 record is int8-validated; deploying at a wider
    // precision recovers part of the quantization penalty (verbatim
    // pass-through at the int8 default).
    evaluation.successRate = airlearning::quantizedSuccessRate(
        record->successRate, point.policy, point.accel.bytesPerElement);

    const nn::Model model = nn::buildE2EModel(point.policy);
    const systolic::RunResult run = engine.run(model);

    const power::NpuPowerModel npu(point.accel);
    evaluation.npuPowerW = npu.averagePowerW(run, backgroundBytesPerSec);
    evaluation.socPowerW =
        power::socPower(evaluation.npuPowerW).totalW();

    const double clock = point.accel.clockGhz;
    evaluation.latencyMs = run.runtimeSeconds(clock) * 1e3;
    evaluation.fps = run.framesPerSecond(clock);

    evaluation.objectives = {1.0 - evaluation.successRate,
                             evaluation.socPowerW, evaluation.latencyMs};
    return evaluation;
}

void
checkContext(const BackendContext &context, const char *who)
{
    util::fatalIf(context.database == nullptr,
                  std::string(who) + ": BackendContext has no policy "
                                     "database");
}

/**
 * Per-worker scratch for the SoA batch kernel. One arena per thread
 * keeps the bump path lock-free; after the first few chunks each
 * worker's arena is warm and batch evaluation stops touching the heap.
 */
util::Arena &
scratchArena()
{
    static thread_local util::Arena arena(256 * 1024);
    return arena;
}

/**
 * Chunk size of the batched analytical path: large enough to amortize
 * the per-chunk arena reset and SoA setup, small enough that a
 * DSE-sized batch still spreads across pool workers.
 */
constexpr std::size_t kAnalyticalChunk = 32;

} // namespace

// ------------------------------------------------------------ interface ----

void
EvalBackend::warmStart(std::span<const Evaluation> /*replayed*/)
{
    // Stateless backends have nothing to restore.
}

void
EvalBackend::evaluateBatch(std::span<const DesignPoint> points,
                           util::ThreadPool *pool, const CommitFn &commit)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    util::Histogram *simulate_hist =
        telemetry.enabled()
            ? &telemetry.metrics().histogram("dse.simulate_s")
            : nullptr;
    if (telemetry.enabled() && !points.empty()) {
        telemetry.metrics()
            .counter("dse.backend." + name() + ".points")
            .add(points.size());
    }
    util::parallel_for(pool, points.size(), [&](std::size_t i) {
        Evaluation evaluation;
        {
            util::TraceSpan span("dse.simulate", "dse");
            util::ScopedTimer timer(simulate_hist);
            evaluation = evaluate(points[i]);
        }
        commit(i, std::move(evaluation));
    });
}

// ------------------------------------------------------------- registry ----

BackendRegistry::BackendRegistry()
{
    factories["analytical"] = [](const BackendContext &context) {
        return std::make_unique<AnalyticalBackend>(context);
    };
    factories["quantized"] = [](const BackendContext &context) {
        return std::make_unique<QuantizedBackend>(context);
    };
    factories["cycle"] = [](const BackendContext &context) {
        return std::make_unique<CycleBackend>(context);
    };
    factories["tiered"] = [](const BackendContext &context) {
        return std::make_unique<TieredBackend>(context);
    };
    factories["contention"] = [](const BackendContext &context) {
        return std::make_unique<ContentionBackend>(context);
    };
    factories["dram"] = [](const BackendContext &context) {
        return std::make_unique<DramBackend>(context);
    };
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::registerFactory(const std::string &name, Factory factory)
{
    std::lock_guard<std::mutex> lock(mutex);
    factories[name] = std::move(factory);
}

bool
BackendRegistry::knows(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    return factories.count(name) != 0;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::string> out;
    out.reserve(factories.size());
    for (const auto &[name, factory] : factories)
        out.push_back(name);
    return out;
}

std::unique_ptr<EvalBackend>
BackendRegistry::create(const std::string &name,
                        const BackendContext &context) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = factories.find(name);
        if (it != factories.end())
            factory = it->second;
    }
    if (!factory) {
        std::string known;
        for (const std::string &candidate : names())
            known += (known.empty() ? "" : ", ") + candidate;
        util::fatal("BackendRegistry: unknown backend '" + name +
                    "' (registered: " + known + ")");
    }
    return factory(context);
}

std::unique_ptr<EvalBackend>
makeBackend(const std::string &name, const BackendContext &context)
{
    return BackendRegistry::instance().create(name, context);
}

// ----------------------------------------------------- concrete backends ----

/// Compiled plans keyed by (numConvLayers, numFilters). The policy
/// space is tiny (27 combinations), so the cache never evicts; plans
/// are built on first use behind the mutex and read lock-free via
/// stable pointers afterwards.
struct AnalyticalBackend::PlanCache
{
    std::mutex mutex;
    std::map<std::pair<int, int>,
             std::unique_ptr<systolic::CompiledModelPlan>>
        byPolicy;
};

AnalyticalBackend::AnalyticalBackend(const BackendContext &context)
    : ctx(context), plans(std::make_unique<PlanCache>())
{
    checkContext(ctx, "AnalyticalBackend");
}

AnalyticalBackend::~AnalyticalBackend() = default;

Evaluation
AnalyticalBackend::evaluate(const DesignPoint &point)
{
    // The scalar reference path: a fresh engine per point, exactly the
    // historical compute() sequence. The batch path below must stay
    // bit-identical to this (test_batch_kernel.cc pins it).
    const systolic::AnalyticalEngine engine(point.accel);
    Evaluation evaluation = evaluateWithEngine(engine, point, ctx);
    evaluation.fidelity = Fidelity::Analytical;
    evaluation.backend = name();
    return evaluation;
}

void
AnalyticalBackend::batchEvaluate(std::span<const DesignPoint> points,
                                 util::ThreadPool *pool,
                                 const CommitFn &commit,
                                 util::Histogram *chunk_hist,
                                 const char *span_name)
{
    if (points.empty())
        return;

    // --- Group by policy (first-appearance order; <= 27 groups) ---
    // One database lookup and one compiled plan per distinct policy
    // instead of per point.
    struct Group
    {
        const systolic::CompiledModelPlan *plan = nullptr;
        double successRate = 0.0;
        std::vector<std::uint32_t> indices;
    };
    std::vector<Group> groups;
    std::map<std::pair<int, int>, std::size_t> groupIndex;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const nn::PolicyHyperParams &policy = points[i].policy;
        const std::pair<int, int> key{policy.numConvLayers,
                                      policy.numFilters};
        auto [it, inserted] = groupIndex.try_emplace(key, groups.size());
        if (inserted) {
            Group group;
            const auto record = ctx.database->find(policy, ctx.density);
            util::fatalIf(!record.has_value(),
                          "EvalBackend: no Phase 1 record for policy " +
                              nn::policyName(policy) +
                              " - run the trainer first");
            group.successRate = record->successRate;
            {
                std::lock_guard<std::mutex> lock(plans->mutex);
                auto &slot = plans->byPolicy[key];
                if (!slot) {
                    slot = std::make_unique<systolic::CompiledModelPlan>(
                        systolic::CompiledModelPlan::compile(
                            nn::buildE2EModel(policy)));
                }
                group.plan = slot.get();
            }
            groups.push_back(std::move(group));
        }
        groups[it->second].indices.push_back(
            static_cast<std::uint32_t>(i));
    }

    // --- Chunked fan-out: each chunk runs the SoA kernel over its
    // slice from a thread-local arena ---
    struct Chunk
    {
        std::uint32_t group = 0;
        std::uint32_t begin = 0;
        std::uint32_t end = 0;
    };
    std::vector<Chunk> chunks;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const std::size_t n = groups[g].indices.size();
        for (std::size_t b = 0; b < n; b += kAnalyticalChunk) {
            chunks.push_back(
                {static_cast<std::uint32_t>(g),
                 static_cast<std::uint32_t>(b),
                 static_cast<std::uint32_t>(
                     std::min(n, b + kAnalyticalChunk))});
        }
    }

    util::parallel_for(pool, chunks.size(), [&](std::size_t ci) {
        const Chunk &chunk = chunks[ci];
        const Group &group = groups[chunk.group];
        const std::size_t count = chunk.end - chunk.begin;

        util::TraceSpan span(span_name, "dse");
        util::ScopedTimer timer(chunk_hist);

        util::Arena &arena = scratchArena();
        arena.reset();
        const std::span<systolic::AcceleratorConfig> configs =
            arena.allocate<systolic::AcceleratorConfig>(count);
        for (std::size_t j = 0; j < count; ++j)
            configs[j] = points[group.indices[chunk.begin + j]].accel;

        const systolic::BatchRunView run =
            systolic::evaluatePlanBatch(*group.plan, configs, arena);
        const std::span<double> npu_w = arena.allocate<double>(count);
        const std::span<double> soc_w = arena.allocate<double>(count);
        power::batchNpuSocPowerW(configs, run.totalMacs, run.totalCycles,
                                 run.traffic, npu_w, soc_w);

        for (std::size_t j = 0; j < count; ++j) {
            const std::size_t i = group.indices[chunk.begin + j];
            Evaluation evaluation;
            evaluation.point = points[i];
            // Per point, not per group: the group shares a policy but
            // its points may carry different precisions. Verbatim at
            // int8, so the batch path stays bit-identical to scalar.
            evaluation.successRate = airlearning::quantizedSuccessRate(
                group.successRate, points[i].policy,
                points[i].accel.bytesPerElement);
            evaluation.npuPowerW = npu_w[j];
            evaluation.socPowerW = soc_w[j];
            // Same expressions as RunResult::runtimeSeconds /
            // framesPerSecond at this clock.
            const double seconds =
                static_cast<double>(run.totalCycles[j]) /
                (points[i].accel.clockGhz * 1e9);
            evaluation.latencyMs = seconds * 1e3;
            evaluation.fps = seconds > 0.0 ? 1.0 / seconds : 0.0;
            evaluation.objectives = {1.0 - evaluation.successRate,
                                     evaluation.socPowerW,
                                     evaluation.latencyMs};
            evaluation.fidelity = Fidelity::Analytical;
            evaluation.backend = name();
            commit(i, std::move(evaluation));
        }
    });
}

void
AnalyticalBackend::evaluateBatch(std::span<const DesignPoint> points,
                                 util::ThreadPool *pool,
                                 const CommitFn &commit)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    util::Histogram *simulate_hist =
        telemetry.enabled()
            ? &telemetry.metrics().histogram("dse.simulate_s")
            : nullptr;
    if (telemetry.enabled() && !points.empty()) {
        telemetry.metrics()
            .counter("dse.backend." + name() + ".points")
            .add(points.size());
    }
    batchEvaluate(points, pool, commit, simulate_hist, "dse.simulate");
}

void
AnalyticalBackend::screenBatch(std::span<const DesignPoint> points,
                               util::ThreadPool *pool,
                               std::span<Evaluation> out,
                               util::Histogram *screen_hist)
{
    util::panicIf(out.size() != points.size(),
                  "AnalyticalBackend::screenBatch: output size mismatch");
    batchEvaluate(
        points, pool,
        [&out](std::size_t i, Evaluation &&evaluation) {
            out[i] = std::move(evaluation);
        },
        screen_hist, "dse.screen");
}

// ------------------------------------------------------------- quantized ----

QuantizedBackend::QuantizedBackend(const BackendContext &context)
    : AnalyticalBackend(context)
{
}

void
QuantizedBackend::evaluateBatch(std::span<const DesignPoint> points,
                                util::ThreadPool *pool,
                                const CommitFn &commit)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled() && !points.empty()) {
        // Per-precision spread of the batch: how the search splits its
        // budget across the int8/fp16/fp32 axis.
        std::map<int, std::uint64_t> perWidth;
        for (const DesignPoint &point : points)
            ++perWidth[point.accel.bytesPerElement];
        for (const auto &[width, count] : perWidth) {
            telemetry.metrics()
                .counter("dse.quantized." +
                         systolic::precisionName(width) + ".points")
                .add(count);
        }
    }
    AnalyticalBackend::evaluateBatch(points, pool, commit);
}

CycleBackend::CycleBackend(const BackendContext &context) : ctx(context)
{
    checkContext(ctx, "CycleBackend");
}

Evaluation
CycleBackend::evaluate(const DesignPoint &point)
{
    const systolic::CycleEngine engine(point.accel);
    Evaluation evaluation = evaluateWithEngine(engine, point, ctx);
    evaluation.fidelity = Fidelity::CycleAccurate;
    evaluation.backend = name();
    return evaluation;
}

// ------------------------------------------------------------ contention ----

ContentionBackend::ContentionBackend(const BackendContext &context)
    : ctx(context)
{
    checkContext(ctx, "ContentionBackend");
    ctx.contention.validate();
}

Evaluation
ContentionBackend::evaluate(const DesignPoint &point)
{
    const systolic::CycleEngine engine(point.accel, ctx.contention);
    Evaluation evaluation = evaluateWithEngine(
        engine, point, ctx, ctx.contention.totalBytesPerSec());
    evaluation.fidelity = Fidelity::CycleAccurate;
    evaluation.backend = name();
    evaluation.contentionBytesPerSec = ctx.contention.totalBytesPerSec();
    return evaluation;
}

void
ContentionBackend::evaluateBatch(std::span<const DesignPoint> points,
                                 util::ThreadPool *pool,
                                 const CommitFn &commit)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled() && !points.empty()) {
        telemetry.metrics()
            .gauge("dse.backend.contention.background_bps")
            .set(static_cast<std::int64_t>(
                ctx.contention.totalBytesPerSec()));
    }
    EvalBackend::evaluateBatch(points, pool, commit);
}

// ------------------------------------------------------------------ dram ----

DramBackend::DramBackend(const BackendContext &context) : ctx(context)
{
    checkContext(ctx, "DramBackend");
    // Fatal with the human-readable infeasibleReason diagnosis on
    // degenerate timing (zero banks, zero tRP/tRCD, refresh interval
    // inside the refresh stall, ...) - never simulated into NaN or
    // infinite latency.
    ctx.dram.validate();
    for (const dram::TrafficGeneratorSpec &generator :
         ctx.dram.generators)
        genSpanNames.push_back("dram.gen." + generator.name);
}

Evaluation
DramBackend::evaluate(const DesignPoint &point)
{
    const dram::DramCycleEngine engine(point.accel, ctx.dram);

    if (!ctx.dram.enabled()) {
        // No generators: the engine IS the pure-cycle path and power
        // takes the plain flat path - bit-identical to CycleBackend
        // (the bank-model-vs-contention consistency contract).
        Evaluation evaluation = evaluateWithEngine(engine, point, ctx);
        evaluation.fidelity = Fidelity::CycleAccurate;
        evaluation.backend = name();
        return evaluation;
    }

    util::Telemetry &telemetry = util::Telemetry::instance();
    // Per-generator trace spans around the simulated evaluation, named
    // by stream so a trace shows which background load shaped this run.
    std::vector<std::unique_ptr<util::TraceSpan>> genSpans;
    if (telemetry.enabled()) {
        for (const std::string &spanName : genSpanNames) {
            genSpans.push_back(std::make_unique<util::TraceSpan>(
                spanName.c_str(), "dram"));
        }
    }

    Evaluation evaluation;
    evaluation.point = point;

    const auto record = ctx.database->find(point.policy, ctx.density);
    util::fatalIf(!record.has_value(),
                  "EvalBackend: no Phase 1 record for policy " +
                      nn::policyName(point.policy) +
                      " - run the trainer first");
    evaluation.successRate = airlearning::quantizedSuccessRate(
        record->successRate, point.policy, point.accel.bytesPerElement);

    const nn::Model model = nn::buildE2EModel(point.policy);
    const systolic::RunResult run = engine.run(model);
    const double clock = point.accel.clockGhz;
    const double seconds = run.runtimeSeconds(clock);

    // Power: the plain stack with ZERO flat background surcharge - the
    // background streams are billed below through the commands they
    // actually issued, never twice (the ContentionProfile/DramModel
    // double-charging fix).
    const power::NpuPowerModel npu(point.accel);
    power::NpuPowerBreakdown breakdown = npu.estimate(run, 0.0);
    const dram::ChannelStats &stats = engine.runStats();
    const power::DramCommandCounts counts{stats.activates,
                                          stats.precharges,
                                          stats.refreshes,
                                          stats.totalBytes()};
    breakdown.dramW =
        power::DramModel().commandPowerMw(counts, seconds) * 1e-3;

    evaluation.npuPowerW = breakdown.totalW();
    evaluation.socPowerW = power::socPower(evaluation.npuPowerW).totalW();
    evaluation.latencyMs = seconds * 1e3;
    evaluation.fps = run.framesPerSecond(clock);
    evaluation.objectives = {1.0 - evaluation.successRate,
                             evaluation.socPowerW, evaluation.latencyMs};
    evaluation.fidelity = Fidelity::BankAccurate;
    evaluation.backend = name();
    evaluation.dramKey = ctx.dram.tag();

    rowHits_.fetch_add(stats.rowHits, std::memory_order_relaxed);
    rowMisses_.fetch_add(stats.rowMisses, std::memory_order_relaxed);
    rowConflicts_.fetch_add(stats.rowConflicts,
                            std::memory_order_relaxed);
    refreshes_.fetch_add(stats.refreshes, std::memory_order_relaxed);
    activates_.fetch_add(stats.activates, std::memory_order_relaxed);
    channelBytes_.fetch_add(stats.totalBytes(),
                            std::memory_order_relaxed);

    if (telemetry.enabled()) {
        util::MetricsRegistry &metrics = telemetry.metrics();
        metrics.counter("dse.dram.row_hits")
            .add(static_cast<std::uint64_t>(stats.rowHits));
        metrics.counter("dse.dram.row_misses")
            .add(static_cast<std::uint64_t>(stats.rowMisses));
        metrics.counter("dse.dram.row_conflicts")
            .add(static_cast<std::uint64_t>(stats.rowConflicts));
        metrics.counter("dse.dram.refreshes")
            .add(static_cast<std::uint64_t>(stats.refreshes));
        for (const dram::GeneratorStats &slice : stats.generators) {
            metrics.counter("dse.dram.gen." + slice.name + ".requests")
                .add(static_cast<std::uint64_t>(slice.requests));
        }
    }
    return evaluation;
}

void
DramBackend::evaluateBatch(std::span<const DesignPoint> points,
                           util::ThreadPool *pool, const CommitFn &commit)
{
    EvalBackend::evaluateBatch(points, pool, commit);
    util::Telemetry &telemetry = util::Telemetry::instance();
    if (telemetry.enabled() && !points.empty() && ctx.dram.enabled()) {
        // Running aggregate hit rate across every evaluation so far -
        // the row-locality signal of the whole campaign.
        const std::int64_t hits = rowHits_.load();
        const std::int64_t total =
            hits + rowMisses_.load() + rowConflicts_.load();
        if (total > 0) {
            telemetry.metrics()
                .gauge("dse.dram.hit_rate_ppm")
                .set(static_cast<std::int64_t>(
                    1e6 * static_cast<double>(hits) /
                    static_cast<double>(total)));
        }
    }
}

// ---------------------------------------------------------------- tiered ----

TieredBackend::TieredBackend(const BackendContext &context,
                             const TieredPolicy &policy)
    : screen(context), tierPolicy(policy), band_(policy.promotionBand)
{
    // The verify tier is the most accurate model configured: bank-level
    // when the context carries traffic generators, else the contention
    // engine (bit-identical to plain cycle with an empty profile).
    if (context.dram.enabled())
        verify = std::make_unique<DramBackend>(context);
    else
        verify = std::make_unique<ContentionBackend>(context);
    util::fatalIf(tierPolicy.promotionBand <= 0.0 ||
                      tierPolicy.promotionBand >= 1.0,
                  "TieredBackend: promotion band outside (0, 1)");
    util::fatalIf(tierPolicy.referencePoint.size() != 3,
                  "TieredBackend: reference point must have 3 "
                  "objectives");
    if (tierPolicy.adaptive) {
        util::fatalIf(tierPolicy.minBand <= 0.0 ||
                          tierPolicy.maxBand >= 1.0 ||
                          tierPolicy.minBand > tierPolicy.maxBand,
                      "TieredBackend: adaptive band clamp must satisfy "
                      "0 < minBand <= maxBand < 1");
        util::fatalIf(tierPolicy.errorMargin <= 0.0,
                      "TieredBackend: errorMargin must be positive");
    }
}

std::size_t
TieredBackend::screenedCount() const
{
    std::lock_guard<std::mutex> lock(stateMutex);
    return screened_;
}

std::size_t
TieredBackend::promotedCount() const
{
    std::lock_guard<std::mutex> lock(stateMutex);
    return promoted_;
}

double
TieredBackend::currentBand() const
{
    std::lock_guard<std::mutex> lock(stateMutex);
    return band_;
}

void
TieredBackend::absorb(const Objectives &screenedObjectives)
{
    for (const Objectives &member : analyticalFront) {
        if (dominates(member, screenedObjectives))
            return;
    }
    std::erase_if(analyticalFront, [&](const Objectives &member) {
        return dominates(screenedObjectives, member);
    });
    analyticalFront.push_back(screenedObjectives);
}

bool
TieredBackend::shouldPromote(const Objectives &screenedObjectives) const
{
    // Band semantics: improve the candidate componentwise by the band
    // fraction; promote when that relaxed point still contributes
    // fresh hypervolume against the analytical front. Front members
    // always pass (their relaxation dominates their own front entry,
    // adding a shell of volume); points within the band behind the
    // front pass because the relaxation lifts them past it; deeply
    // dominated points fail.
    Objectives relaxed = screenedObjectives;
    for (double &component : relaxed)
        component *= 1.0 - band_;
    return hypervolumeContribution(analyticalFront, relaxed,
                                   tierPolicy.referencePoint) > 0.0;
}

void
TieredBackend::foldError(double analyticalLatencyMs,
                         double cycleLatencyMs)
{
    if (!tierPolicy.adaptive || cycleLatencyMs <= 0.0)
        return;
    errorSum_ += std::abs(analyticalLatencyMs - cycleLatencyMs) /
                 cycleLatencyMs;
    ++errorCount_;
    const double tuned =
        tierPolicy.errorMargin * (errorSum_ / errorCount_);
    band_ = std::clamp(tuned, tierPolicy.minBand, tierPolicy.maxBand);
}

void
TieredBackend::evaluateBatch(std::span<const DesignPoint> points,
                             util::ThreadPool *pool,
                             const CommitFn &commit)
{
    if (points.empty())
        return;

    util::Telemetry &telemetry = util::Telemetry::instance();
    const bool telemetry_on = telemetry.enabled();
    if (telemetry_on) {
        telemetry.metrics()
            .counter("dse.backend." + name() + ".points")
            .add(points.size());
    }

    // --- 1. Analytical screen (parallel; pure per point) ---
    // Rides the compiled-plan SoA batch kernel; bit-identical to
    // screening each point with screen.evaluate().
    std::vector<Evaluation> screenedEvals(points.size());
    {
        util::TraceSpan span("dse.tiered.screen", "dse");
        util::Histogram *screen_hist =
            telemetry_on
                ? &telemetry.metrics().histogram("dse.screen_s")
                : nullptr;
        screen.screenBatch(points, pool, screenedEvals, screen_hist);
    }

    // --- 2. Promotion decisions (serial, request order) ---
    // The only stateful step: sequenced on the calling thread so a
    // fixed request sequence promotes the same points at any thread
    // count. Concurrent callers serialize here. The whole batch is
    // absorbed into the running front *before* any decision - every
    // point is judged against the most mature front available, so an
    // early batch position does not inflate the promotion rate.
    std::vector<std::size_t> promotedIndices;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        for (const Evaluation &screenedEval : screenedEvals)
            absorb(screenedEval.objectives);
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (shouldPromote(screenedEvals[i].objectives))
                promotedIndices.push_back(i);
        }
        screened_ += points.size();
        promoted_ += promotedIndices.size();
    }
    if (telemetry_on) {
        telemetry.metrics()
            .counter("dse.tiered.screened")
            .add(points.size());
        telemetry.metrics()
            .counter("dse.tiered.promoted")
            .add(promotedIndices.size());
    }

    // --- 3. Commit: analytical numbers for the screened-out points,
    // cycle-accurate re-evaluations (parallel) for the promoted ones ---
    std::vector<bool> promoted(points.size(), false);
    for (std::size_t index : promotedIndices)
        promoted[index] = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (promoted[i])
            continue;
        Evaluation evaluation = std::move(screenedEvals[i]);
        evaluation.backend = name(); // Fidelity stays Analytical.
        commit(i, std::move(evaluation));
    }

    util::Histogram *simulate_hist =
        telemetry_on
            ? &telemetry.metrics().histogram("dse.simulate_s")
            : nullptr;
    std::vector<double> cycleLatencyMs(promotedIndices.size(), 0.0);
    util::parallel_for(
        pool, promotedIndices.size(), [&](std::size_t p) {
            const std::size_t i = promotedIndices[p];
            Evaluation evaluation;
            {
                util::TraceSpan span("dse.simulate", "dse");
                util::ScopedTimer timer(simulate_hist);
                evaluation = verify->evaluate(points[i]);
            }
            evaluation.backend = name(); // Verify-tier fidelity kept.
            cycleLatencyMs[p] = evaluation.latencyMs;
            commit(i, std::move(evaluation));
        });

    // --- 4. Adaptive band update (serial, request order) ---
    // Every promotion measured the same point on both engines; fold
    // the observed relative latency errors in promotion order so the
    // band trajectory is deterministic, and let the next batch promote
    // against the re-tuned band.
    if (tierPolicy.adaptive && !promotedIndices.empty()) {
        std::lock_guard<std::mutex> lock(stateMutex);
        for (std::size_t p = 0; p < promotedIndices.size(); ++p) {
            foldError(screenedEvals[promotedIndices[p]].latencyMs,
                      cycleLatencyMs[p]);
        }
        if (telemetry_on) {
            telemetry.metrics()
                .gauge("dse.tiered.band_ppm")
                .set(static_cast<std::int64_t>(band_ * 1e6));
        }
    }
}

void
TieredBackend::warmStart(std::span<const Evaluation> replayed)
{
    if (replayed.empty())
        return;
    // The journal is a whole-batch, request-order prefix of the
    // interrupted run, so re-screening it row by row performs exactly
    // the absorb/fold sequence the original batches performed - the
    // front, the counters and the adaptive error sums land on
    // byte-identical values. The screen is the pure analytical engine;
    // no cycle-accurate work is repeated (promoted rows replay their
    // journaled cycle latency into the error fold).
    std::lock_guard<std::mutex> lock(stateMutex);
    for (const Evaluation &row : replayed) {
        const Evaluation screened = screen.evaluate(row.point);
        absorb(screened.objectives);
        ++screened_;
        if (row.fidelity != Fidelity::Analytical) {
            ++promoted_;
            foldError(screened.latencyMs, row.latencyMs);
        }
    }
}

Evaluation
TieredBackend::evaluate(const DesignPoint &point)
{
    Evaluation out;
    const DesignPoint points[1] = {point};
    evaluateBatch(std::span<const DesignPoint>(points, 1), nullptr,
                  [&out](std::size_t, Evaluation &&evaluation) {
                      out = std::move(evaluation);
                  });
    return out;
}

// ------------------------------------------------------------- fidelity ----

std::string
fidelityName(Fidelity fidelity)
{
    switch (fidelity) {
      case Fidelity::Analytical:    return "analytical";
      case Fidelity::CycleAccurate: return "cycle";
      case Fidelity::BankAccurate:  return "bank";
      case Fidelity::Mixed:         return "mixed";
    }
    return "?";
}

Fidelity
fidelityFromName(const std::string &name)
{
    Fidelity fidelity = Fidelity::Analytical;
    util::fatalIf(!tryFidelityFromName(name, fidelity),
                  "fidelityFromName: unknown fidelity '" + name + "'");
    return fidelity;
}

bool
tryFidelityFromName(const std::string &name, Fidelity &fidelity)
{
    if (name == "analytical")
        fidelity = Fidelity::Analytical;
    else if (name == "cycle")
        fidelity = Fidelity::CycleAccurate;
    else if (name == "bank")
        fidelity = Fidelity::BankAccurate;
    else if (name == "mixed")
        fidelity = Fidelity::Mixed;
    else
        return false;
    return true;
}

} // namespace autopilot::dse
