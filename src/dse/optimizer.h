/**
 * @file
 * Common interface of the Phase 2 multi-objective optimizers.
 *
 * The paper uses Bayesian optimization but notes (Sections III-B, VII)
 * that it can be swapped for reinforcement learning, genetic algorithms or
 * simulated annealing; the library therefore ships BO, NSGA-II, SA and
 * random search behind one interface so the swap is a one-line change
 * (and the ablation bench compares them).
 */

#ifndef AUTOPILOT_DSE_OPTIMIZER_H
#define AUTOPILOT_DSE_OPTIMIZER_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dse/evaluator.h"
#include "dse/pareto.h"

namespace autopilot::dse
{

/** Budget and reproducibility settings shared by all optimizers. */
struct OptimizerConfig
{
    int evaluationBudget = 120; ///< Distinct design points to evaluate.
    std::uint64_t seed = 0xD5E;
    /// Fixed hypervolume reference {1 - success, watts, ms} used for the
    /// convergence history, so different optimizers are comparable. The
    /// bounds encode domain knowledge: designs hotter than ~12 W or
    /// slower than ~120 ms are useless on any Table IV vehicle, so they
    /// earn no hypervolume credit.
    Objectives referencePoint = {1.0, 12.0, 120.0};
};

/** Outcome of one optimization run. */
struct OptimizerResult
{
    std::vector<Evaluation> archive; ///< In evaluation order (distinct).
    std::vector<double> hypervolumeHistory; ///< After each evaluation.

    /** Indices of the Pareto-optimal archive entries. */
    std::vector<std::size_t> frontIndices() const;

    /** The Pareto-optimal evaluations. */
    std::vector<Evaluation> front() const;

    /** Hypervolume of the final archive against @p reference. */
    double finalHypervolume(const Objectives &reference) const;
};

/** Abstract multi-objective optimizer. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Short name for reports ("bo", "nsga2", "sa", "random"). */
    virtual std::string name() const = 0;

    /**
     * Run the search.
     *
     * Implementations must evaluate at most config.evaluationBudget
     * distinct points (memoized repeats are free) and record the
     * hypervolume history against config.referencePoint.
     */
    virtual OptimizerResult optimize(DseEvaluator &evaluator,
                                     const OptimizerConfig &config) = 0;
};

/**
 * Instantiate an optimizer by its report name: "bo" (BayesOpt,
 * default-configured), "nsga2" (GeneticAlgorithm), "sa"
 * (SimulatedAnnealing) or "random" (RandomSearch). Fatal on an unknown
 * name, listing the known ones. All four run with their default
 * algorithm parameters; budget/seed arrive through OptimizerConfig at
 * optimize() time. Callers needing non-default algorithm parameters
 * construct the concrete class directly.
 */
std::unique_ptr<Optimizer> makeOptimizer(const std::string &name);

/** The names makeOptimizer() accepts, in report order. */
const std::vector<std::string> &optimizerNames();

/**
 * Shared bookkeeping helper: evaluate @p encoding through @p evaluator,
 * append to @p result if it is a new distinct point, and extend the
 * hypervolume history.
 *
 * @return True when the point was new (counts against the budget).
 */
bool recordEvaluation(DseEvaluator &evaluator, const Encoding &encoding,
                      const OptimizerConfig &config,
                      OptimizerResult &result);

/**
 * Batch-aware bookkeeping: evaluate all of @p encodings through the
 * evaluator's batch API (parallel when the evaluator has a thread pool
 * attached), then commit results in PROPOSAL ORDER - never completion
 * order - so archives and hypervolume histories are byte-identical
 * across thread counts.
 *
 * Fresh points are appended to the archive, at most @p maxNewPoints of
 * them; fresh points past that limit stay memoized but unrecorded,
 * matching the serial semantics of proposing past an exhausted budget.
 *
 * @return Number of fresh points recorded (counts against the budget).
 */
int recordEvaluations(DseEvaluator &evaluator,
                      std::span<const Encoding> encodings,
                      const OptimizerConfig &config,
                      OptimizerResult &result, int maxNewPoints);

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_OPTIMIZER_H
