/**
 * @file
 * NSGA-II genetic algorithm over the design-space encoding.
 *
 * The alternative optimizer the paper names for Phase 2 [88]: tournament
 * selection on (rank, crowding distance), uniform crossover over the seven
 * choice genes, and per-gene reset mutation.
 */

#ifndef AUTOPILOT_DSE_GENETIC_H
#define AUTOPILOT_DSE_GENETIC_H

#include "dse/optimizer.h"

namespace autopilot::dse
{

/** NSGA-II optimizer. */
class GeneticAlgorithm : public Optimizer
{
  public:
    /** Algorithm-specific settings. */
    struct Settings
    {
        int populationSize = 24;
        double crossoverProb = 0.9;
        double mutationProbPerGene = 0.15;
    };

    /** Construct with default settings. */
    GeneticAlgorithm();

    explicit GeneticAlgorithm(const Settings &settings);

    std::string name() const override { return "nsga2"; }

    OptimizerResult optimize(DseEvaluator &evaluator,
                             const OptimizerConfig &config) override;

  private:
    Settings cfg;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_GENETIC_H
