/**
 * @file
 * The Phase 2 black-box objective function.
 *
 * Given a design point, produce the three objectives the paper optimizes
 * (Section III-B): task success rate (from the Air Learning database),
 * full-SoC power, and inference latency (both from the systolic simulator
 * plus the power models). All objectives are returned in minimization
 * form: {1 - success, SoC watts, latency ms}.
 *
 * Evaluations are memoized: architectural simulation is the expensive step
 * the paper's Bayesian optimization is designed to conserve, and the
 * optimizers must never pay twice for the same point.
 */

#ifndef AUTOPILOT_DSE_EVALUATOR_H
#define AUTOPILOT_DSE_EVALUATOR_H

#include <cstdint>
#include <map>
#include <vector>

#include "airlearning/database.h"
#include "dse/design_space.h"
#include "dse/pareto.h"

namespace autopilot::dse
{

/** Full evaluation of one design point. */
struct Evaluation
{
    Encoding encoding{};
    DesignPoint point;
    double successRate = 0.0;
    double npuPowerW = 0.0;
    double socPowerW = 0.0;
    double latencyMs = 0.0;
    double fps = 0.0;
    Objectives objectives; ///< {1 - success, socPowerW, latencyMs}.
};

/** Memoizing evaluator bound to one deployment scenario. */
class DseEvaluator
{
  public:
    /**
     * @param database Phase 1 policy database; must contain a record for
     *                 every hyperparameter combination of the space.
     * @param density  Deployment scenario being designed for.
     */
    DseEvaluator(const airlearning::PolicyDatabase &database,
                 airlearning::ObstacleDensity density);

    /** Evaluate (or return the memoized result for) an encoding. */
    const Evaluation &evaluate(const Encoding &encoding);

    /** Number of distinct points evaluated so far. */
    std::size_t evaluationCount() const { return cache.size(); }

    /** All distinct evaluations so far (unspecified order). */
    std::vector<Evaluation> allEvaluations() const;

    const DesignSpace &space() const { return designSpace; }
    airlearning::ObstacleDensity density() const { return scenario; }

  private:
    const airlearning::PolicyDatabase &policyDb;
    airlearning::ObstacleDensity scenario;
    DesignSpace designSpace;
    std::map<Encoding, Evaluation> cache;

    Evaluation compute(const Encoding &encoding) const;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_EVALUATOR_H
