/**
 * @file
 * The Phase 2 black-box objective function.
 *
 * Given a design point, produce the three objectives the paper optimizes
 * (Section III-B): task success rate (from the Air Learning database),
 * full-SoC power, and inference latency (both from a pluggable cost-model
 * backend - see dse/eval_backend.h). All objectives are returned in
 * minimization form: {1 - success, SoC watts, latency ms}.
 *
 * The evaluator owns exactly one EvalBackend (selected by registry name;
 * "analytical" by default, matching the historical hard-wired path
 * bit for bit) and routes every cache miss through it, so memoization,
 * batching and the determinism contract are shared by all cost models.
 *
 * Evaluations are memoized: architectural simulation is the expensive step
 * the paper's Bayesian optimization is designed to conserve, and the
 * optimizers must never pay twice for the same point. The cache is
 * concurrent - evaluateBatch() fans distinct points out across an
 * attached util::ThreadPool, and a per-key in-flight guard ensures two
 * threads never simulate the same point twice even when they race on it.
 *
 * Telemetry: when the global util::Telemetry is enabled, cache traffic
 * is mirrored into the registry counters "dse.cache.hit",
 * "dse.cache.miss" and "dse.cache.inflight_wait" (always equal to
 * cacheStats()), per-point simulation time is recorded into the
 * "dse.simulate_s" histogram, each batch/simulation emits a trace
 * span ("dse.evaluateBatch" / "dse.simulate"), each backend batch
 * bumps "dse.backend.<name>.points", and the per-batch memo-key
 * construction (encodings hashed once up front, reused by every
 * shard lookup) is timed into "dse.cache.key_build_s".
 */

#ifndef AUTOPILOT_DSE_EVALUATOR_H
#define AUTOPILOT_DSE_EVALUATOR_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "airlearning/database.h"
#include "dram/config.h"
#include "dse/design_space.h"
#include "dse/evaluation.h"
#include "dse/pareto.h"
#include "systolic/contention.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace autopilot::dse
{

class EvalBackend;

/** One entry of an evaluateBatch() result, aligned with the request. */
struct BatchResult
{
    /// Stable pointer into the memo cache; valid for the evaluator's
    /// lifetime.
    const Evaluation *evaluation = nullptr;
    /// True when this request triggered the simulation: the encoding was
    /// not cached before the batch and this is its first occurrence
    /// within the batch. Exactly the points that count against an
    /// optimizer budget.
    bool fresh = false;
};

/** Cache traffic counters (monotonic; hits + misses == requests). */
struct CacheStats
{
    std::uint64_t hits = 0;   ///< Served from the memo cache.
    std::uint64_t misses = 0; ///< Triggered a simulation.
    /// Subset of hits that had to wait for another thread's in-flight
    /// simulation of the same point.
    std::uint64_t inflightWaits = 0;

    std::uint64_t requests() const { return hits + misses; }
};

/** Memoizing evaluator bound to one deployment scenario. */
class DseEvaluator
{
  public:
    /**
     * @param database Phase 1 policy database; must contain a record for
     *                 every hyperparameter combination of the space.
     * @param density  Deployment scenario being designed for.
     * @param backend  Registry name of the cost-model backend
     *                 ("analytical", "cycle", "tiered", "contention",
     *                 or anything registered in BackendRegistry; fatal
     *                 on an unknown name). The default is the
     *                 closed-form path, bit-identical to the
     *                 pre-backend evaluator.
     * @param contention Background DRAM traffic for the contention
     *                 backend (and the tiered verify tier); the default
     *                 empty profile leaves every backend's results
     *                 untouched.
     * @param dram     Bank-level DRAM channel description for the dram
     *                 backend (and, when enabled, the tiered verify
     *                 tier); the default spec (no traffic generators)
     *                 leaves every backend's results untouched.
     * @param precisions Searchable operand widths for the precision
     *                 axis (ascending, from {1,2,4}); the default
     *                 int8-only set pins the axis and keeps results
     *                 bit-identical to the legacy 7-dimension space.
     */
    DseEvaluator(const airlearning::PolicyDatabase &database,
                 airlearning::ObstacleDensity density,
                 const std::string &backend = "analytical",
                 const systolic::ContentionProfile &contention = {},
                 const dram::DramSpec &dram = {},
                 const std::vector<int> &precisions = {1});

    /**
     * Construct with an explicit backend instance (for tests and
     * custom-configured backends, e.g. a TieredBackend with a
     * non-default promotion band). @p backend must not be null.
     */
    DseEvaluator(const airlearning::PolicyDatabase &database,
                 airlearning::ObstacleDensity density,
                 std::unique_ptr<EvalBackend> backend,
                 const std::vector<int> &precisions = {1});

    ~DseEvaluator();

    /**
     * Attach a worker pool (non-owning; may be null for serial
     * operation). evaluateBatch() uses it to simulate the distinct
     * uncached points of a batch in parallel. Results are independent of
     * the pool: evaluations are pure functions of the encoding (for the
     * tiered backend: of the request sequence), and batch results are
     * returned in request order.
     */
    void setThreadPool(util::ThreadPool *pool) { workers = pool; }

    util::ThreadPool *threadPool() const { return workers; }

    /**
     * Install a cooperative-cancellation token checked at the start of
     * every evaluateBatch() call (the batch boundary). When the token
     * reports an expired deadline or an explicit cancel, the batch
     * throws (DeadlineExceeded / CancelledError) before reserving any
     * point, so every journaled batch stays whole and the run resumes
     * byte-identically. The default (inert) token never fires.
     */
    void setCancelToken(util::CancelToken token)
    {
        cancelToken = std::move(token);
    }

    /**
     * Label every newly simulated evaluation with a mission-mix tag
     * (uav::MissionMix::tag(); "-" by default). Purely an archival
     * annotation - it never affects the simulated numbers - so journal
     * rows record which fleet workload drove the campaign.
     */
    void setScenarioTag(const std::string &tag) { scenarioTag = tag; }

    /**
     * Evaluate (or return the memoized result for) an encoding.
     * Thread-safe; equivalent to a one-element evaluateBatch().
     */
    const Evaluation &evaluate(const Encoding &encoding);

    /**
     * Evaluate a batch of encodings, simulating the distinct uncached
     * points in parallel on the attached pool (serially without one).
     *
     * Thread-safe: concurrent batches (including overlapping ones) are
     * coordinated through per-key in-flight guards, so each distinct
     * point is simulated exactly once process-wide. The returned vector
     * is aligned with @p encodings; `fresh` marks first-time points in
     * request order (duplicates within a batch are fresh only at their
     * first position).
     */
    std::vector<BatchResult> evaluateBatch(std::span<const Encoding> encodings);

    /**
     * Warm-start the memo cache from a replayed evaluation journal.
     *
     * Each entry is inserted as a ready node, in @p evaluations order
     * (defining its evaluation-order sequence), and marked
     * *replay-fresh*: the first cache hit on it reports fresh=true and
     * consumes the mark. A resumed optimizer therefore replays the
     * identical trajectory as the uninterrupted run - replayed points
     * cost no simulation yet still count against its budget exactly
     * once, at the same step they originally did. Duplicate encodings
     * keep the first entry. Call before any evaluateBatch(); replayed
     * points count as cache hits in cacheStats(), never misses.
     *
     * Also forwards the prefix to EvalBackend::warmStart() so stateful
     * backends (tiered) restore their cross-point state from the same
     * replay.
     */
    void preload(std::span<const Evaluation> evaluations);

    /**
     * Install a sink invoked at the end of every evaluateBatch() with
     * the batch's newly simulated evaluations, in request order. This
     * is the journal hook: entries reach the sink only after the whole
     * batch has committed, so a journal written from it contains whole
     * batches in a strict request-order prefix of the run. Preloaded
     * (replayed) points are never re-offered. Pass an empty function to
     * detach.
     */
    void setJournalSink(
        std::function<void(std::span<const Evaluation>)> sink);

    /**
     * Number of distinct points evaluated so far - completed
     * simulations only, so this always equals allEvaluations().size()
     * even while other threads' simulations are in flight. Thread-safe.
     */
    std::size_t evaluationCount() const;

    /**
     * Number of distinct points reserved so far: completed evaluations
     * plus simulations other threads still have in flight. Always
     * >= evaluationCount(), equal once the process quiesces.
     * Thread-safe.
     */
    std::size_t reservedCount() const;

    /**
     * All distinct completed evaluations so far, in evaluation order:
     * the order in which the points were first requested (for batches,
     * request order within the batch). This order is deterministic for
     * a fixed request sequence, which makes seeded runs reproducible
     * end to end. Thread-safe.
     */
    std::vector<Evaluation> allEvaluations() const;

    /** Cache traffic counters so far. Thread-safe. */
    CacheStats cacheStats() const;

    const DesignSpace &space() const { return designSpace; }
    airlearning::ObstacleDensity density() const { return scenario; }

    /** The cost-model backend this evaluator routes misses through. */
    const EvalBackend &backend() const { return *evalBackend; }

    /** Registry name of the backend ("analytical" by default). */
    std::string backendName() const;

  private:
    /// Memo-cache node: the payload plus its in-flight state. Nodes are
    /// heap-allocated once and never move, so Evaluation pointers handed
    /// to callers stay valid while shard maps rehash/rebalance.
    struct Node
    {
        Evaluation evaluation;
        std::atomic<bool> ready{false};
        std::size_t sequence = 0; ///< Evaluation-order index.
        /// Preloaded from a journal and not yet re-requested: the first
        /// hit consumes this and reports fresh=true so a resumed
        /// optimizer's budget accounting replays exactly. Guarded by
        /// the owning shard's mutex.
        bool replayFresh = false;
    };

    /// One lock-domain of the cache. Encodings hash-partition across
    /// shards so unrelated points do not contend on one mutex; the
    /// per-shard condition variable parks threads waiting on another
    /// thread's in-flight simulation of the same key.
    struct Shard
    {
        mutable std::mutex mutex;
        std::condition_variable ready;
        std::map<Encoding, std::unique_ptr<Node>> entries;
    };

    static constexpr std::size_t shardCount = 16;

    Shard &shardFor(const Encoding &encoding);
    const Shard &shardFor(const Encoding &encoding) const;

    const airlearning::PolicyDatabase &policyDb;
    airlearning::ObstacleDensity scenario;
    DesignSpace designSpace;
    std::unique_ptr<EvalBackend> evalBackend;
    util::ThreadPool *workers = nullptr;
    util::CancelToken cancelToken; ///< Inert unless installed.
    std::string scenarioTag = "-"; ///< Mission-mix archive label.

    std::array<Shard, shardCount> shards;
    /// Nodes in first-request order; guards its own mutex because
    /// appends come from whichever thread wins the key reservation.
    mutable std::mutex orderMutex;
    std::vector<const Node *> evaluationOrder;

    /// Per-batch commit hook (journaling); set before the run starts.
    std::function<void(std::span<const Evaluation>)> journalSink;

    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> inflightWaitCount{0};
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_EVALUATOR_H
