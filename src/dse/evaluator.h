/**
 * @file
 * The Phase 2 black-box objective function.
 *
 * Given a design point, produce the three objectives the paper optimizes
 * (Section III-B): task success rate (from the Air Learning database),
 * full-SoC power, and inference latency (both from the systolic simulator
 * plus the power models). All objectives are returned in minimization
 * form: {1 - success, SoC watts, latency ms}.
 *
 * Evaluations are memoized: architectural simulation is the expensive step
 * the paper's Bayesian optimization is designed to conserve, and the
 * optimizers must never pay twice for the same point. The cache is
 * concurrent - evaluateBatch() fans distinct points out across an
 * attached util::ThreadPool, and a per-key in-flight guard ensures two
 * threads never simulate the same point twice even when they race on it.
 *
 * Telemetry: when the global util::Telemetry is enabled, cache traffic
 * is mirrored into the registry counters "dse.cache.hit",
 * "dse.cache.miss" and "dse.cache.inflight_wait" (always equal to
 * cacheStats()), per-point simulation time is recorded into the
 * "dse.simulate_s" histogram, and each batch/simulation emits a trace
 * span ("dse.evaluateBatch" / "dse.simulate").
 */

#ifndef AUTOPILOT_DSE_EVALUATOR_H
#define AUTOPILOT_DSE_EVALUATOR_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "airlearning/database.h"
#include "dse/design_space.h"
#include "dse/pareto.h"
#include "util/thread_pool.h"

namespace autopilot::dse
{

/** Full evaluation of one design point. */
struct Evaluation
{
    Encoding encoding{};
    DesignPoint point;
    double successRate = 0.0;
    double npuPowerW = 0.0;
    double socPowerW = 0.0;
    double latencyMs = 0.0;
    double fps = 0.0;
    Objectives objectives; ///< {1 - success, socPowerW, latencyMs}.
};

/** One entry of an evaluateBatch() result, aligned with the request. */
struct BatchResult
{
    /// Stable pointer into the memo cache; valid for the evaluator's
    /// lifetime.
    const Evaluation *evaluation = nullptr;
    /// True when this request triggered the simulation: the encoding was
    /// not cached before the batch and this is its first occurrence
    /// within the batch. Exactly the points that count against an
    /// optimizer budget.
    bool fresh = false;
};

/** Cache traffic counters (monotonic; hits + misses == requests). */
struct CacheStats
{
    std::uint64_t hits = 0;   ///< Served from the memo cache.
    std::uint64_t misses = 0; ///< Triggered a simulation.
    /// Subset of hits that had to wait for another thread's in-flight
    /// simulation of the same point.
    std::uint64_t inflightWaits = 0;

    std::uint64_t requests() const { return hits + misses; }
};

/** Memoizing evaluator bound to one deployment scenario. */
class DseEvaluator
{
  public:
    /**
     * @param database Phase 1 policy database; must contain a record for
     *                 every hyperparameter combination of the space.
     * @param density  Deployment scenario being designed for.
     */
    DseEvaluator(const airlearning::PolicyDatabase &database,
                 airlearning::ObstacleDensity density);

    /**
     * Attach a worker pool (non-owning; may be null for serial
     * operation). evaluateBatch() uses it to simulate the distinct
     * uncached points of a batch in parallel. Results are independent of
     * the pool: evaluations are pure functions of the encoding, and batch
     * results are returned in request order.
     */
    void setThreadPool(util::ThreadPool *pool) { workers = pool; }

    util::ThreadPool *threadPool() const { return workers; }

    /**
     * Evaluate (or return the memoized result for) an encoding.
     * Thread-safe; equivalent to a one-element evaluateBatch().
     */
    const Evaluation &evaluate(const Encoding &encoding);

    /**
     * Evaluate a batch of encodings, simulating the distinct uncached
     * points in parallel on the attached pool (serially without one).
     *
     * Thread-safe: concurrent batches (including overlapping ones) are
     * coordinated through per-key in-flight guards, so each distinct
     * point is simulated exactly once process-wide. The returned vector
     * is aligned with @p encodings; `fresh` marks first-time points in
     * request order (duplicates within a batch are fresh only at their
     * first position).
     */
    std::vector<BatchResult> evaluateBatch(std::span<const Encoding> encodings);

    /** Number of distinct points evaluated so far. Thread-safe. */
    std::size_t evaluationCount() const;

    /**
     * All distinct evaluations so far, in evaluation order: the order in
     * which the points were first requested (for batches, request order
     * within the batch). This order is deterministic for a fixed request
     * sequence, which makes seeded runs reproducible end to end.
     * Thread-safe.
     */
    std::vector<Evaluation> allEvaluations() const;

    /** Cache traffic counters so far. Thread-safe. */
    CacheStats cacheStats() const;

    const DesignSpace &space() const { return designSpace; }
    airlearning::ObstacleDensity density() const { return scenario; }

  private:
    /// Memo-cache node: the payload plus its in-flight state. Nodes are
    /// heap-allocated once and never move, so Evaluation pointers handed
    /// to callers stay valid while shard maps rehash/rebalance.
    struct Node
    {
        Evaluation evaluation;
        std::atomic<bool> ready{false};
        std::size_t sequence = 0; ///< Evaluation-order index.
    };

    /// One lock-domain of the cache. Encodings hash-partition across
    /// shards so unrelated points do not contend on one mutex; the
    /// per-shard condition variable parks threads waiting on another
    /// thread's in-flight simulation of the same key.
    struct Shard
    {
        mutable std::mutex mutex;
        std::condition_variable ready;
        std::map<Encoding, std::unique_ptr<Node>> entries;
    };

    static constexpr std::size_t shardCount = 16;

    Shard &shardFor(const Encoding &encoding);
    const Shard &shardFor(const Encoding &encoding) const;

    const airlearning::PolicyDatabase &policyDb;
    airlearning::ObstacleDensity scenario;
    DesignSpace designSpace;
    util::ThreadPool *workers = nullptr;

    std::array<Shard, shardCount> shards;
    /// Nodes in first-request order; guards its own mutex because
    /// appends come from whichever thread wins the key reservation.
    mutable std::mutex orderMutex;
    std::vector<const Node *> evaluationOrder;

    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> inflightWaitCount{0};

    Evaluation compute(const Encoding &encoding) const;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_EVALUATOR_H
