#include "dse/random_search.h"

#include "util/rng.h"

namespace autopilot::dse
{

OptimizerResult
RandomSearch::optimize(DseEvaluator &evaluator,
                       const OptimizerConfig &config)
{
    util::Rng rng(config.seed);
    OptimizerResult result;
    int evaluated = 0;
    // Distinct-point budget; cap proposal attempts so a tiny space cannot
    // loop forever.
    long attempts = 0;
    const long max_attempts = 1000L * config.evaluationBudget + 1000;
    while (evaluated < config.evaluationBudget &&
           attempts < max_attempts) {
        ++attempts;
        const Encoding encoding =
            evaluator.space().randomEncoding(rng);
        if (recordEvaluation(evaluator, encoding, config, result))
            ++evaluated;
    }
    return result;
}

} // namespace autopilot::dse
