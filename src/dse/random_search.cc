#include "dse/random_search.h"

#include <algorithm>

#include "util/rng.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

OptimizerResult
RandomSearch::optimize(DseEvaluator &evaluator,
                       const OptimizerConfig &config)
{
    util::Rng rng(config.seed);
    OptimizerResult result;
    int evaluated = 0;
    // Distinct-point budget; cap proposal attempts so a tiny space cannot
    // loop forever. Proposals are drawn in chunks of the remaining budget
    // and evaluated as one parallel batch; committing in proposal order
    // keeps the archive identical to the one-at-a-time serial path.
    long attempts = 0;
    const long max_attempts = 1000L * config.evaluationBudget + 1000;
    util::Telemetry &telemetry = util::Telemetry::instance();
    while (evaluated < config.evaluationBudget &&
           attempts < max_attempts) {
        util::TraceSpan chunk_span("rs.chunk", "optimizer");
        if (telemetry.enabled())
            telemetry.metrics().counter("rs.chunks").add();
        const int remaining = config.evaluationBudget - evaluated;
        const long chunk = std::min<long>(remaining,
                                          max_attempts - attempts);
        std::vector<Encoding> proposals;
        proposals.reserve(static_cast<std::size_t>(chunk));
        for (long i = 0; i < chunk; ++i)
            proposals.push_back(evaluator.space().randomEncoding(rng));
        attempts += chunk;
        evaluated += recordEvaluations(evaluator, proposals, config,
                                       result, remaining);
    }
    return result;
}

} // namespace autopilot::dse
