#include "dse/pareto.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace autopilot::dse
{

using util::panicIf;

bool
dominates(const Objectives &a, const Objectives &b)
{
    panicIf(a.size() != b.size() || a.empty(),
            "dominates: mismatched or empty objective vectors");
    bool strictly_better = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
        if (a[i] < b[i])
            strictly_better = true;
    }
    return strictly_better;
}

bool
epsilonDominates(const Objectives &a, const Objectives &b, double epsilon)
{
    panicIf(a.size() != b.size() || a.empty(),
            "epsilonDominates: mismatched or empty objective vectors");
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] - epsilon > b[i])
            return false;
    }
    return true;
}

std::vector<std::size_t>
paretoFrontIndices(const std::vector<Objectives> &points)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool is_dominated = false;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (i != j && dominates(points[j], points[i])) {
                is_dominated = true;
                break;
            }
        }
        if (!is_dominated)
            front.push_back(i);
    }
    return front;
}

std::vector<Objectives>
paretoFront(const std::vector<Objectives> &points)
{
    std::vector<Objectives> front;
    for (std::size_t index : paretoFrontIndices(points))
        front.push_back(points[index]);
    return front;
}

std::vector<std::vector<std::size_t>>
nonDominatedSort(const std::vector<Objectives> &points)
{
    const std::size_t n = points.size();
    std::vector<int> domination_count(n, 0);
    std::vector<std::vector<std::size_t>> dominated_by(n);

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            if (dominates(points[i], points[j]))
                dominated_by[i].push_back(j);
            else if (dominates(points[j], points[i]))
                ++domination_count[i];
        }
    }

    std::vector<std::vector<std::size_t>> fronts;
    std::vector<std::size_t> current;
    for (std::size_t i = 0; i < n; ++i) {
        if (domination_count[i] == 0)
            current.push_back(i);
    }
    while (!current.empty()) {
        fronts.push_back(current);
        std::vector<std::size_t> next;
        for (std::size_t i : current) {
            for (std::size_t j : dominated_by[i]) {
                if (--domination_count[j] == 0)
                    next.push_back(j);
            }
        }
        current = std::move(next);
    }
    return fronts;
}

std::vector<double>
crowdingDistance(const std::vector<Objectives> &points,
                 const std::vector<std::size_t> &front)
{
    const std::size_t n = front.size();
    std::vector<double> distance(n, 0.0);
    if (n == 0)
        return distance;
    const std::size_t dims = points[front[0]].size();
    const double inf = std::numeric_limits<double>::infinity();

    for (std::size_t d = 0; d < dims; ++d) {
        std::vector<std::size_t> order(n);
        for (std::size_t i = 0; i < n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return points[front[a]][d] < points[front[b]][d];
                  });
        distance[order.front()] = inf;
        distance[order.back()] = inf;
        const double span = points[front[order.back()]][d] -
                            points[front[order.front()]][d];
        if (span <= 0.0)
            continue;
        for (std::size_t i = 1; i + 1 < n; ++i) {
            const double gap = points[front[order[i + 1]]][d] -
                               points[front[order[i - 1]]][d];
            distance[order[i]] += gap / span;
        }
    }
    return distance;
}

} // namespace autopilot::dse
