#include "dse/gaussian_process.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace autopilot::dse
{

using util::fatalIf;

double
GpPrediction::stddev() const
{
    return std::sqrt(std::max(0.0, variance));
}

GaussianProcess::GaussianProcess() : GaussianProcess(Params())
{
}

GaussianProcess::GaussianProcess(const Params &params)
    : kernelParams(params)
{
    fatalIf(params.lengthScale <= 0.0 || params.signalVariance <= 0.0 ||
                params.noiseVariance < 0.0,
            "GaussianProcess: bad kernel parameters");
}

double
GaussianProcess::kernel(const std::vector<double> &a,
                        const std::vector<double> &b) const
{
    util::panicIf(a.size() != b.size(),
                  "GaussianProcess::kernel: dimension mismatch");
    double sq = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d) {
        const double diff = (a[d] - b[d]) / kernelParams.lengthScale;
        sq += diff * diff;
    }
    return kernelParams.signalVariance * std::exp(-0.5 * sq);
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &inputs,
                     const std::vector<double> &targets)
{
    fatalIf(inputs.empty() || inputs.size() != targets.size(),
            "GaussianProcess::fit: empty or mismatched training data");

    trainInputs = inputs;

    // Standardize targets.
    targetMean = util::mean(targets);
    targetStd = util::stddev(targets);
    if (targetStd < 1e-12)
        targetStd = 1.0;
    std::vector<double> standardized(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i)
        standardized[i] = (targets[i] - targetMean) / targetStd;

    const std::size_t n = inputs.size();
    util::Matrix gram(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double k = kernel(inputs[i], inputs[j]);
            gram(i, j) = k;
            gram(j, i) = k;
        }
        gram(i, i) += kernelParams.noiseVariance;
    }

    factor = std::make_unique<util::CholeskyFactor>(gram, 1e-9);
    alpha = factor->solve(standardized);
}

GpPrediction
GaussianProcess::predict(const std::vector<double> &query) const
{
    fatalIf(!fitted(), "GaussianProcess::predict: model not fitted");

    const std::size_t n = trainInputs.size();
    std::vector<double> kstar(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        kstar[i] = kernel(trainInputs[i], query);

    double mean_std = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        mean_std += kstar[i] * alpha[i];

    // Variance: k(x,x) - k*^T K^{-1} k*.
    const std::vector<double> v = factor->solveLower(kstar);
    double reduction = 0.0;
    for (double value : v)
        reduction += value * value;
    const double var_std =
        std::max(0.0, kernelParams.signalVariance - reduction);

    GpPrediction prediction;
    prediction.mean = mean_std * targetStd + targetMean;
    prediction.variance = var_std * targetStd * targetStd;
    return prediction;
}

} // namespace autopilot::dse
