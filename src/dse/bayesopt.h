/**
 * @file
 * Multi-objective Bayesian optimization with the SMS-EGO acquisition
 * (Section III-B).
 *
 * One GP surrogate per objective is fit on the archive after an initial
 * random design. Each iteration scores a candidate pool by the
 * S-metric (hypervolume) gain of the candidate's lower-confidence-bound
 * objective vector against the current Pareto front; epsilon-dominated
 * candidates receive a negative penalty proportional to how far inside
 * the dominated region they sit [64]. The best-scoring candidate is
 * evaluated for real and the surrogates are refit.
 */

#ifndef AUTOPILOT_DSE_BAYESOPT_H
#define AUTOPILOT_DSE_BAYESOPT_H

#include "dse/gaussian_process.h"
#include "dse/optimizer.h"

namespace autopilot::dse
{

/** SMS-EGO Bayesian optimizer. */
class BayesOpt : public Optimizer
{
  public:
    /** Algorithm-specific settings. */
    struct Settings
    {
        int initialSamples = 16;   ///< Random design before modelling.
        int candidatePool = 256;   ///< Random candidates per iteration.
        double confidenceGain = 1.0; ///< LCB multiplier on sigma.
        double epsilon = 1e-3;     ///< Epsilon-dominance band.
        /// Suggestions evaluated per model refit (q-batch BO). The top-q
        /// acquisition scorers are evaluated as one parallel batch and
        /// committed in score order; 1 reproduces classic sequential
        /// SMS-EGO. Larger q trades a slightly staler surrogate for
        /// batch-parallel simulation throughput.
        int batchSize = 1;
        GaussianProcess::Params gp; ///< Shared kernel parameters.
    };

    /** Construct with default settings. */
    BayesOpt();

    explicit BayesOpt(const Settings &settings);

    std::string name() const override { return "bo"; }

    OptimizerResult optimize(DseEvaluator &evaluator,
                             const OptimizerConfig &config) override;

  private:
    Settings cfg;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_BAYESOPT_H
