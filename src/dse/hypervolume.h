/**
 * @file
 * Exact hypervolume computation for minimization problems.
 *
 * The hypervolume of a point set against a reference point is the measure
 * of the objective-space region dominated by the set and bounded by the
 * reference. SMS-EGO [64] uses hypervolume gain as its acquisition value.
 *
 * Supports 1, 2 and 3 objectives exactly (AutoPilot optimizes exactly
 * three: success rate, power, latency). Fatal for higher dimensions.
 */

#ifndef AUTOPILOT_DSE_HYPERVOLUME_H
#define AUTOPILOT_DSE_HYPERVOLUME_H

#include "dse/pareto.h"

namespace autopilot::dse
{

/**
 * Hypervolume of @p points against @p reference (all minimized).
 *
 * Points outside the reference box contribute only their clipped part;
 * fully dominated-by-reference-complement points contribute nothing.
 *
 * @param points    Objective vectors (need not be mutually non-dominated).
 * @param reference Reference point; must weakly exceed every coordinate of
 *                  interest (points beyond it are clipped out).
 */
double hypervolume(const std::vector<Objectives> &points,
                   const Objectives &reference);

/**
 * Hypervolume gained by adding @p candidate to @p points.
 *
 * Non-negative; zero when the candidate is dominated.
 */
double hypervolumeContribution(const std::vector<Objectives> &points,
                               const Objectives &candidate,
                               const Objectives &reference);

/**
 * A reference point for a point set: the componentwise maximum plus a
 * @p margin fraction of the per-component range (at least an absolute
 * floor to keep extreme points contributing).
 */
Objectives defaultReference(const std::vector<Objectives> &points,
                            double margin = 0.1);

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_HYPERVOLUME_H
