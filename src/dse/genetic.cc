#include "dse/genetic.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

namespace
{

/** Individual: encoding plus cached objectives. */
struct Individual
{
    Encoding genes{};
    Objectives objectives;
};

} // namespace

GeneticAlgorithm::GeneticAlgorithm() : GeneticAlgorithm(Settings())
{
}

GeneticAlgorithm::GeneticAlgorithm(const Settings &settings) : cfg(settings)
{
    util::fatalIf(cfg.populationSize < 4,
                  "GeneticAlgorithm: population too small");
    util::fatalIf(cfg.crossoverProb < 0.0 || cfg.crossoverProb > 1.0 ||
                      cfg.mutationProbPerGene < 0.0 ||
                      cfg.mutationProbPerGene > 1.0,
                  "GeneticAlgorithm: probabilities outside [0, 1]");
}

OptimizerResult
GeneticAlgorithm::optimize(DseEvaluator &evaluator,
                           const OptimizerConfig &config)
{
    util::Rng rng(config.seed);
    const DesignSpace &space = evaluator.space();

    OptimizerResult result;
    int evaluated = 0;

    // Evaluate one generation of proposals as a single batch: the
    // distinct uncached points run in parallel on the evaluator's pool,
    // and the archive is committed in proposal order (capped at the
    // remaining budget), so the result is byte-identical across thread
    // counts.
    auto evaluate_generation =
        [&](const std::vector<Encoding> &proposals) {
            evaluated += recordEvaluations(
                evaluator, proposals, config, result,
                config.evaluationBudget - evaluated);
            std::vector<Individual> individuals;
            individuals.reserve(proposals.size());
            for (const Encoding &genes : proposals) {
                Individual individual;
                individual.genes = genes;
                individual.objectives =
                    evaluator.evaluate(genes).objectives; // Memo hit.
                individuals.push_back(individual);
            }
            return individuals;
        };

    // Initial population.
    std::vector<Encoding> seeds;
    seeds.reserve(cfg.populationSize);
    for (int i = 0; i < cfg.populationSize; ++i)
        seeds.push_back(space.randomEncoding(rng));
    std::vector<Individual> population = evaluate_generation(seeds);
    if (population.size() < 4)
        return result;

    // Rank + crowding of the current population.
    auto rank_population = [&](const std::vector<Individual> &pop,
                               std::vector<int> &rank,
                               std::vector<double> &crowding) {
        std::vector<Objectives> points;
        points.reserve(pop.size());
        for (const Individual &individual : pop)
            points.push_back(individual.objectives);
        const auto fronts = nonDominatedSort(points);
        rank.assign(pop.size(), 0);
        crowding.assign(pop.size(), 0.0);
        for (std::size_t f = 0; f < fronts.size(); ++f) {
            const std::vector<double> dist =
                crowdingDistance(points, fronts[f]);
            for (std::size_t i = 0; i < fronts[f].size(); ++i) {
                rank[fronts[f][i]] = static_cast<int>(f);
                crowding[fronts[f][i]] = dist[i];
            }
        }
    };

    util::Telemetry &telemetry = util::Telemetry::instance();
    while (evaluated < config.evaluationBudget) {
        util::TraceSpan generation_span("ga.generation", "optimizer");
        if (telemetry.enabled())
            telemetry.metrics().counter("ga.generations").add();
        const int evaluated_before_generation = evaluated;
        std::vector<int> rank;
        std::vector<double> crowding;
        rank_population(population, rank, crowding);

        auto tournament = [&]() -> const Individual & {
            const std::size_t a = rng.index(population.size());
            const std::size_t b = rng.index(population.size());
            if (rank[a] != rank[b])
                return population[rank[a] < rank[b] ? a : b];
            return population[crowding[a] > crowding[b] ? a : b];
        };

        // Offspring generation: breed the whole generation first (pure
        // RNG work), then evaluate it as one parallel batch.
        std::vector<Encoding> children;
        children.reserve(cfg.populationSize);
        while (static_cast<int>(children.size()) < cfg.populationSize) {
            const Individual &parent_a = tournament();
            const Individual &parent_b = tournament();
            // Size-1 genes are skipped before any draw so the RNG stream
            // matches the legacy 7-gene genome when precision is pinned.
            Encoding child = parent_a.genes;
            if (rng.bernoulli(cfg.crossoverProb)) {
                for (std::size_t g = 0; g < designDims; ++g) {
                    if (space.dimensionSizes()[g] <= 1)
                        continue;
                    if (rng.bernoulli(0.5))
                        child[g] = parent_b.genes[g];
                }
            }
            for (std::size_t g = 0; g < designDims; ++g) {
                if (space.dimensionSizes()[g] <= 1)
                    continue;
                if (rng.bernoulli(cfg.mutationProbPerGene)) {
                    child[g] = rng.uniformInt(
                        0, space.dimensionSizes()[g] - 1);
                }
            }
            children.push_back(child);
        }
        const std::vector<Individual> offspring =
            evaluate_generation(children);

        // Environmental selection over parents + offspring.
        std::vector<Individual> combined = population;
        combined.insert(combined.end(), offspring.begin(),
                        offspring.end());
        std::vector<int> combined_rank;
        std::vector<double> combined_crowding;
        rank_population(combined, combined_rank, combined_crowding);

        std::vector<std::size_t> order(combined.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (combined_rank[a] != combined_rank[b])
                          return combined_rank[a] < combined_rank[b];
                      return combined_crowding[a] > combined_crowding[b];
                  });

        std::vector<Individual> next;
        next.reserve(cfg.populationSize);
        for (int i = 0; i < cfg.populationSize; ++i)
            next.push_back(combined[order[i]]);
        population = std::move(next);

        if (evaluated == evaluated_before_generation)
            break; // Converged: a whole generation of memoized repeats.
    }

    return result;
}

} // namespace autopilot::dse
