/**
 * @file
 * Multi-objective simulated annealing over the design-space encoding.
 *
 * The second alternative optimizer the paper names [84]. The chain walks
 * single-gene neighbours; acceptance uses a weighted-Chebyshev
 * scalarization whose weights are resampled periodically so the chain
 * sweeps different regions of the Pareto front across one run. All
 * evaluated points are archived; the front is extracted at the end.
 */

#ifndef AUTOPILOT_DSE_ANNEALING_H
#define AUTOPILOT_DSE_ANNEALING_H

#include "dse/optimizer.h"

namespace autopilot::dse
{

/** Simulated-annealing optimizer. */
class SimulatedAnnealing : public Optimizer
{
  public:
    /** Algorithm-specific settings. */
    struct Settings
    {
        double initialTemperature = 1.0;
        double coolingRate = 0.97;    ///< Per accepted-or-rejected step.
        int weightResamplePeriod = 25; ///< Steps between weight redraws.
        /// Random restart candidates proposed per reheat. The chain is
        /// logically serial, but the fan-out is evaluated as one
        /// parallel batch and the chain resumes from the candidate with
        /// the best current scalarized energy. 1 reproduces the classic
        /// single-restart chain.
        int restartFanout = 1;
    };

    /** Construct with default settings. */
    SimulatedAnnealing();

    explicit SimulatedAnnealing(const Settings &settings);

    std::string name() const override { return "sa"; }

    OptimizerResult optimize(DseEvaluator &evaluator,
                             const OptimizerConfig &config) override;

  private:
    Settings cfg;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_ANNEALING_H
