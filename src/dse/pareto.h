/**
 * @file
 * Pareto-dominance utilities over minimization objective vectors.
 *
 * Throughout the DSE library every objective is minimized; success rate is
 * folded in as (1 - success).
 */

#ifndef AUTOPILOT_DSE_PARETO_H
#define AUTOPILOT_DSE_PARETO_H

#include <cstddef>
#include <vector>

namespace autopilot::dse
{

/** Objective vector (all components minimized). */
using Objectives = std::vector<double>;

/**
 * True when @p a Pareto-dominates @p b: a is no worse in every component
 * and strictly better in at least one.
 *
 * @pre a.size() == b.size() (panic otherwise).
 */
bool dominates(const Objectives &a, const Objectives &b);

/**
 * True when @p a weakly epsilon-dominates @p b: a - epsilon is no worse
 * than b in every component. Used by the SMS-EGO penalty test.
 */
bool epsilonDominates(const Objectives &a, const Objectives &b,
                      double epsilon);

/**
 * Indices of the non-dominated points in @p points.
 *
 * Ties (duplicate vectors) are all retained.
 */
std::vector<std::size_t> paretoFrontIndices(
    const std::vector<Objectives> &points);

/** The non-dominated subset of @p points. */
std::vector<Objectives> paretoFront(const std::vector<Objectives> &points);

/**
 * Fast non-dominated sorting (NSGA-II): partition points into fronts.
 *
 * @return fronts[0] is the Pareto front; fronts[k] is dominated only by
 *         members of earlier fronts.
 */
std::vector<std::vector<std::size_t>> nonDominatedSort(
    const std::vector<Objectives> &points);

/**
 * NSGA-II crowding distance of each member of one front.
 *
 * @param points All objective vectors.
 * @param front  Indices of one front within @p points.
 * @return Crowding distance per front member (same order as @p front);
 *         boundary points get +infinity.
 */
std::vector<double> crowdingDistance(const std::vector<Objectives> &points,
                                     const std::vector<std::size_t> &front);

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_PARETO_H
