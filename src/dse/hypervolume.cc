#include "dse/hypervolume.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace autopilot::dse
{

namespace
{

using util::panicIf;

/** Clip points into the reference box; drop points with no volume. */
std::vector<Objectives>
clipToReference(const std::vector<Objectives> &points,
                const Objectives &reference)
{
    std::vector<Objectives> clipped;
    for (const Objectives &point : points) {
        panicIf(point.size() != reference.size(),
                "hypervolume: dimension mismatch");
        bool has_volume = true;
        for (std::size_t d = 0; d < point.size(); ++d) {
            if (point[d] >= reference[d]) {
                has_volume = false;
                break;
            }
        }
        if (has_volume)
            clipped.push_back(point);
    }
    return clipped;
}

double
hv1(const std::vector<Objectives> &points, const Objectives &reference)
{
    double best = reference[0];
    for (const Objectives &point : points)
        best = std::min(best, point[0]);
    return reference[0] - best;
}

/** 2-D sweep: sort by first objective ascending, accumulate strips. */
double
hv2(std::vector<Objectives> points, const Objectives &reference)
{
    std::sort(points.begin(), points.end(),
              [](const Objectives &a, const Objectives &b) {
                  if (a[0] != b[0])
                      return a[0] < b[0];
                  return a[1] < b[1];
              });
    double volume = 0.0;
    double prev_y = reference[1];
    for (const Objectives &point : points) {
        if (point[1] < prev_y) {
            volume += (reference[0] - point[0]) * (prev_y - point[1]);
            prev_y = point[1];
        }
    }
    return volume;
}

/**
 * 3-D slicing: sweep the third objective; each slab's cross-section is the
 * 2-D hypervolume of the points already "active" at that depth.
 */
double
hv3(std::vector<Objectives> points, const Objectives &reference)
{
    std::sort(points.begin(), points.end(),
              [](const Objectives &a, const Objectives &b) {
                  return a[2] < b[2];
              });
    double volume = 0.0;
    std::vector<Objectives> active;
    for (std::size_t i = 0; i < points.size(); ++i) {
        active.push_back({points[i][0], points[i][1]});
        const double z_lo = points[i][2];
        const double z_hi =
            (i + 1 < points.size()) ? points[i + 1][2] : reference[2];
        if (z_hi > z_lo) {
            volume += hv2(active, {reference[0], reference[1]}) *
                      (z_hi - z_lo);
        }
    }
    return volume;
}

} // namespace

double
hypervolume(const std::vector<Objectives> &points,
            const Objectives &reference)
{
    panicIf(reference.empty(), "hypervolume: empty reference");
    const std::vector<Objectives> clipped =
        clipToReference(points, reference);
    if (clipped.empty())
        return 0.0;
    switch (reference.size()) {
      case 1: return hv1(clipped, reference);
      case 2: return hv2(clipped, reference);
      case 3: return hv3(clipped, reference);
      default:
        util::fatal("hypervolume: only 1-3 objectives supported");
    }
}

double
hypervolumeContribution(const std::vector<Objectives> &points,
                        const Objectives &candidate,
                        const Objectives &reference)
{
    const double base = hypervolume(points, reference);
    std::vector<Objectives> extended = points;
    extended.push_back(candidate);
    const double grown = hypervolume(extended, reference);
    return std::max(0.0, grown - base);
}

Objectives
defaultReference(const std::vector<Objectives> &points, double margin)
{
    panicIf(points.empty(), "defaultReference: empty point set");
    const std::size_t dims = points.front().size();
    Objectives lo = points.front();
    Objectives hi = points.front();
    for (const Objectives &point : points) {
        panicIf(point.size() != dims, "defaultReference: ragged points");
        for (std::size_t d = 0; d < dims; ++d) {
            lo[d] = std::min(lo[d], point[d]);
            hi[d] = std::max(hi[d], point[d]);
        }
    }
    Objectives reference(dims, 0.0);
    for (std::size_t d = 0; d < dims; ++d) {
        const double range = hi[d] - lo[d];
        const double pad = std::max(range * margin, 1e-6);
        reference[d] = hi[d] + pad;
    }
    return reference;
}

} // namespace autopilot::dse
