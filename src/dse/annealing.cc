#include "dse/annealing.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace autopilot::dse
{

SimulatedAnnealing::SimulatedAnnealing()
    : SimulatedAnnealing(Settings())
{
}

SimulatedAnnealing::SimulatedAnnealing(const Settings &settings)
    : cfg(settings)
{
    util::fatalIf(cfg.initialTemperature <= 0.0 || cfg.coolingRate <= 0.0 ||
                      cfg.coolingRate >= 1.0,
                  "SimulatedAnnealing: bad schedule parameters");
    util::fatalIf(cfg.weightResamplePeriod < 1,
                  "SimulatedAnnealing: bad weight resample period");
    util::fatalIf(cfg.restartFanout < 1,
                  "SimulatedAnnealing: restart fanout must be positive");
}

OptimizerResult
SimulatedAnnealing::optimize(DseEvaluator &evaluator,
                             const OptimizerConfig &config)
{
    util::Rng rng(config.seed);
    const DesignSpace &space = evaluator.space();

    OptimizerResult result;
    int evaluated = 0;

    // Objective scales for the Chebyshev scalarization: use the reference
    // point as a per-objective normalizer.
    const Objectives &reference = config.referencePoint;
    auto scalarize = [&](const Objectives &objectives,
                         const std::vector<double> &weights) {
        double worst = 0.0;
        for (std::size_t d = 0; d < objectives.size(); ++d) {
            const double normalized = objectives[d] / reference[d];
            worst = std::max(worst, weights[d] * normalized);
        }
        return worst;
    };

    auto random_weights = [&](std::size_t dims) {
        std::vector<double> weights(dims, 0.0);
        double sum = 0.0;
        for (double &w : weights) {
            w = -std::log(std::max(rng.uniform(), 1e-12));
            sum += w;
        }
        for (double &w : weights)
            w /= sum;
        return weights;
    };

    Encoding current = space.randomEncoding(rng);
    if (recordEvaluation(evaluator, current, config, result))
        ++evaluated;
    Objectives current_objectives =
        evaluator.evaluate(current).objectives;

    std::vector<double> weights =
        random_weights(current_objectives.size());
    double temperature = cfg.initialTemperature;
    int steps_since_resample = 0;
    int stagnant = 0;

    util::Telemetry &telemetry = util::Telemetry::instance();
    while (evaluated < config.evaluationBudget && stagnant < 2000) {
        util::TraceSpan step_span("sa.step", "optimizer");
        if (telemetry.enabled())
            telemetry.metrics().counter("sa.steps").add();
        if (++steps_since_resample >= cfg.weightResamplePeriod) {
            weights = random_weights(current_objectives.size());
            steps_since_resample = 0;
        }

        const Encoding proposal = space.neighbor(current, rng);
        const bool fresh =
            recordEvaluation(evaluator, proposal, config, result);
        if (fresh)
            ++evaluated;
        else
            ++stagnant;
        const Objectives &proposal_objectives =
            evaluator.evaluate(proposal).objectives;

        const double current_energy =
            scalarize(current_objectives, weights);
        const double proposal_energy =
            scalarize(proposal_objectives, weights);
        const double delta = proposal_energy - current_energy;
        const bool accept =
            delta <= 0.0 ||
            rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9));
        if (accept) {
            current = proposal;
            current_objectives = proposal_objectives;
            if (fresh)
                stagnant = 0;
        }
        temperature *= cfg.coolingRate;

        // Occasional restart keeps the chain from freezing in a corner of
        // the discrete lattice once the temperature is tiny. The fan-out
        // candidates are evaluated as one batch (parallel when the
        // evaluator has a pool) and the chain resumes from the candidate
        // with the lowest current scalarized energy; earliest proposal
        // wins ties, so the walk is identical across thread counts.
        if (temperature < 1e-3) {
            util::TraceSpan restart_span("sa.restart", "optimizer");
            if (telemetry.enabled())
                telemetry.metrics().counter("sa.restarts").add();
            temperature = cfg.initialTemperature * 0.5;
            std::vector<Encoding> restarts;
            restarts.reserve(cfg.restartFanout);
            for (int i = 0; i < cfg.restartFanout; ++i)
                restarts.push_back(space.randomEncoding(rng));
            evaluated += recordEvaluations(
                evaluator, restarts, config, result,
                config.evaluationBudget - evaluated);
            current = restarts.front();
            current_objectives = evaluator.evaluate(current).objectives;
            for (std::size_t i = 1; i < restarts.size(); ++i) {
                const Objectives &objectives =
                    evaluator.evaluate(restarts[i]).objectives;
                if (scalarize(objectives, weights) <
                    scalarize(current_objectives, weights)) {
                    current = restarts[i];
                    current_objectives = objectives;
                }
            }
        }
    }

    return result;
}

} // namespace autopilot::dse
