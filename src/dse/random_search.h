/**
 * @file
 * Uniform random search baseline for the optimizer ablation.
 */

#ifndef AUTOPILOT_DSE_RANDOM_SEARCH_H
#define AUTOPILOT_DSE_RANDOM_SEARCH_H

#include "dse/optimizer.h"

namespace autopilot::dse
{

/** Samples distinct uniform-random design points until the budget. */
class RandomSearch : public Optimizer
{
  public:
    std::string name() const override { return "random"; }

    OptimizerResult optimize(DseEvaluator &evaluator,
                             const OptimizerConfig &config) override;
};

} // namespace autopilot::dse

#endif // AUTOPILOT_DSE_RANDOM_SEARCH_H
