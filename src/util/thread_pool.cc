#include "util/thread_pool.h"

#include <exception>

namespace autopilot::util
{

void
Latch::countDown(std::ptrdiff_t n)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (remaining > 0) {
        remaining -= n;
        if (remaining <= 0) {
            remaining = 0;
            cv.notify_all();
        }
    }
}

void
Latch::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return remaining == 0; });
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    available.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            available.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained.
            task = std::move(queue.front());
            queue.pop_front();
            if (task.enqueuedAtNs != 0) {
                Telemetry::instance()
                    .metrics()
                    .gauge("pool.queue_depth")
                    .set(static_cast<std::int64_t>(queue.size()));
            }
        }

        Telemetry &telemetry = Telemetry::instance();
        if (!telemetry.enabled()) {
            task.run();
            continue;
        }

        const std::int64_t started_ns = nowNs();
        if (task.enqueuedAtNs != 0) {
            telemetry.metrics()
                .histogram("pool.queue_wait_s")
                .record(static_cast<double>(started_ns -
                                            task.enqueuedAtNs) *
                        1e-9);
        }
        task.run(); // packaged_task: exceptions land in the future.
        const std::int64_t busy_ns = nowNs() - started_ns;
        MetricsRegistry &metrics = telemetry.metrics();
        metrics.histogram("pool.task_run_s")
            .record(static_cast<double>(busy_ns) * 1e-9);
        metrics.counter("pool.tasks").add();
        metrics
            .counter("pool.worker." + std::to_string(worker) +
                     ".busy_us")
            .add(static_cast<std::uint64_t>(busy_ns / 1000));
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body,
                        std::size_t grain)
{
    if (count == 0)
        return;
    if (grain == 0)
        grain = 1;
    if (count <= grain) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    // Shared claim counter + completion latch + first-error slot.
    // Helpers (one per worker, capped at the chunk count) and the
    // caller all drain the same counter, so the caller always makes
    // progress even when every worker is busy with unrelated tasks.
    // The caller waits on the latch, NOT on the helper tasks: a helper
    // that never gets scheduled (e.g. nested parallelFor from a worker)
    // is harmless - once all iterations are claimed it would exit
    // without touching caller state, so no self-deadlock is possible.
    struct State
    {
        explicit State(std::ptrdiff_t n) : done(n) {}
        std::atomic<std::size_t> next{0};
        Latch done;
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;
    };
    auto state =
        std::make_shared<State>(static_cast<std::ptrdiff_t>(count));

    auto drain = [state, count, grain, &body]() {
        for (;;) {
            const std::size_t begin =
                state->next.fetch_add(grain, std::memory_order_relaxed);
            if (begin >= count)
                return;
            const std::size_t end = std::min(begin + grain, count);
            for (std::size_t i = begin; i < end; ++i) {
                if (state->failed.load(std::memory_order_relaxed))
                    break;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->errorMutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    state->failed.store(true,
                                        std::memory_order_relaxed);
                }
            }
            // One count-down per claimed chunk (abandoned iterations
            // after a failure are counted as done: they were claimed).
            state->done.countDown(
                static_cast<std::ptrdiff_t>(end - begin));
        }
    };

    const std::size_t chunks = (count + grain - 1) / grain;
    const std::size_t helpers = std::min(workers.size(), chunks - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        submit(drain);

    drain(); // Caller participates.
    state->done.wait();

    if (state->error)
        std::rethrow_exception(state->error);
}

void
parallel_for(ThreadPool *pool, std::size_t count,
             const std::function<void(std::size_t)> &body,
             std::size_t grain)
{
    if (pool != nullptr) {
        pool->parallelFor(count, body, grain);
        return;
    }
    for (std::size_t i = 0; i < count; ++i)
        body(i);
}

} // namespace autopilot::util
