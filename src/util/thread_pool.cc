#include "util/thread_pool.h"

#include <exception>

namespace autopilot::util
{

namespace
{

/// Identity of the pool worker running on this thread (null off-pool):
/// lets submit() route follow-up work onto the submitting worker's own
/// shard instead of paying the round-robin cursor.
thread_local const ThreadPool *currentPool = nullptr;
thread_local std::size_t currentWorker = 0;

} // namespace

void
Latch::countDown(std::ptrdiff_t n)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (remaining > 0) {
        remaining -= n;
        if (remaining <= 0) {
            remaining = 0;
            cv.notify_all();
        }
    }
}

void
Latch::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return remaining == 0; });
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    shards.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        shards.push_back(std::make_unique<Shard>());
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    // The stop mark is set while holding every shard lock: any submit
    // holds its target shard's lock across its own stop check and push,
    // so it either completed the push before the mark (the drain below
    // runs the task) or observes the mark and rejects. This is the
    // explicit submit-vs-shutdown ordering the header documents.
    {
        std::vector<std::unique_lock<std::mutex>> locks;
        locks.reserve(shards.size());
        for (const std::unique_ptr<Shard> &shard : shards)
            locks.emplace_back(shard->mutex);
        stopping.store(true, std::memory_order_seq_cst);
    }
    // Wake every parked owner; the empty lock scope fences against a
    // worker's predicate check so the notify is never slept through,
    // and notifying outside it means the woken worker does not stall
    // on a mutex the notifier still holds.
    for (const std::unique_ptr<Shard> &shard : shards) {
        { std::lock_guard<std::mutex> lock(shard->mutex); }
        shard->cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(joinMutex);
    if (joined)
        return;
    joined = true;
    for (std::thread &worker : workers)
        worker.join();
}

bool
ThreadPool::enqueue(QueuedTask task)
{
    Telemetry &telemetry = Telemetry::instance();
    const bool measured = telemetry.enabled();
    if (measured)
        task.enqueuedAtNs = nowNs();

    const std::size_t shardIndex =
        currentPool == this
            ? currentWorker
            : nextShard.fetch_add(1, std::memory_order_relaxed) %
                  shards.size();
    Shard &shard = *shards[shardIndex];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (stopping.load(std::memory_order_acquire))
            return false;
        shard.tasks.push_back(std::move(task));
        shard.size.store(shard.tasks.size(),
                         std::memory_order_relaxed);
    }
    // The queue-depth gauge is published on the pop side (runTask):
    // a registry lookup here would sit between the enqueue timestamp
    // and the wake, inflating every measured queue wait.
    //
    // Publish-then-claim: the seq_cst fetch_add orders against a
    // parking worker's parked-publish / pending-recheck (see
    // workerLoop), so either wakeOne sees the worker parked or the
    // worker sees this push's pending count and refuses to sleep.
    pending.fetch_add(1, std::memory_order_seq_cst);
    wakeOne(shardIndex);
    return true;
}

void
ThreadPool::wakeOne(std::size_t preferred)
{
    // Prefer the owner of the shard the task landed on: it pops from
    // its own deque with no steal sweep. exchange(false) CLAIMS the
    // sleeper, so a burst of submissions wakes that many distinct
    // workers instead of poking the same one repeatedly. When nobody
    // is parked this is a sweep of plain loads and no locks - every
    // worker is awake and one of them will sweep the shards before
    // parking again. The loads must be seq_cst to complete the Dekker
    // pair with the parking worker (parked-publish / pending-recheck):
    // a relaxed load here could miss the parked flag while the parker
    // also misses our pending bump, and the task would be slept
    // through.
    for (std::size_t offset = 0; offset < shards.size(); ++offset) {
        Shard &shard = *shards[(preferred + offset) % shards.size()];
        if (!shard.parked.load(std::memory_order_seq_cst))
            continue;
        if (!shard.parked.exchange(false, std::memory_order_seq_cst))
            continue; // Another submission claimed this sleeper.
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.poked = true;
        }
        shard.cv.notify_one();
        return;
    }
}

bool
ThreadPool::tryAcquire(std::size_t self, QueuedTask &task, bool &stolen)
{
    // Own deque first (LIFO locality is irrelevant here - tasks are
    // pure - so FIFO keeps queue-wait fair), then sweep the peers.
    // Empty shards are skipped on the lock-free size mirror: sweeping
    // N-1 empty peers costs N-1 relaxed loads, not N-1 mutex round
    // trips. A stale zero only delays this probe; the sleep protocol
    // re-checks `pending` under sleepMutex before parking, so a task
    // pushed concurrently is picked up on the retry, never slept
    // through.
    for (std::size_t offset = 0; offset < shards.size(); ++offset) {
        const std::size_t index = (self + offset) % shards.size();
        Shard &shard = *shards[index];
        if (shard.size.load(std::memory_order_relaxed) == 0)
            continue;
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.tasks.empty())
            continue;
        task = std::move(shard.tasks.front());
        shard.tasks.pop_front();
        shard.size.store(shard.tasks.size(),
                         std::memory_order_relaxed);
        stolen = index != self;
        return true;
    }
    return false;
}

struct ThreadPool::WorkerMetrics
{
    /// Registry generation the handles were resolved under; anything
    /// else (including the initial sentinel) forces a re-resolve.
    std::uint64_t generation = ~std::uint64_t{0};
    Gauge *depth = nullptr;
    Histogram *queueWait = nullptr;
    Histogram *taskRun = nullptr;
    Counter *tasks = nullptr;
    Counter *steals = nullptr;
    Counter *busy = nullptr;
};

void
ThreadPool::runTask(QueuedTask &task, std::size_t worker, bool stolen,
                    WorkerMetrics &cached)
{
    const std::size_t depth = pending.fetch_sub(1) - 1;
    Telemetry &telemetry = Telemetry::instance();
    if (!telemetry.enabled()) {
        task.run();
        return;
    }

    // Resolve the string-keyed instruments once per registry
    // generation, not once per task: on a busy pool the lookups (and
    // the per-worker name concatenation) otherwise dominate the
    // telemetry cost and stretch every queue-wait sample behind them.
    MetricsRegistry &metrics = telemetry.metrics();
    // Snapshot the generation BEFORE resolving: a clear() racing the
    // resolves then leaves a stale generation behind and the next task
    // re-resolves, instead of stamping fresh handles with a generation
    // they were not resolved under.
    const std::uint64_t generation = metrics.generation();
    if (cached.generation != generation) {
        cached.depth = &metrics.gauge("pool.queue_depth");
        cached.queueWait = &metrics.histogram("pool.queue_wait_s");
        cached.taskRun = &metrics.histogram("pool.task_run_s");
        cached.tasks = &metrics.counter("pool.tasks");
        cached.steals = &metrics.counter("pool.steals");
        cached.busy = &metrics.counter(
            "pool.worker." + std::to_string(worker) + ".busy_us");
        cached.generation = generation;
    }
    cached.depth->set(static_cast<std::int64_t>(depth));
    const std::int64_t started_ns = nowNs();
    if (task.enqueuedAtNs != 0) {
        cached.queueWait->record(
            static_cast<double>(started_ns - task.enqueuedAtNs) * 1e-9);
    }
    task.run(); // packaged_task: exceptions land in the future.
    const std::int64_t busy_ns = nowNs() - started_ns;
    cached.taskRun->record(static_cast<double>(busy_ns) * 1e-9);
    cached.tasks->add();
    if (stolen)
        cached.steals->add();
    cached.busy->add(static_cast<std::uint64_t>(busy_ns / 1000));
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    currentPool = this;
    currentWorker = worker;
    QueuedTask task;
    bool stolen = false;
    WorkerMetrics cached; // This worker's instrument handles.
    for (;;) {
        if (tryAcquire(worker, task, stolen)) {
            runTask(task, worker, stolen, cached);
            task.run = nullptr;
            continue;
        }
        if (stopping.load(std::memory_order_acquire)) {
            // The stop mark is only set once no further pushes can
            // land (see shutdown()), so one final sweep after
            // observing it is authoritative: empty means drained.
            if (tryAcquire(worker, task, stolen)) {
                runTask(task, worker, stolen, cached);
                task.run = nullptr;
                continue;
            }
            return;
        }
        // Park on the home shard's own cv - no pool-wide sleep lock
        // for wake bursts to convoy on. Publish parked=true, then
        // re-check the pool-wide pending count (the Dekker partner of
        // enqueue's publish-then-claim): an enqueue that missed the
        // parked flag has already bumped `pending`, so we retry the
        // sweep instead of sleeping through its task.
        Shard &home = *shards[worker];
        std::unique_lock<std::mutex> lock(home.mutex);
        if (!home.tasks.empty())
            continue; // Pushed to our shard between sweep and lock.
        home.parked.store(true, std::memory_order_seq_cst);
        if (pending.load(std::memory_order_seq_cst) > 0 ||
            stopping.load(std::memory_order_acquire)) {
            home.parked.store(false, std::memory_order_relaxed);
            continue;
        }
        home.cv.wait(lock, [this, &home] {
            return stopping.load(std::memory_order_acquire) ||
                   home.poked || !home.tasks.empty();
        });
        home.poked = false;
        home.parked.store(false, std::memory_order_relaxed);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body,
                        std::size_t grain)
{
    if (count == 0)
        return;
    if (grain == 0)
        grain = 1;
    if (count <= grain) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    // Shared claim counter + completion latch + first-error slot.
    // Helpers (one per worker, capped at the chunk count) and the
    // caller all drain the same counter, so the caller always makes
    // progress even when every worker is busy with unrelated tasks.
    // The caller waits on the latch, NOT on the helper tasks: a helper
    // that never gets scheduled (e.g. nested parallelFor from a worker,
    // or a rejected submit during pool shutdown) is harmless - once all
    // iterations are claimed it would exit without touching caller
    // state, so no self-deadlock is possible.
    struct State
    {
        explicit State(std::ptrdiff_t n) : done(n) {}
        std::atomic<std::size_t> next{0};
        Latch done;
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;
    };
    auto state =
        std::make_shared<State>(static_cast<std::ptrdiff_t>(count));

    auto drain = [state, count, grain, &body]() {
        for (;;) {
            const std::size_t begin =
                state->next.fetch_add(grain, std::memory_order_relaxed);
            if (begin >= count)
                return;
            const std::size_t end = std::min(begin + grain, count);
            for (std::size_t i = begin; i < end; ++i) {
                if (state->failed.load(std::memory_order_relaxed))
                    break;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->errorMutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    state->failed.store(true,
                                        std::memory_order_relaxed);
                }
            }
            // One count-down per claimed chunk (abandoned iterations
            // after a failure are counted as done: they were claimed).
            state->done.countDown(
                static_cast<std::ptrdiff_t>(end - begin));
        }
    };

    const std::size_t chunks = (count + grain - 1) / grain;
    const std::size_t helpers = std::min(workers.size(), chunks - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        submit(drain);

    drain(); // Caller participates.
    state->done.wait();

    if (state->error)
        std::rethrow_exception(state->error);
}

void
parallel_for(ThreadPool *pool, std::size_t count,
             const std::function<void(std::size_t)> &body,
             std::size_t grain)
{
    if (pool != nullptr) {
        pool->parallelFor(count, body, grain);
        return;
    }
    for (std::size_t i = 0; i < count; ++i)
        body(i);
}

} // namespace autopilot::util
