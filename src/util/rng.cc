#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace autopilot::util
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : state)
        word = sm.next();
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    panicIf(lo > hi, "Rng::uniformInt: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<int>(next64() % span);
}

std::size_t
Rng::index(std::size_t n)
{
    panicIf(n == 0, "Rng::index: empty range");
    return static_cast<std::size_t>(next64() % n);
}

double
Rng::normal()
{
    if (hasSpareNormal) {
        hasSpareNormal = false;
        return spareNormal;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    spareNormal = radius * std::sin(angle);
    hasSpareNormal = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t tag)
{
    // Mix the tag with fresh output so forked streams diverge even for
    // adjacent tags.
    return Rng(next64() ^ (tag * 0xD1B54A32D192ED03ull));
}

} // namespace autopilot::util
