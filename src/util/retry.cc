#include "util/retry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "util/cancel.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace autopilot::util
{

Deadline
Deadline::after(double seconds)
{
    Deadline deadline;
    if (seconds <= 0.0)
        return deadline; // Unlimited.
    deadline.bounded = true;
    deadline.budgetSeconds = seconds;
    deadline.expiry =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    return deadline;
}

bool
Deadline::expired() const
{
    return bounded && Clock::now() >= expiry;
}

double
Deadline::remainingSeconds() const
{
    if (!bounded)
        return std::numeric_limits<double>::infinity();
    const double remaining =
        std::chrono::duration<double>(expiry - Clock::now()).count();
    return std::max(remaining, 0.0);
}

void
Deadline::check(const std::string &what) const
{
    if (expired()) {
        throw DeadlineExceeded(what + ": deadline of " +
                               std::to_string(budgetSeconds) +
                               " s exceeded");
    }
}

double
retryBackoffSeconds(const RetryPolicy &policy, int attempt)
{
    panicIf(attempt < 2, "retryBackoffSeconds: attempt must be >= 2");
    // Clamp as soon as the ceiling is reached instead of multiplying
    // all the way out: a long-lived daemon reaches attempt counts where
    // the naive product overflows to infinity (and, with a zero initial
    // backoff, to 0 * inf == NaN, which std::min happily propagates
    // into sleep_for). The early exit also keeps the call O(log) in
    // the growing regime rather than O(attempt).
    double backoff = policy.initialBackoffSeconds;
    for (int a = 2; a < attempt; ++a) {
        if (backoff >= policy.maxBackoffSeconds)
            break;
        const double next = backoff * policy.backoffMultiplier;
        if (next == backoff)
            break; // Fixed point (multiplier 1, or backoff 0).
        backoff = next;
    }
    return std::min(backoff, policy.maxBackoffSeconds);
}

void
validateRetryPolicy(const RetryPolicy &policy)
{
    fatalIf(policy.maxAttempts < 1,
            "RetryPolicy: maxAttempts must be >= 1");
    fatalIf(!std::isfinite(policy.initialBackoffSeconds) ||
                !std::isfinite(policy.maxBackoffSeconds) ||
                !std::isfinite(policy.backoffMultiplier) ||
                policy.initialBackoffSeconds < 0.0 ||
                policy.maxBackoffSeconds < 0.0 ||
                policy.backoffMultiplier < 1.0,
            "RetryPolicy: bad backoff schedule");
}

void
sleepForRetry(const RetryPolicy &policy, int nextAttempt)
{
    Telemetry &telemetry = Telemetry::instance();
    if (telemetry.enabled())
        telemetry.metrics().counter("util.retry.attempts").add();
    const double seconds = retryBackoffSeconds(policy, nextAttempt);
    if (seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
    }
}

bool
shouldRetry(const RetryPolicy &policy, const std::exception &error)
{
    // The deadline is wall-clock: retrying cannot bring the time back.
    if (dynamic_cast<const DeadlineExceeded *>(&error) != nullptr)
        return false;
    // A cancel means the process is draining: retrying would fight
    // the shutdown it was asked to cooperate with.
    if (dynamic_cast<const CancelledError *>(&error) != nullptr)
        return false;
    return !policy.retryable || policy.retryable(error);
}

} // namespace autopilot::util
