#include "util/telemetry.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "util/logging.h"
#include "util/table.h"

namespace autopilot::util
{

namespace
{

/** Lower a double atomically (CAS loop). */
void
atomicMin(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value < current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

/** Raise a double atomically (CAS loop). */
void
atomicMax(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

/** Accumulate into a double atomically (CAS loop). */
void
atomicAdd(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + value,
                                         std::memory_order_relaxed)) {
    }
}

/** Compact round-trippable decimal rendering for CSV cells. */
std::string
formatCompact(double value)
{
    std::ostringstream os;
    os << std::setprecision(12) << value;
    return os.str();
}

} // namespace

// ------------------------------------------------------------- gauge ----

void
Gauge::set(std::int64_t value)
{
    current.store(value, std::memory_order_relaxed);
    raiseHighWater(value);
}

void
Gauge::add(std::int64_t delta)
{
    const std::int64_t value =
        current.fetch_add(delta, std::memory_order_relaxed) + delta;
    raiseHighWater(value);
}

void
Gauge::raiseHighWater(std::int64_t value)
{
    std::int64_t seen = highWater.load(std::memory_order_relaxed);
    while (value > seen &&
           !highWater.compare_exchange_weak(seen, value,
                                            std::memory_order_relaxed)) {
    }
}

// --------------------------------------------------------- histogram ----

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds(std::move(upperBounds)), buckets(bounds.size() + 1),
      lowest(std::numeric_limits<double>::infinity()),
      highest(-std::numeric_limits<double>::infinity())
{
    fatalIf(bounds.empty(), "Histogram: need at least one bucket bound");
    fatalIf(!std::is_sorted(bounds.begin(), bounds.end()),
            "Histogram: bucket bounds must be ascending");
}

void
Histogram::record(double value)
{
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
    buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    samples.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(total, value);
    atomicMin(lowest, value);
    atomicMax(highest, value);
}

double
Histogram::min() const
{
    return count() == 0 ? 0.0 : lowest.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return count() == 0 ? 0.0 : highest.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(buckets.size());
    for (const std::atomic<std::uint64_t> &bucket : buckets)
        counts.push_back(bucket.load(std::memory_order_relaxed));
    return counts;
}

const std::vector<double> &
Histogram::defaultLatencyBoundsSeconds()
{
    static const std::vector<double> bounds = {
        1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
        5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0, 10.0};
    return bounds;
}

// ---------------------------------------------------------- registry ----

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::unique_ptr<Counter> &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::unique_ptr<Gauge> &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &upperBounds)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::unique_ptr<Histogram> &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(upperBounds);
    return *slot;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::vector<MetricSample> samples;
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[name, counter] : counters) {
        MetricSample sample;
        sample.name = name;
        sample.kind = "counter";
        sample.count = counter->value();
        sample.sum = static_cast<double>(counter->value());
        sample.value = static_cast<double>(counter->value());
        samples.push_back(std::move(sample));
    }
    for (const auto &[name, gauge] : gauges) {
        MetricSample sample;
        sample.name = name;
        sample.kind = "gauge";
        sample.max = static_cast<double>(gauge->maxValue());
        sample.value = static_cast<double>(gauge->value());
        samples.push_back(std::move(sample));
    }
    for (const auto &[name, histogram] : histograms) {
        MetricSample sample;
        sample.name = name;
        sample.kind = "histogram";
        sample.count = histogram->count();
        sample.sum = histogram->sum();
        sample.min = histogram->min();
        sample.max = histogram->max();
        sample.value = histogram->mean();
        samples.push_back(std::move(sample));
    }
    std::sort(samples.begin(), samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return samples;
}

MetricSample
MetricsRegistry::find(const std::string &name) const
{
    for (const MetricSample &sample : snapshot()) {
        if (sample.name == name)
            return sample;
    }
    return MetricSample{};
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    Table table({"name", "kind", "count", "sum", "min", "max", "value"});
    for (const MetricSample &sample : snapshot()) {
        table.addRow({sample.name, sample.kind,
                      std::to_string(sample.count),
                      formatCompact(sample.sum), formatCompact(sample.min),
                      formatCompact(sample.max),
                      formatCompact(sample.value)});
    }
    table.printCsv(os);
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    // Retire instead of free: a worker that resolved a handle before
    // this clear may still be mid-update (e.g. a pool task epilogue
    // racing a benchmark's telemetry reset); its writes must land in
    // orphaned storage, not freed memory. The generation bump makes
    // cached handles re-resolve on their next use.
    for (auto &entry : counters)
        retired.push_back(std::shared_ptr<void>(std::move(entry.second)));
    for (auto &entry : gauges)
        retired.push_back(std::shared_ptr<void>(std::move(entry.second)));
    for (auto &entry : histograms)
        retired.push_back(std::shared_ptr<void>(std::move(entry.second)));
    counters.clear();
    gauges.clear();
    histograms.clear();
    gen.fetch_add(1, std::memory_order_release);
}

// --------------------------------------------------------- trace log ----

namespace
{

std::uint64_t
nextLogId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TraceLog::TraceLog()
    : epoch(std::chrono::steady_clock::now()), logId(nextLogId())
{
}

std::int64_t
TraceLog::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

TraceLog::ThreadBuffer &
TraceLog::localBuffer()
{
    // Keyed by log id, not address, so a TraceLog recreated at the same
    // address cannot inherit another log's buffer.
    thread_local std::unordered_map<std::uint64_t,
                                    std::shared_ptr<ThreadBuffer>>
        cache;
    std::shared_ptr<ThreadBuffer> &slot = cache[logId];
    if (!slot) {
        slot = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(buffersMutex);
        slot->tid = nextTid++;
        buffers.push_back(slot);
    }
    return *slot;
}

void
TraceLog::record(std::string name, std::string category,
                 std::int64_t start_us, std::int64_t duration_us)
{
    ThreadBuffer &buffer = localBuffer();
    TraceEvent event;
    event.name = std::move(name);
    event.category = std::move(category);
    event.tid = buffer.tid;
    event.startUs = start_us;
    event.durationUs = duration_us;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceLog::events() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> snapshot;
    {
        std::lock_guard<std::mutex> lock(buffersMutex);
        snapshot = buffers;
    }
    std::vector<TraceEvent> all;
    for (const std::shared_ptr<ThreadBuffer> &buffer : snapshot) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        all.insert(all.end(), buffer->events.begin(),
                   buffer->events.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startUs < b.startUs;
                     });
    return all;
}

std::size_t
TraceLog::eventCount() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> snapshot;
    {
        std::lock_guard<std::mutex> lock(buffersMutex);
        snapshot = buffers;
    }
    std::size_t count = 0;
    for (const std::shared_ptr<ThreadBuffer> &buffer : snapshot) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        count += buffer->events.size();
    }
    return count;
}

namespace
{

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char ch : text) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                std::ostringstream os;
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(ch);
                out += os.str();
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace

void
TraceLog::writeChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &event : events()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << jsonEscape(event.name)
           << "\",\"cat\":\"" << jsonEscape(event.category)
           << "\",\"ph\":\"X\",\"ts\":" << event.startUs
           << ",\"dur\":" << event.durationUs
           << ",\"pid\":1,\"tid\":" << event.tid << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
TraceLog::clear()
{
    std::lock_guard<std::mutex> lock(buffersMutex);
    for (const std::shared_ptr<ThreadBuffer> &buffer : buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        buffer->events.clear();
    }
}

// ----------------------------------------------------------- facade ----

Telemetry &
Telemetry::instance()
{
    static Telemetry telemetry;
    return telemetry;
}

void
Telemetry::reset()
{
    registry.clear();
    traceLog.clear();
}

void
Telemetry::printSummary(std::ostream &os) const
{
    Table table({"metric", "kind", "count", "mean", "min", "max",
                 "value"});
    for (const MetricSample &sample : registry.snapshot()) {
        if (sample.kind == "histogram") {
            // Histograms hold latencies in seconds; print milliseconds.
            table.addRow({sample.name, sample.kind,
                          std::to_string(sample.count),
                          formatDouble(sample.value * 1e3, 3) + " ms",
                          formatDouble(sample.min * 1e3, 3) + " ms",
                          formatDouble(sample.max * 1e3, 3) + " ms",
                          formatDouble(sample.value * 1e3, 3) + " ms"});
        } else {
            table.addRow({sample.name, sample.kind,
                          std::to_string(sample.count), "-", "-",
                          formatCompact(sample.max),
                          formatCompact(sample.value)});
        }
    }
    table.print(os);
}

// ------------------------------------------------------ RAII helpers ----

ScopedTimer::ScopedTimer(Histogram *histogram) : target(histogram)
{
    if (target != nullptr)
        start = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    stop();
}

double
ScopedTimer::stop()
{
    if (target == nullptr || stopped)
        return 0.0;
    stopped = true;
    const double seconds = elapsedSeconds();
    target->record(seconds);
    return seconds;
}

double
ScopedTimer::elapsedSeconds() const
{
    if (target == nullptr)
        return 0.0;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

TraceSpan::TraceSpan(const char *name, const char *category)
    : name(name), category(category),
      active(Telemetry::instance().enabled())
{
    if (active)
        startUs = Telemetry::instance().trace().nowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active)
        return;
    TraceLog &log = Telemetry::instance().trace();
    log.record(name, category, startUs, log.nowUs() - startUs);
}

} // namespace autopilot::util
