/**
 * @file
 * Fault-tolerance primitives for long-running campaigns: bounded
 * retry-with-backoff for transient failures and wall-clock deadlines
 * for runaway tasks.
 *
 * Both are deliberately tiny and exception-based: a transient failure
 * anywhere in a task (an injected fault, a flaky cost-model backend, a
 * filesystem hiccup) surfaces as a thrown std::exception, and the
 * campaign layer decides whether to retry, skip or give up. The
 * helpers never call fatal(): a failed task must degrade to a
 * diagnosed skip, not kill the whole campaign.
 *
 * Telemetry: each retry sleep bumps the "util.retry.attempts" counter
 * when the global util::Telemetry is enabled.
 */

#ifndef AUTOPILOT_UTIL_RETRY_H
#define AUTOPILOT_UTIL_RETRY_H

#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

namespace autopilot::util
{

/** Thrown when a Deadline expires; never retried by retryWithBackoff. */
class DeadlineExceeded : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Wall-clock budget anchored at construction (steady_clock, so system
 * clock adjustments cannot expire a task early). Default-constructed
 * deadlines are unlimited and never expire.
 */
class Deadline
{
  public:
    /** Unlimited: expired() is always false. */
    Deadline() = default;

    /**
     * Deadline @p seconds from now; a non-positive budget means
     * unlimited (the "no deadline" encoding used by config structs).
     */
    static Deadline after(double seconds);

    bool unlimited() const { return !bounded; }

    /** True once the budget is spent. */
    bool expired() const;

    /** Seconds left; +infinity when unlimited, 0 when expired. */
    double remainingSeconds() const;

    /**
     * Throw DeadlineExceeded("<what>: deadline of <budget> s exceeded")
     * when expired; cheap no-op otherwise. Sprinkle between pipeline
     * phases for cooperative cancellation.
     */
    void check(const std::string &what) const;

  private:
    using Clock = std::chrono::steady_clock;

    bool bounded = false;
    double budgetSeconds = 0.0;
    Clock::time_point expiry{};
};

/** Backoff schedule and retry budget for retryWithBackoff(). */
struct RetryPolicy
{
    /// Total attempts including the first (must be >= 1).
    int maxAttempts = 3;
    /// Sleep before attempt 2; each further retry multiplies it.
    double initialBackoffSeconds = 0.02;
    double backoffMultiplier = 2.0;
    /// Ceiling on a single backoff sleep.
    double maxBackoffSeconds = 1.0;
    /**
     * Which failures are worth retrying; null retries everything
     * except DeadlineExceeded, which is terminal by definition (the
     * time is gone no matter how often we try).
     */
    std::function<bool(const std::exception &)> retryable;
};

/** Backoff sleep before attempt @p attempt (2-based); clamped. */
double retryBackoffSeconds(const RetryPolicy &policy, int attempt);

/** @cond internal: out-of-line pieces of retryWithBackoff. */
void validateRetryPolicy(const RetryPolicy &policy);
void sleepForRetry(const RetryPolicy &policy, int nextAttempt);
bool shouldRetry(const RetryPolicy &policy, const std::exception &error);
/** @endcond */

/**
 * Run @p fn (called with the 1-based attempt number) until it returns,
 * retrying retryable failures up to policy.maxAttempts total attempts
 * with exponential backoff between them. The last failure is rethrown
 * once the budget is exhausted; non-retryable failures (including any
 * DeadlineExceeded) are rethrown immediately.
 *
 * @param onRetry Optional observer invoked after a failed attempt that
 *        will be retried (with the attempt number that failed and the
 *        error), before the backoff sleep.
 */
template <typename Fn>
auto
retryWithBackoff(const RetryPolicy &policy, Fn &&fn,
                 const std::function<void(int, const std::exception &)>
                     &onRetry = {})
{
    validateRetryPolicy(policy);
    for (int attempt = 1;; ++attempt) {
        try {
            return fn(attempt);
        } catch (const std::exception &error) {
            if (attempt >= policy.maxAttempts ||
                !shouldRetry(policy, error))
                throw;
            if (onRetry)
                onRetry(attempt, error);
            sleepForRetry(policy, attempt + 1);
        }
    }
}

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_RETRY_H
