/**
 * @file
 * Deterministic random number generation for simulations and optimizers.
 *
 * Every stochastic component in the library takes an explicit 64-bit seed so
 * that benches and tests regenerate identical numbers across runs and
 * platforms. The generator is xoshiro256** seeded through SplitMix64, both
 * public-domain algorithms with well-studied statistical behaviour.
 */

#ifndef AUTOPILOT_UTIL_RNG_H
#define AUTOPILOT_UTIL_RNG_H

#include <array>
#include <cstdint>
#include <vector>

namespace autopilot::util
{

/**
 * SplitMix64 stream, used to expand a single seed into generator state and
 * to derive independent child seeds.
 */
class SplitMix64
{
  public:
    /** @param seed Initial state; any value, including zero, is valid. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value in the stream. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Satisfies the essentials of UniformRandomBitGenerator but is used via its
 * own distribution helpers to guarantee cross-platform determinism (the
 * standard distributions are implementation-defined).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Raw 64 random bits. */
    result_type operator()() { return next64(); }

    /** Next raw 64-bit sample. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi);

    /** Uniform index in [0, n). @pre n > 0. */
    std::size_t index(std::size_t n);

    /** Standard normal sample (Box-Muller, deterministic). */
    double normal();

    /** Normal sample with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator.
     *
     * Two children forked with different tags from the same parent state
     * produce uncorrelated streams; useful for per-episode seeding.
     */
    Rng fork(std::uint64_t tag);

    /** Fisher-Yates shuffle of a vector, using this stream. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        if (values.empty())
            return;
        for (std::size_t i = values.size() - 1; i > 0; --i) {
            std::size_t j = index(i + 1);
            std::swap(values[i], values[j]);
        }
    }

  private:
    std::array<std::uint64_t, 4> state;
    bool hasSpareNormal = false;
    double spareNormal = 0.0;
};

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_RNG_H
