/**
 * @file
 * Small descriptive-statistics helpers used by the simulators and benches.
 */

#ifndef AUTOPILOT_UTIL_STATS_H
#define AUTOPILOT_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace autopilot::util
{

/** Arithmetic mean. @pre values is non-empty. */
double mean(const std::vector<double> &values);

/** Unbiased sample variance (n-1 denominator); 0 for n < 2. */
double variance(const std::vector<double> &values);

/** Sample standard deviation. */
double stddev(const std::vector<double> &values);

/** Geometric mean. @pre all values strictly positive. */
double geomean(const std::vector<double> &values);

/** Smallest element. @pre values is non-empty. */
double minValue(const std::vector<double> &values);

/** Largest element. @pre values is non-empty. */
double maxValue(const std::vector<double> &values);

/**
 * Linear-interpolated percentile.
 *
 * @param values Sample (copied and sorted internally).
 * @param pct    Percentile in [0, 100].
 */
double percentile(std::vector<double> values, double pct);

/**
 * Streaming accumulator for mean/variance (Welford) plus min/max.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Number of observations so far. */
    std::size_t count() const { return n; }

    /** Mean of observations; 0 when empty. */
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample variance; 0 for n < 2. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation. @pre count() > 0. */
    double min() const;

    /** Largest observation. @pre count() > 0. */
    double max() const;

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_STATS_H
