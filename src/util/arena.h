/**
 * @file
 * Bump-pointer scratch allocator for the batch evaluation hot path.
 *
 * The analytical batch kernel (systolic/compiled_plan.h) needs a handful
 * of contiguous SoA scratch arrays per batch, sized by the batch at hand.
 * Allocating them from the general-purpose heap on every batch is exactly
 * the per-evaluation malloc traffic the raw-speed refactor removes, so
 * the kernel draws its scratch from an Arena instead: allocation is a
 * pointer bump, reset() recycles every block for the next batch without
 * returning memory to the OS, and after the first few batches a reused
 * arena reaches a steady state where no allocation escapes to malloc at
 * all.
 *
 * Memory is organized as a chain of geometrically growing blocks. Growth
 * appends a new block and never moves existing ones, so pointers handed
 * out earlier in the same batch stay valid while later allocations
 * trigger growth - the batch kernel relies on this to build several
 * arrays incrementally.
 *
 * Deliberately *not* thread-safe: the intended pattern is one
 * thread-local arena per pool worker (see AnalyticalBackend), which
 * makes all accesses naturally single-threaded and keeps the bump path
 * free of atomics.
 */

#ifndef AUTOPILOT_UTIL_ARENA_H
#define AUTOPILOT_UTIL_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace autopilot::util
{

/** Growable bump allocator; reset() recycles all blocks. */
class Arena
{
  public:
    /** Default size of the first block (64 KiB). */
    static constexpr std::size_t kDefaultFirstBlockBytes = 64 * 1024;

    /**
     * @param firstBlockBytes Capacity of the first block; later blocks
     *        double until an allocation exceeds the doubled size, in
     *        which case the block is sized to fit it.
     */
    explicit Arena(std::size_t firstBlockBytes = kDefaultFirstBlockBytes);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p count value-initialized (zeroed) elements of T.
     * T must be trivially destructible: the arena never runs
     * destructors. Returns an empty span for count == 0.
     */
    template <typename T>
    std::span<T> allocate(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena::allocate: arena memory is reclaimed "
                      "without running destructors");
        if (count == 0)
            return {};
        void *raw = allocateBytes(count * sizeof(T), alignof(T));
        T *first = static_cast<T *>(raw);
        std::uninitialized_value_construct_n(first, count);
        return {first, count};
    }

    /**
     * Raw allocation: @p bytes bytes at @p alignment (a power of two no
     * larger than alignof(std::max_align_t)).
     */
    void *allocateBytes(std::size_t bytes, std::size_t alignment);

    /**
     * Recycle every block for reuse. Previously returned pointers become
     * dangling; capacity is retained, so a warm arena allocates the next
     * batch without touching the heap.
     */
    void reset();

    /** Sum of all block capacities in bytes. */
    std::size_t capacityBytes() const;

    /** Bytes bump-allocated since the last reset(). */
    std::size_t usedBytes() const;

    /** Number of blocks in the chain (stable across reset()). */
    std::size_t blockCount() const { return blocks.size(); }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t capacity = 0;
        std::size_t used = 0;
    };

    /** Append a block able to hold at least @p bytes. */
    Block &grow(std::size_t bytes);

    std::vector<Block> blocks;
    std::size_t current = 0; ///< Index of the block being bumped.
};

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_ARENA_H
