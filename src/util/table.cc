#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace autopilot::util
{

Table::Table(std::vector<std::string> header) : header(std::move(header))
{
    fatalIf(this->header.empty(), "Table: header must not be empty");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != header.size(),
            "Table::addRow: cell count does not match header");
    rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    emit_row(header);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << quote(row[c]);
            os << (c + 1 == row.size() ? "\n" : ",");
        }
    };

    emit_row(header);
    for (const auto &row : rows)
        emit_row(row);
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatRatio(double value, int precision)
{
    return formatDouble(value, precision) + "x";
}

} // namespace autopilot::util
