/**
 * @file
 * ASCII table and CSV emitters used by the bench harnesses to print the
 * rows/series reported in the paper's tables and figures.
 */

#ifndef AUTOPILOT_UTIL_TABLE_H
#define AUTOPILOT_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace autopilot::util
{

/**
 * Column-aligned ASCII table builder.
 *
 * Usage:
 * @code
 *   Table t({"design", "fps", "watts"});
 *   t.addRow({"AP", "46.0", "0.70"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** @param header Column titles; fixes the column count. */
    explicit Table(std::vector<std::string> header);

    /** Append a row. @pre cells.size() == column count (fatal otherwise). */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (quotes cells containing separators). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p precision digits after the decimal point. */
std::string formatDouble(double value, int precision = 2);

/** Format a ratio as, e.g., "2.25x". */
std::string formatRatio(double value, int precision = 2);

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_TABLE_H
