/**
 * @file
 * Run-telemetry subsystem: metrics and trace spans for the parallel
 * pipeline.
 *
 * Three pieces, all thread-safe:
 *
 *  - MetricsRegistry: named monotonic Counters, last-value Gauges (with a
 *    high-water mark) and fixed-bucket latency Histograms. Instruments
 *    are created on first use and live for the registry's lifetime, so
 *    handles can be cached across calls.
 *  - TraceLog: completed spans ({name, category, tid, start, duration})
 *    recorded into per-thread buffers and exportable as a Chrome
 *    `chrome://tracing` / Perfetto-compatible trace-event JSON file.
 *  - Telemetry: the process-wide facade combining one registry and one
 *    trace log behind an atomic enabled flag. Everything is OFF by
 *    default; with telemetry disabled every instrumentation site reduces
 *    to one relaxed atomic load, so default output (and the golden
 *    tests) are byte-identical to an uninstrumented build.
 *
 * RAII helpers: ScopedTimer records a duration into a Histogram on
 * destruction; TraceSpan records a span into the global trace log for
 * the enclosing scope.
 *
 * Clocks are std::chrono::steady_clock throughout; trace timestamps are
 * microseconds since the log's epoch, so they are monotonic per process
 * and comparable across threads.
 */

#ifndef AUTOPILOT_UTIL_TELEMETRY_H
#define AUTOPILOT_UTIL_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace autopilot::util
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p delta (default 1) to the count. */
    void add(std::uint64_t delta = 1)
    {
        count.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return count.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count{0};
};

/** Last-set instantaneous value plus its high-water mark. */
class Gauge
{
  public:
    /** Set the current value (and raise the high-water mark). */
    void set(std::int64_t value);

    /** Adjust the current value by @p delta. */
    void add(std::int64_t delta);

    std::int64_t value() const
    {
        return current.load(std::memory_order_relaxed);
    }

    /** Largest value ever observed by set()/add(). */
    std::int64_t maxValue() const
    {
        return highWater.load(std::memory_order_relaxed);
    }

  private:
    void raiseHighWater(std::int64_t value);

    std::atomic<std::int64_t> current{0};
    std::atomic<std::int64_t> highWater{0};
};

/**
 * Fixed-bucket histogram with sum/min/max/count aggregates.
 *
 * Buckets are defined by ascending upper bounds; a value lands in the
 * first bucket whose bound is >= the value, or in the implicit overflow
 * bucket past the last bound (bucketCounts() has bounds.size() + 1
 * entries). Recording is lock-free: per-bucket atomic adds plus CAS
 * loops for the floating-point aggregates.
 */
class Histogram
{
  public:
    /** @param upperBounds Ascending bucket upper bounds (not empty). */
    explicit Histogram(std::vector<double> upperBounds);

    /** Record one sample. */
    void record(double value);

    std::uint64_t count() const
    {
        return samples.load(std::memory_order_relaxed);
    }

    double sum() const { return total.load(std::memory_order_relaxed); }

    /** Smallest recorded sample (0 when empty). */
    double min() const;

    /** Largest recorded sample (0 when empty). */
    double max() const;

    /** Arithmetic mean of the samples (0 when empty). */
    double mean() const;

    const std::vector<double> &bucketBounds() const { return bounds; }

    /** Per-bucket counts; the last entry is the overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

    /**
     * Default bounds for latencies measured in seconds: a 1-2-5
     * progression from 1 us to 10 s (plus overflow).
     */
    static const std::vector<double> &defaultLatencyBoundsSeconds();

  private:
    std::vector<double> bounds;
    std::vector<std::atomic<std::uint64_t>> buckets; ///< bounds + overflow.
    std::atomic<std::uint64_t> samples{0};
    std::atomic<double> total{0.0};
    std::atomic<double> lowest;
    std::atomic<double> highest;
};

/** One row of a MetricsRegistry snapshot. */
struct MetricSample
{
    std::string name;
    std::string kind;   ///< "counter", "gauge" or "histogram".
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;   ///< Gauges report 0 / high-water in max.
    double max = 0.0;
    double value = 0.0; ///< Counter count, gauge value, histogram mean.
};

/**
 * Named instrument registry. Lookup takes a mutex; the returned
 * references stay valid for the registry's lifetime, so hot paths can
 * resolve a name once and update lock-free afterwards.
 */
class MetricsRegistry
{
  public:
    /** The counter named @p name, created on first use. */
    Counter &counter(const std::string &name);

    /** The gauge named @p name, created on first use. */
    Gauge &gauge(const std::string &name);

    /**
     * The histogram named @p name, created on first use with
     * @p upperBounds (later calls ignore the bounds argument).
     */
    Histogram &histogram(
        const std::string &name,
        const std::vector<double> &upperBounds =
            Histogram::defaultLatencyBoundsSeconds());

    /** All instruments, sorted by name. */
    std::vector<MetricSample> snapshot() const;

    /** The sample for @p name, or a default-constructed one if absent. */
    MetricSample find(const std::string &name) const;

    /**
     * Write the snapshot as a flat CSV with header
     * `name,kind,count,sum,min,max,value`.
     */
    void writeCsv(std::ostream &os) const;

    /**
     * Drop every instrument from the registry. Outstanding handles
     * stay dereferenceable - cleared instruments are retired, not
     * freed, until the registry itself is destroyed - but they are
     * orphaned: updates through them are silently lost and they no
     * longer appear in snapshots. (A pool worker finishing its task
     * epilogue while a benchmark resets telemetry therefore records
     * into a retired instrument instead of freed memory.)
     */
    void clear();

    /**
     * Bumped by every clear(). Hot paths that cache instrument
     * references (the thread pool caches its per-task instruments per
     * worker) compare this against the generation they resolved under
     * and re-resolve on mismatch, so at most one task's samples land
     * in retired instruments after a clear().
     */
    std::uint64_t generation() const
    {
        return gen.load(std::memory_order_acquire);
    }

  private:
    mutable std::mutex mutex;
    std::atomic<std::uint64_t> gen{0};
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    /// Instruments dropped by clear(), kept alive so handles resolved
    /// before the clear never dangle. Grows by one generation's
    /// instruments per clear(); bounded in practice by how often tests
    /// and benchmarks reset telemetry.
    std::vector<std::shared_ptr<void>> retired;
};

/** One completed span. */
struct TraceEvent
{
    std::string name;
    std::string category;
    int tid = 0;                 ///< Log-assigned thread index.
    std::int64_t startUs = 0;    ///< Microseconds since the log epoch.
    std::int64_t durationUs = 0;
};

/**
 * Completed-span log with per-thread buffers.
 *
 * Each recording thread appends to its own mutex-guarded buffer (the
 * mutex is only ever contended by a concurrent events()/clear() walk),
 * so recording does not serialize worker threads against each other.
 */
class TraceLog
{
  public:
    TraceLog();

    /** Microseconds elapsed since the log was constructed. */
    std::int64_t nowUs() const;

    /** Record one completed span on the calling thread's buffer. */
    void record(std::string name, std::string category,
                std::int64_t start_us, std::int64_t duration_us);

    /** All events from all threads, sorted by start time. */
    std::vector<TraceEvent> events() const;

    /** Total number of recorded events. */
    std::size_t eventCount() const;

    /**
     * Write the log in Chrome trace-event JSON format (an object with a
     * "traceEvents" array of complete "X" events), loadable by
     * chrome://tracing and https://ui.perfetto.dev.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Drop all recorded events (buffers and thread ids are kept). */
    void clear();

  private:
    struct ThreadBuffer
    {
        std::mutex mutex;
        std::vector<TraceEvent> events;
        int tid = 0;
    };

    ThreadBuffer &localBuffer();

    std::chrono::steady_clock::time_point epoch;
    std::uint64_t logId;
    mutable std::mutex buffersMutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    int nextTid = 0;
};

/**
 * Process-wide telemetry context: one MetricsRegistry plus one TraceLog
 * behind an enabled flag. Instrumentation sites check enabled() (one
 * relaxed atomic load) and do nothing when telemetry is off.
 */
class Telemetry
{
  public:
    /** The process-wide instance. */
    static Telemetry &instance();

    void setEnabled(bool enabled)
    {
        on.store(enabled, std::memory_order_relaxed);
    }

    bool enabled() const { return on.load(std::memory_order_relaxed); }

    MetricsRegistry &metrics() { return registry; }
    const MetricsRegistry &metrics() const { return registry; }

    TraceLog &trace() { return traceLog; }
    const TraceLog &trace() const { return traceLog; }

    /** Clear metrics and trace (the enabled flag is left as is). */
    void reset();

    /**
     * Render the metrics snapshot as a human-readable aligned table
     * (name / kind / count / mean / min / max / value).
     */
    void printSummary(std::ostream &os) const;

  private:
    std::atomic<bool> on{false};
    MetricsRegistry registry;
    TraceLog traceLog;
};

/**
 * RAII wall-clock timer recording seconds into a Histogram.
 *
 * A null histogram makes the timer a no-op (the clock is not even
 * read), so call sites can write
 * `ScopedTimer t(enabled ? &hist : nullptr)`.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *histogram);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Record now instead of at destruction; returns elapsed seconds. */
    double stop();

    /** Seconds since construction (0 for a no-op timer). */
    double elapsedSeconds() const;

  private:
    Histogram *target;
    std::chrono::steady_clock::time_point start;
    bool stopped = false;
};

/**
 * RAII trace span against the global Telemetry instance. The enabled
 * flag is sampled at construction; when telemetry is off the span costs
 * one atomic load and records nothing.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *category);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name;
    const char *category;
    bool active;
    std::int64_t startUs = 0;
};

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_TELEMETRY_H
