/**
 * @file
 * Dense row-major matrix with the linear-algebra kernels needed by the
 * Gaussian-process surrogate: multiply, transpose, Cholesky factorization
 * and triangular solves.
 *
 * This is deliberately a small, self-contained implementation rather than a
 * dependency on a BLAS: the GP training sets in AutoPilot's Phase 2 are a
 * few hundred points at most, where a naive O(n^3) Cholesky is instant.
 */

#ifndef AUTOPILOT_UTIL_MATRIX_H
#define AUTOPILOT_UTIL_MATRIX_H

#include <cstddef>
#include <vector>

namespace autopilot::util
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** n x n identity matrix. */
    static Matrix identity(std::size_t n);

    /** Column vector from values. */
    static Matrix columnVector(const std::vector<double> &values);

    std::size_t rows() const { return numRows; }
    std::size_t cols() const { return numCols; }

    /** Element access. @pre indices in range (checked via panic). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Unchecked element access for hot loops. */
    double &operator()(std::size_t r, std::size_t c)
    {
        return data[r * numCols + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data[r * numCols + c];
    }

    /** Matrix product this * other. @pre cols() == other.rows(). */
    Matrix multiply(const Matrix &other) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Elementwise sum. @pre same shape. */
    Matrix add(const Matrix &other) const;

    /** Scaled copy. */
    Matrix scaled(double factor) const;

    /** True when shapes and all elements match exactly. */
    bool operator==(const Matrix &other) const;

  private:
    std::size_t numRows = 0;
    std::size_t numCols = 0;
    std::vector<double> data;
};

/**
 * Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
 *
 * Factorizes A = L L^T once and then answers solves against the factor.
 * Construction fails via fatal() when A is not positive definite even after
 * the caller-supplied jitter is added to the diagonal.
 */
class CholeskyFactor
{
  public:
    /**
     * Factorize @p a (must be square and symmetric).
     *
     * @param a      Matrix to factorize.
     * @param jitter Value added to the diagonal for numerical stability.
     */
    explicit CholeskyFactor(const Matrix &a, double jitter = 1e-10);

    /** The lower-triangular factor L. */
    const Matrix &lower() const { return factor; }

    /** Solve A x = b via forward/back substitution. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /** Solve L y = b (forward substitution only). */
    std::vector<double> solveLower(const std::vector<double> &b) const;

    /** log(det(A)) = 2 * sum(log(L_ii)), useful for GP likelihoods. */
    double logDeterminant() const;

  private:
    Matrix factor;
};

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_MATRIX_H
