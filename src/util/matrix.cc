#include "util/matrix.h"

#include <cmath>

#include "util/logging.h"

namespace autopilot::util
{

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : numRows(rows), numCols(cols), data(rows * cols, fill)
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &values)
{
    Matrix m(values.size(), 1, 0.0);
    for (std::size_t i = 0; i < values.size(); ++i)
        m(i, 0) = values[i];
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    panicIf(r >= numRows || c >= numCols, "Matrix::at: index out of range");
    return data[r * numCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    panicIf(r >= numRows || c >= numCols, "Matrix::at: index out of range");
    return data[r * numCols + c];
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    panicIf(numCols != other.numRows, "Matrix::multiply: shape mismatch");
    Matrix out(numRows, other.numCols, 0.0);
    for (std::size_t i = 0; i < numRows; ++i) {
        for (std::size_t k = 0; k < numCols; ++k) {
            const double lhs = (*this)(i, k);
            if (lhs == 0.0)
                continue;
            for (std::size_t j = 0; j < other.numCols; ++j)
                out(i, j) += lhs * other(k, j);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(numCols, numRows, 0.0);
    for (std::size_t i = 0; i < numRows; ++i)
        for (std::size_t j = 0; j < numCols; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Matrix
Matrix::add(const Matrix &other) const
{
    panicIf(numRows != other.numRows || numCols != other.numCols,
            "Matrix::add: shape mismatch");
    Matrix out(numRows, numCols, 0.0);
    for (std::size_t i = 0; i < data.size(); ++i)
        out.data[i] = data[i] + other.data[i];
    return out;
}

Matrix
Matrix::scaled(double factor) const
{
    Matrix out = *this;
    for (double &v : out.data)
        v *= factor;
    return out;
}

bool
Matrix::operator==(const Matrix &other) const
{
    return numRows == other.numRows && numCols == other.numCols &&
           data == other.data;
}

CholeskyFactor::CholeskyFactor(const Matrix &a, double jitter)
    : factor(a.rows(), a.cols(), 0.0)
{
    panicIf(a.rows() != a.cols(), "CholeskyFactor: matrix not square");
    const std::size_t n = a.rows();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            if (i == j)
                sum += jitter;
            for (std::size_t k = 0; k < j; ++k)
                sum -= factor(i, k) * factor(j, k);
            if (i == j) {
                fatalIf(sum <= 0.0,
                        "CholeskyFactor: matrix not positive definite");
                factor(i, j) = std::sqrt(sum);
            } else {
                factor(i, j) = sum / factor(j, j);
            }
        }
    }
}

std::vector<double>
CholeskyFactor::solveLower(const std::vector<double> &b) const
{
    const std::size_t n = factor.rows();
    panicIf(b.size() != n, "CholeskyFactor::solveLower: size mismatch");
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= factor(i, k) * y[k];
        y[i] = sum / factor(i, i);
    }
    return y;
}

std::vector<double>
CholeskyFactor::solve(const std::vector<double> &b) const
{
    const std::size_t n = factor.rows();
    std::vector<double> y = solveLower(b);
    // Back substitution against L^T.
    std::vector<double> x(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= factor(k, ii) * x[k];
        x[ii] = sum / factor(ii, ii);
    }
    return x;
}

double
CholeskyFactor::logDeterminant() const
{
    double log_det = 0.0;
    for (std::size_t i = 0; i < factor.rows(); ++i)
        log_det += std::log(factor(i, i));
    return 2.0 * log_det;
}

} // namespace autopilot::util
