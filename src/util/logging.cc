#include "util/logging.h"

#include <mutex>

namespace autopilot::util
{

namespace
{

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn:   return "warn: ";
      case LogLevel::Fatal:  return "fatal: ";
      case LogLevel::Panic:  return "panic: ";
    }
    return "?: ";
}

} // namespace

void
logMessage(LogLevel level, const std::string &msg)
{
    // Compose the whole line first and emit it as one insertion under a
    // lock: separate << calls interleave when worker threads log
    // concurrently, producing garbled half-lines.
    std::string line;
    line.reserve(msg.size() + 16);
    line += levelPrefix(level);
    line += msg;
    line += '\n';
    static std::mutex log_mutex;
    std::lock_guard<std::mutex> guard(log_mutex);
    std::cerr << line << std::flush;
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Fatal, msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Panic, msg);
    std::abort();
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Inform, msg);
}

} // namespace autopilot::util
