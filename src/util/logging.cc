#include "util/logging.h"

namespace autopilot::util
{

namespace
{

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn:   return "warn: ";
      case LogLevel::Fatal:  return "fatal: ";
      case LogLevel::Panic:  return "panic: ";
    }
    return "?: ";
}

} // namespace

void
logMessage(LogLevel level, const std::string &msg)
{
    std::cerr << levelPrefix(level) << msg << std::endl;
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Fatal, msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Panic, msg);
    std::abort();
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Inform, msg);
}

} // namespace autopilot::util
