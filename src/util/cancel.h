/**
 * @file
 * Cooperative cancellation for long-lived pipelines.
 *
 * A CancelSource owns a cancellation state (an explicit cancel flag
 * plus an optional wall-clock Deadline, plus an optional parent token
 * so a service-wide drain propagates into every campaign it admitted).
 * CancelTokens are cheap copies that observe that state; pipeline
 * stages call token.check() at phase starts and batch boundaries and a
 * cancelled stage unwinds with an exception the campaign layer can
 * diagnose:
 *
 *  - DeadlineExceeded when the token's deadline expired (terminal for
 *    the task: the time is gone, retrying cannot bring it back);
 *  - CancelledError when cancel() was called (terminal for this
 *    process, but the task's journal remains resumable - the campaign
 *    service drains with cancel() and resumes after restart).
 *
 * A default-constructed token is inert: cancelled() is false forever
 * and check() is a no-op, so serial CLI paths pay nothing.
 *
 * Why not just util::Deadline everywhere: a deadline is per-attempt
 * state created where the budget is known (the campaign layer), but
 * the layers that must honor it (the evaluator's batch loop, deep
 * under the optimizer) only see a TaskSpec. The token is the one
 * handle that crosses those layers without widening every signature.
 */

#ifndef AUTOPILOT_UTIL_CANCEL_H
#define AUTOPILOT_UTIL_CANCEL_H

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/retry.h"

namespace autopilot::util
{

/** Thrown by CancelToken::check() after CancelSource::cancel(). */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/// Shared cancellation record: flag + deadline + optional parent link
/// (a chain, so a service drain reaches every per-task source).
struct CancelState
{
    std::atomic<bool> cancelled{false};
    Deadline deadline;                        ///< Unlimited by default.
    std::shared_ptr<const CancelState> parent;///< Null when unlinked.
};

class CancelSource;

/** Observer end of a CancelSource; cheap to copy, inert by default. */
class CancelToken
{
  public:
    /** Inert token: never cancelled, check() is a no-op. */
    CancelToken() = default;

    /** False for inert (default-constructed) tokens. */
    bool cancellable() const { return state != nullptr; }

    /**
     * True once the source was cancelled, its deadline expired, or any
     * ancestor source reports either.
     */
    bool cancelled() const;

    /**
     * Throw DeadlineExceeded via Deadline::check() when a deadline in
     * the chain expired, or CancelledError("<what>: cancelled") when a
     * source in the chain was cancelled; cheap no-op otherwise. Call
     * at phase starts and batch boundaries - the granularity at which
     * a cancelled campaign's journal stays whole.
     */
    void check(const std::string &what) const;

  private:
    friend class CancelSource;

    explicit CancelToken(std::shared_ptr<const CancelState> shared)
        : state(std::move(shared))
    {
    }

    std::shared_ptr<const CancelState> state;
};

/** Owner end: create tokens, cancel them all at once. */
class CancelSource
{
  public:
    /**
     * @param deadline Optional wall-clock bound folded into every
     *        token (default: unlimited).
     * @param parent   Optional upstream token: tokens from this source
     *        also report cancelled when @p parent does, chaining a
     *        service-wide drain into per-task sources.
     */
    explicit CancelSource(Deadline deadline = {},
                          const CancelToken &parent = {});

    /** Flip every token from this source to cancelled. Idempotent. */
    void cancel() { state->cancelled.store(true); }

    /** A token observing this source. */
    CancelToken token() const { return CancelToken(state); }

  private:
    std::shared_ptr<CancelState> state;
};

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_CANCEL_H
