#include "util/arena.h"

#include <algorithm>

#include "util/logging.h"

namespace autopilot::util
{

Arena::Arena(std::size_t firstBlockBytes)
{
    panicIf(firstBlockBytes == 0, "Arena: zero first block size");
    grow(firstBlockBytes);
}

Arena::Block &
Arena::grow(std::size_t bytes)
{
    // Double the last block's capacity each time so a warm arena settles
    // into a small, fixed block chain; a single oversized request gets a
    // block of exactly its size.
    std::size_t capacity =
        blocks.empty() ? bytes : blocks.back().capacity * 2;
    capacity = std::max(capacity, bytes);

    Block block;
    block.data = std::make_unique<std::byte[]>(capacity);
    block.capacity = capacity;
    blocks.push_back(std::move(block));
    current = blocks.size() - 1;
    return blocks.back();
}

void *
Arena::allocateBytes(std::size_t bytes, std::size_t alignment)
{
    panicIf(bytes == 0, "Arena::allocateBytes: zero-byte allocation");
    panicIf(alignment == 0 || (alignment & (alignment - 1)) != 0 ||
                alignment > alignof(std::max_align_t),
            "Arena::allocateBytes: bad alignment");

    // Walk forward from the current block (blocks before it are full or
    // were skipped by an allocation too large for their tail).
    for (std::size_t i = current; i < blocks.size(); ++i) {
        Block &block = blocks[i];
        const std::size_t aligned =
            (block.used + alignment - 1) & ~(alignment - 1);
        if (aligned + bytes <= block.capacity) {
            block.used = aligned + bytes;
            current = i;
            return block.data.get() + aligned;
        }
    }

    Block &block = grow(bytes);
    // Fresh blocks come from operator new[] and are at least
    // max_align_t-aligned, so offset 0 satisfies any legal alignment.
    block.used = bytes;
    return block.data.get();
}

void
Arena::reset()
{
    for (Block &block : blocks)
        block.used = 0;
    current = 0;
}

std::size_t
Arena::capacityBytes() const
{
    std::size_t total = 0;
    for (const Block &block : blocks)
        total += block.capacity;
    return total;
}

std::size_t
Arena::usedBytes() const
{
    std::size_t total = 0;
    for (const Block &block : blocks)
        total += block.used;
    return total;
}

} // namespace autopilot::util
