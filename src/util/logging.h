/**
 * @file
 * Error and status reporting helpers in the gem5 style.
 *
 * fatal()  - the condition is the caller's fault (bad configuration,
 *            out-of-range argument); exits with code 1.
 * panic()  - the condition indicates a bug in this library; aborts.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 */

#ifndef AUTOPILOT_UTIL_LOGGING_H
#define AUTOPILOT_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace autopilot::util
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Emit a message to stderr with a severity prefix.
 *
 * @param level Severity of the message.
 * @param msg   Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Report a user-caused error and exit the process with status 1.
 *
 * Call when the simulation cannot continue due to a condition that is the
 * caller's fault (bad configuration, invalid arguments), not a library bug.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation and abort.
 *
 * Call when something happens that should never happen regardless of what
 * the user does, i.e., an actual library bug.
 */
[[noreturn]] void panic(const std::string &msg);

/** Report a recoverable, suspicious condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

/**
 * Abort via panic() if a library invariant does not hold.
 *
 * @param condition Invariant that must be true.
 * @param msg       Description of the violated invariant.
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/**
 * Exit via fatal() if a user-facing precondition does not hold.
 *
 * @param condition Error condition; true means the input is invalid.
 * @param msg       Description of the misuse.
 */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace autopilot::util

/**
 * Debug-build invariant check for hot-path code: panics with @p msg when
 * @p condition is false in debug builds, compiles to nothing under
 * NDEBUG (the RelWithDebInfo default) so release hot loops pay zero
 * cost. Use where a degenerate input is tolerated with a safe fallback
 * in release (e.g. returning 0 instead of dividing by zero) but should
 * still be loud during development.
 */
#ifdef NDEBUG
#define AUTOPILOT_DEBUG_ASSERT(condition, msg) ((void)0)
#else
#define AUTOPILOT_DEBUG_ASSERT(condition, msg)                            \
    ::autopilot::util::panicIf(!(condition), (msg))
#endif

#endif // AUTOPILOT_UTIL_LOGGING_H
