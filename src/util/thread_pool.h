/**
 * @file
 * Fixed-size worker thread pool with a sharded, work-stealing task
 * queue.
 *
 * The batch-parallel evaluation core (dse::DseEvaluator::evaluateBatch,
 * Phase 1 training fan-out, Phase 3 candidate mapping) runs on this
 * pool, and since the campaign service landed so do many concurrent
 * campaigns sharing one pool. Each worker owns a deque: tasks submitted
 * from a worker land on its own deque (locality), external submissions
 * round-robin across deques, and a worker whose deque runs dry steals
 * from its peers before sleeping. Sleeping is per-worker too: each
 * worker parks on its own shard's condition variable and an enqueue
 * wakes the owner of the shard the task landed on (falling back to any
 * other parked worker), so a wake goes straight to a worker that can
 * pop without stealing and concurrent submissions never convoy on a
 * shared sleep lock. Under the one-queue design every submit, every
 * pop and every park crossed a single mutex; splitting all three per
 * worker is what the PR-3 `pool.queue_wait_s` numbers were collected
 * to justify.
 *
 * Determinism contract (unchanged from the single-queue pool): the pool
 * executes tasks in an unspecified order on unspecified workers;
 * callers that need reproducible results must make each task pure
 * (output depends only on its input) and commit results in submission
 * order. parallelFor() helps with that: it indexes tasks by position so
 * results land in caller-owned slots.
 *
 * Shutdown ordering (explicit, and relied on by the campaign service's
 * drain path): shutdown() - or the destructor, which calls it - first
 * marks the pool stopping, then lets the workers finish every task that
 * was enqueued before the mark, then joins them. A submit() that races
 * with shutdown either wins (its task is enqueued before the mark and
 * will run) or loses, in which case it returns a ready future holding
 * ThreadPoolStopped instead of throwing - an in-flight campaign sees a
 * failed evaluation it can diagnose, not a torn-down process.
 *
 * Telemetry: when the global util::Telemetry is enabled the pool exports
 * a queue-depth gauge ("pool.queue_depth", all shards combined),
 * queue-wait and task-run latency histograms ("pool.queue_wait_s",
 * "pool.task_run_s"), task and steal counters ("pool.tasks",
 * "pool.steals") and per-worker busy-time counters
 * ("pool.worker.N.busy_us") from which per-worker utilization can be
 * derived. With telemetry off (the default) none of this is touched.
 */

#ifndef AUTOPILOT_UTIL_THREAD_POOL_H
#define AUTOPILOT_UTIL_THREAD_POOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/telemetry.h"

namespace autopilot::util
{

/**
 * Single-use countdown latch: countDown() n times releases wait().
 *
 * (std::latch exists in C++20 but is missing from some libstdc++
 * configurations this project targets; this is the minimal subset.)
 */
class Latch
{
  public:
    /** @param count Number of countDown() calls that release wait(). */
    explicit Latch(std::ptrdiff_t count) : remaining(count) {}

    Latch(const Latch &) = delete;
    Latch &operator=(const Latch &) = delete;

    /** Decrement by @p n; reaching zero wakes all waiters. */
    void countDown(std::ptrdiff_t n = 1);

    /** Block until the count reaches zero. */
    void wait();

  private:
    std::mutex mutex;
    std::condition_variable cv;
    std::ptrdiff_t remaining;
};

/**
 * Carried by the future submit() returns when it lost the race with
 * shutdown(): the task was rejected and never ran.
 */
class ThreadPoolStopped : public std::runtime_error
{
  public:
    ThreadPoolStopped()
        : std::runtime_error("ThreadPool: submit after shutdown")
    {
    }
};

/** Fixed worker threads pulling from per-worker work-stealing deques. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. A count of 0 falls back to
     * std::thread::hardware_concurrency() (minimum 1).
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Calls shutdown(): pending tasks complete, then workers join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers.size(); }

    /**
     * Stop accepting work, finish every already-enqueued task, join the
     * workers. Idempotent and safe to call concurrently with submit():
     * a racing submit either enqueued its task before the stop mark
     * (the task runs) or gets a ready ThreadPoolStopped future. After
     * shutdown() returns the pool is drained and submit() always
     * rejects.
     */
    void shutdown();

    /** True once shutdown() has begun; rejected submits follow. */
    bool stopped() const
    {
        return stopping.load(std::memory_order_acquire);
    }

    /**
     * Enqueue a callable; the future resolves with its result (or
     * exception). Safe to call from any thread, including pool workers
     * submitting follow-up work - but a worker must never block on a
     * future of a task queued behind it (classic self-deadlock).
     *
     * During or after shutdown() the callable is not enqueued and the
     * returned future is immediately ready with ThreadPoolStopped; a
     * daemon draining its pool therefore degrades racing submitters
     * instead of killing them with a throw.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        if (stopping.load(std::memory_order_acquire))
            return rejectedFuture<Result>();
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        QueuedTask queued;
        queued.run = [task]() { (*task)(); };
        if (!enqueue(std::move(queued)))
            return rejectedFuture<Result>();
        return future;
    }

    /**
     * Run body(i) for every i in [0, count) across the pool and block
     * until all iterations finish. The calling thread participates, so a
     * pool of one worker still makes progress and the call is safe even
     * from within a pool task. Iterations are claimed dynamically from
     * one atomic counter in chunks of @p grain consecutive indices, so
     * uneven per-iteration cost load-balances while cheap bodies
     * amortize the claim (one atomic RMW plus one latch count-down per
     * chunk instead of per index). grain = 1 (the default) maximizes
     * load balancing and is right for expensive bodies like
     * architectural simulation; pick a larger grain for short bodies
     * at high thread counts (0 is treated as 1).
     *
     * The first exception thrown by any iteration is rethrown on the
     * caller after all iterations complete or are abandoned.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body,
                     std::size_t grain = 1);

  private:
    /// One queue entry: the callable plus its enqueue timestamp (0 when
    /// telemetry was off at submit time, so the wait is not measured).
    struct QueuedTask
    {
        std::function<void()> run;
        std::int64_t enqueuedAtNs = 0;
    };

    /// One worker's deque with its lock, plus the owner's private
    /// parking spot. Owner and thieves share the mutex; sharding means
    /// they contend per worker, not pool-wide. Heap-allocated so the
    /// vector never moves a mutex.
    ///
    /// `size` mirrors tasks.size() (stores only happen under the
    /// mutex) so the steal sweep can skip empty shards without taking
    /// their locks. The owner parks on its own `cv` - there is no
    /// pool-wide sleep lock to convoy on - and `parked` is the wake
    /// handshake: an enqueue claims a sleeper with
    /// parked.exchange(false), so concurrent submissions wake distinct
    /// workers, and the parking worker re-checks the pool-wide
    /// `pending` count after publishing parked=true (both seq_cst, a
    /// Dekker pair with enqueue's publish-then-claim) so a push it
    /// raced with is never slept through. `poked` is the cv predicate
    /// for steal-wakes (task in another shard), set under the mutex.
    struct Shard
    {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<QueuedTask> tasks;
        std::atomic<std::size_t> size{0};
        std::atomic<bool> parked{false};
        bool poked = false;
    };

    /** steady_clock now in nanoseconds since its epoch. */
    static std::int64_t nowNs()
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /** Ready future already holding ThreadPoolStopped. */
    template <typename Result>
    static std::future<Result> rejectedFuture()
    {
        std::promise<Result> promise;
        promise.set_exception(
            std::make_exception_ptr(ThreadPoolStopped()));
        return promise.get_future();
    }

    /**
     * Push onto the submitting worker's own shard (or round-robin for
     * external threads) and wake a sleeper. False when the push lost
     * the race with shutdown(); the task was not enqueued.
     */
    bool enqueue(QueuedTask task);

    /**
     * Pop from @p self's shard, stealing from the other shards when it
     * is empty. @p stolen reports whether the task came from a steal.
     */
    bool tryAcquire(std::size_t self, QueuedTask &task, bool &stolen);

    /**
     * Wake one parked worker, preferring the owner of shard
     * @p preferred (where the task was just pushed). Claims the
     * sleeper via parked.exchange so concurrent submissions each wake
     * a different worker. No-op when nobody is parked.
     */
    void wakeOne(std::size_t preferred);

    /// Per-worker cache of the pool's instrument handles, resolved
    /// once per MetricsRegistry generation so the per-task hot path
    /// skips the string-keyed registry lookups (each worker keeps one
    /// on its stack; never shared).
    struct WorkerMetrics;

    void runTask(QueuedTask &task, std::size_t worker, bool stolen,
                 WorkerMetrics &cached);
    void workerLoop(std::size_t worker);

    std::vector<std::thread> workers;
    std::vector<std::unique_ptr<Shard>> shards;
    /// Tasks enqueued but not yet popped, pool-wide: the parking
    /// re-check (Dekker partner of Shard::parked) and the queue-depth
    /// gauge.
    std::atomic<std::size_t> pending{0};
    /// Round-robin cursor for submissions from non-worker threads.
    std::atomic<std::size_t> nextShard{0};
    std::atomic<bool> stopping{false};
    /// Guards the join in shutdown() so concurrent shutdown() calls
    /// (or shutdown() racing the destructor) join exactly once.
    std::mutex joinMutex;
    bool joined = false;
};

/**
 * Convenience: run body(i) for i in [0, count) on @p pool, or serially on
 * the calling thread when @p pool is null (the single-threaded path used
 * whenever a component has no pool attached). @p grain is the chunked
 * claiming granularity forwarded to ThreadPool::parallelFor (ignored on
 * the serial path, which is naturally one chunk).
 */
void parallel_for(ThreadPool *pool, std::size_t count,
                  const std::function<void(std::size_t)> &body,
                  std::size_t grain = 1);

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_THREAD_POOL_H
