/**
 * @file
 * Fixed-size worker thread pool with a shared task queue.
 *
 * The batch-parallel evaluation core (dse::DseEvaluator::evaluateBatch,
 * Phase 1 training fan-out, Phase 3 candidate mapping) runs on this pool:
 * one pool per pipeline, sized once, reused across batches so worker
 * startup cost is paid a single time rather than per generation.
 *
 * Determinism contract: the pool executes tasks in an unspecified order
 * on unspecified workers; callers that need reproducible results must
 * make each task pure (output depends only on its input) and commit
 * results in submission order. parallel_for() helps with that: it indexes
 * tasks by position so results land in caller-owned slots.
 *
 * Telemetry: when the global util::Telemetry is enabled the pool exports
 * a queue-depth gauge ("pool.queue_depth"), queue-wait and task-run
 * latency histograms ("pool.queue_wait_s", "pool.task_run_s"), a task
 * counter ("pool.tasks") and per-worker busy-time counters
 * ("pool.worker.N.busy_us") from which per-worker utilization can be
 * derived. With telemetry off (the default) none of this is touched.
 */

#ifndef AUTOPILOT_UTIL_THREAD_POOL_H
#define AUTOPILOT_UTIL_THREAD_POOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/telemetry.h"

namespace autopilot::util
{

/**
 * Single-use countdown latch: countDown() n times releases wait().
 *
 * (std::latch exists in C++20 but is missing from some libstdc++
 * configurations this project targets; this is the minimal subset.)
 */
class Latch
{
  public:
    /** @param count Number of countDown() calls that release wait(). */
    explicit Latch(std::ptrdiff_t count) : remaining(count) {}

    Latch(const Latch &) = delete;
    Latch &operator=(const Latch &) = delete;

    /** Decrement by @p n; reaching zero wakes all waiters. */
    void countDown(std::ptrdiff_t n = 1);

    /** Block until the count reaches zero. */
    void wait();

  private:
    std::mutex mutex;
    std::condition_variable cv;
    std::ptrdiff_t remaining;
};

/** Fixed worker threads pulling from one task queue until shutdown. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. A count of 0 falls back to
     * std::thread::hardware_concurrency() (minimum 1).
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains nothing: pending tasks are completed, then workers join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers.size(); }

    /**
     * Enqueue a callable; the future resolves with its result (or
     * exception). Safe to call from any thread, including pool workers
     * submitting follow-up work - but a worker must never block on a
     * future of a task queued behind it (classic self-deadlock).
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (stopping)
                throw std::runtime_error(
                    "ThreadPool::submit after shutdown");
            QueuedTask queued;
            queued.run = [task]() { (*task)(); };
            Telemetry &telemetry = Telemetry::instance();
            if (telemetry.enabled()) {
                queued.enqueuedAtNs = nowNs();
                telemetry.metrics()
                    .gauge("pool.queue_depth")
                    .set(static_cast<std::int64_t>(queue.size() + 1));
            }
            queue.push_back(std::move(queued));
        }
        available.notify_one();
        return future;
    }

    /**
     * Run body(i) for every i in [0, count) across the pool and block
     * until all iterations finish. The calling thread participates, so a
     * pool of one worker still makes progress and the call is safe even
     * from within a pool task. Iterations are claimed dynamically from
     * one atomic counter in chunks of @p grain consecutive indices, so
     * uneven per-iteration cost load-balances while cheap bodies
     * amortize the claim (one atomic RMW plus one latch count-down per
     * chunk instead of per index). grain = 1 (the default) maximizes
     * load balancing and is right for expensive bodies like
     * architectural simulation; pick a larger grain for short bodies
     * at high thread counts (0 is treated as 1).
     *
     * The first exception thrown by any iteration is rethrown on the
     * caller after all iterations complete or are abandoned.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body,
                     std::size_t grain = 1);

  private:
    /// One queue entry: the callable plus its enqueue timestamp (0 when
    /// telemetry was off at submit time, so the wait is not measured).
    struct QueuedTask
    {
        std::function<void()> run;
        std::int64_t enqueuedAtNs = 0;
    };

    /** steady_clock now in nanoseconds since its epoch. */
    static std::int64_t nowNs()
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    void workerLoop(std::size_t worker);

    std::vector<std::thread> workers;
    std::deque<QueuedTask> queue;
    std::mutex mutex;
    std::condition_variable available;
    bool stopping = false;
};

/**
 * Convenience: run body(i) for i in [0, count) on @p pool, or serially on
 * the calling thread when @p pool is null (the single-threaded path used
 * whenever a component has no pool attached). @p grain is the chunked
 * claiming granularity forwarded to ThreadPool::parallelFor (ignored on
 * the serial path, which is naturally one chunk).
 */
void parallel_for(ThreadPool *pool, std::size_t count,
                  const std::function<void(std::size_t)> &body,
                  std::size_t grain = 1);

} // namespace autopilot::util

#endif // AUTOPILOT_UTIL_THREAD_POOL_H
