#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace autopilot::util
{

double
mean(const std::vector<double> &values)
{
    panicIf(values.empty(), "mean: empty sample");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double mu = mean(values);
    double sum_sq = 0.0;
    for (double v : values)
        sum_sq += (v - mu) * (v - mu);
    return sum_sq / static_cast<double>(values.size() - 1);
}

double
stddev(const std::vector<double> &values)
{
    return std::sqrt(variance(values));
}

double
geomean(const std::vector<double> &values)
{
    panicIf(values.empty(), "geomean: empty sample");
    double log_sum = 0.0;
    for (double v : values) {
        panicIf(v <= 0.0, "geomean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
minValue(const std::vector<double> &values)
{
    panicIf(values.empty(), "minValue: empty sample");
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    panicIf(values.empty(), "maxValue: empty sample");
    return *std::max_element(values.begin(), values.end());
}

double
percentile(std::vector<double> values, double pct)
{
    panicIf(values.empty(), "percentile: empty sample");
    fatalIf(pct < 0.0 || pct > 100.0, "percentile: pct outside [0, 100]");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const std::size_t hi_idx = std::min(lo_idx + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo_idx);
    return values[lo_idx] * (1.0 - frac) + values[hi_idx] * frac;
}

void
RunningStats::add(double value)
{
    if (n == 0) {
        lo = value;
        hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    ++n;
    const double delta = value - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (value - mu);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    panicIf(n == 0, "RunningStats::min: empty");
    return lo;
}

double
RunningStats::max() const
{
    panicIf(n == 0, "RunningStats::max: empty");
    return hi;
}

} // namespace autopilot::util
