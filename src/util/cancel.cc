#include "util/cancel.h"

namespace autopilot::util
{

bool
CancelToken::cancelled() const
{
    for (const CancelState *node = state.get(); node != nullptr;
         node = node->parent.get()) {
        if (node->cancelled.load() || node->deadline.expired())
            return true;
    }
    return false;
}

void
CancelToken::check(const std::string &what) const
{
    for (const CancelState *node = state.get(); node != nullptr;
         node = node->parent.get()) {
        // Deadline expiry outranks an explicit cancel: DeadlineExceeded
        // is terminal for the task while CancelledError only ends this
        // process's attempt, and conflating them would make a drained
        // campaign look permanently out of time.
        node->deadline.check(what);
        if (node->cancelled.load())
            throw CancelledError(what + ": cancelled");
    }
}

CancelSource::CancelSource(Deadline deadline, const CancelToken &parent)
    : state(std::make_shared<CancelState>())
{
    state->deadline = deadline;
    state->parent = parent.state;
}

} // namespace autopilot::util
