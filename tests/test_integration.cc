/**
 * @file
 * End-to-end integration tests: the headline claims of the paper must
 * hold in shape on a reduced-budget pipeline run (the benches reproduce
 * them at full budget).
 */

#include <gtest/gtest.h>

#include "core/autopilot.h"
#include "core/baseline_eval.h"
#include "core/baselines.h"
#include "uav/uav_spec.h"

namespace core = autopilot::core;
namespace uav = autopilot::uav;
namespace al = autopilot::airlearning;
namespace nn = autopilot::nn;

namespace
{

/** Shared medium-budget run on the nano-UAV / dense scenario. */
const core::AutoPilotRun &
nanoDenseRun()
{
    static const core::AutoPilotRun run = [] {
        core::TaskSpec task;
        task.density = al::ObstacleDensity::Dense;
        task.validationEpisodes = 80;
        task.dseBudget = 80;
        core::AutoPilot pilot(task);
        return pilot.designFor(uav::zhangNano());
    }();
    return run;
}

} // namespace

TEST(Integration, ApDesignIsMissionOptimalAmongStrategies)
{
    const auto &run = nanoDenseRun();
    const auto ht = core::AutoPilot::selectByStrategy(
        run.candidates, core::DesignStrategy::HighThroughput);
    const auto lp = core::AutoPilot::selectByStrategy(
        run.candidates, core::DesignStrategy::LowPower);
    const auto he = core::AutoPilot::selectByStrategy(
        run.candidates, core::DesignStrategy::HighEfficiency);
    const auto &ap = run.selected;

    // Section V-B: AP wins the mission metric against every traditional
    // selection (by construction it cannot lose; the claim with teeth is
    // that the gaps are real when the strategies pick different points).
    EXPECT_GE(ap.mission.numMissions, ht.mission.numMissions);
    EXPECT_GE(ap.mission.numMissions, lp.mission.numMissions);
    EXPECT_GE(ap.mission.numMissions, he.mission.numMissions);

    // The traditional picks beat AP on their own isolated metrics.
    EXPECT_GE(ht.eval.fps, ap.eval.fps);
    EXPECT_LE(lp.eval.socPowerW, ap.eval.socPowerW);
    EXPECT_GE(he.eval.fps / he.eval.socPowerW,
              ap.eval.fps / ap.eval.socPowerW);
}

TEST(Integration, ApBeatsBaselinePlatformsOnNano)
{
    const auto &run = nanoDenseRun();
    const nn::Model model =
        nn::buildE2EModel(run.selected.eval.point.policy);
    for (const core::BaselinePlatform &platform :
         core::figure5Baselines()) {
        const auto baseline = core::evaluateBaselineOnUav(
            platform, model, uav::zhangNano());
        EXPECT_GT(run.selected.mission.numMissions,
                  baseline.mission.numMissions)
            << platform.name;
    }
}

TEST(Integration, SelectedDesignNearKnee)
{
    const auto &run = nanoDenseRun();
    const auto &mission = run.selected.mission;
    // The AP design must not be grossly over-provisioned: its action
    // throughput should sit within ~2.5x of the knee either way.
    EXPECT_GT(mission.actionThroughputHz,
              mission.kneeThroughputHz * 0.3);
    EXPECT_LT(mission.actionThroughputHz,
              mission.kneeThroughputHz * 2.5);
}

TEST(Integration, DensePolicyIsDeepAndWide)
{
    // Dense scenarios need the larger networks (Section V-A).
    const auto &run = nanoDenseRun();
    EXPECT_GE(run.selected.eval.point.policy.numConvLayers, 5);
}

TEST(Integration, SelectedPowerWithinTemplateBand)
{
    const auto &run = nanoDenseRun();
    EXPECT_GT(run.selected.eval.npuPowerW, 0.05);
    EXPECT_LT(run.selected.eval.npuPowerW, 9.0);
    EXPECT_GT(run.selected.payloadGrams, 19.0);
    EXPECT_LT(run.selected.payloadGrams, 70.0);
}

TEST(Integration, MissionCountsAreReasonable)
{
    const auto &run = nanoDenseRun();
    EXPECT_GT(run.selected.mission.numMissions, 5.0);
    EXPECT_LT(run.selected.mission.numMissions, 500.0);
}

TEST(Integration, DeterministicPipeline)
{
    core::TaskSpec task;
    task.density = al::ObstacleDensity::Low;
    task.validationEpisodes = 30;
    task.dseBudget = 25;
    core::AutoPilot pilot_a(task);
    core::AutoPilot pilot_b(task);
    const auto run_a = pilot_a.designFor(uav::djiSpark());
    const auto run_b = pilot_b.designFor(uav::djiSpark());
    EXPECT_EQ(run_a.selected.eval.point.name(),
              run_b.selected.eval.point.name());
    EXPECT_DOUBLE_EQ(run_a.selected.mission.numMissions,
                     run_b.selected.mission.numMissions);
}
